#include "core/parallel_evaluator.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

#include "core/surrogate.hpp"
#include "util/log.hpp"
#include "util/profiler.hpp"

namespace rooftune::core {

namespace {

using Clock = std::chrono::steady_clock;

// -inf marks "no incumbent yet": every real configuration value (GFLOP/s,
// GB/s) exceeds it, and it converts to std::nullopt before reaching the
// stop conditions.
constexpr double kNoIncumbent = -std::numeric_limits<double>::infinity();

std::optional<double> as_incumbent(double value) {
  if (value == kNoIncumbent) return std::nullopt;
  return value;
}

/// Raise `target` to `value`; true when `value` became the new maximum
/// (the caller publishes an incumbent-update trace event on that edge).
bool atomic_max(std::atomic<double>& target, double value) {
  double current = target.load(std::memory_order_relaxed);
  while (value > current) {
    if (target.compare_exchange_weak(current, value,
                                     std::memory_order_acq_rel)) {
      return true;
    }
  }
  return false;
}

std::uint64_t ns_between(Clock::time_point from, Clock::time_point to) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(to - from).count());
}

/// Coordinator/worker rendezvous for the pipeline drivers: every shared
/// mutation (results, completion flags, failure, in-flight count) happens
/// under one mutex, and the condition variable wakes the committing
/// coordinator.
struct PipelineSync {
  std::mutex mutex;
  std::condition_variable cv;
  std::exception_ptr failure;
  std::size_t in_flight = 0;
};

}  // namespace

ParallelEvaluator::ParallelEvaluator(BackendFactory factory, TunerOptions options,
                                     ParallelOptions parallel)
    : factory_(std::move(factory)), options_(options), parallel_(parallel) {
  if (!factory_) {
    throw std::invalid_argument("ParallelEvaluator: null backend factory");
  }
}

std::size_t ParallelEvaluator::lookahead() const {
  if (parallel_.scheduler != SchedulerMode::Pipeline) return 1;
  return std::max<std::size_t>(1, parallel_.lookahead);
}

std::vector<std::unique_ptr<Backend>> ParallelEvaluator::make_backends(
    std::size_t max_workers) const {
  std::size_t workers =
      parallel_.workers != 0
          ? parallel_.workers
          : std::max<std::size_t>(1, std::thread::hardware_concurrency());
  workers = std::min(workers, std::max<std::size_t>(1, max_workers));

  // Probe reentrancy with the first backend (it becomes worker 0's).
  std::vector<std::unique_ptr<Backend>> backends;
  backends.push_back(factory_());
  if (backends.front() == nullptr) {
    throw std::invalid_argument("ParallelEvaluator: factory returned null backend");
  }
  if (workers > 1 && !backends.front()->reentrant()) {
    util::log_warn() << "ParallelEvaluator: backend is not reentrant; "
                        "falling back to 1 worker";
    workers = 1;
  }
  for (std::size_t w = 1; w < workers; ++w) {
    backends.push_back(factory_());
    if (backends.back() == nullptr) {
      throw std::invalid_argument("ParallelEvaluator: factory returned null backend");
    }
  }
  return backends;
}

std::unique_ptr<EvalPool> ParallelEvaluator::make_pool(
    const std::vector<std::unique_ptr<Backend>>& backends) const {
  if (parallel_.scheduler != SchedulerMode::Pipeline) return nullptr;
  if (backends.size() < 2) return nullptr;  // inline = the serial schedule
  EvalPool::Options options;
  options.workers = backends.size();
  options.pin_threads = parallel_.pin_workers;
  return std::make_unique<EvalPool>(options);
}

void ParallelEvaluator::attach_sched_stats(
    TuningRun& run, const EvalPool* pool, std::size_t backend_count,
    const CommitAccounting& accounting) const {
  if (!parallel_.sched_stats) return;
  SchedulerStats stats;
  if (pool != nullptr) stats = pool->stats();
  stats.mode =
      parallel_.scheduler == SchedulerMode::Pipeline ? "pipeline" : "wave";
  stats.workers = pool != nullptr ? pool->workers() : backend_count;
  stats.lookahead = lookahead();
  // Inline pipeline (no pool) executes on the coordinator: the committed
  // task count is still meaningful, idle/steal counters are structurally 0.
  if (pool == nullptr) stats.tasks = accounting.tasks;
  stats.commit_wait_ns = accounting.commit_wait_ns;
  run.sched = stats;
}

TuningRun ParallelEvaluator::run(const SearchSpace& space) const {
  if (options_.strategy == SearchStrategy::Surrogate) {
    return run_surrogate(space);
  }
  const SpaceView view(space, options_.order, options_.random_seed);
  return run_impl([&view](std::size_t i) { return view.at(i); }, view.size());
}

TuningRun ParallelEvaluator::run(const std::vector<Configuration>& configs) const {
  if (options_.strategy == SearchStrategy::Surrogate) {
    throw std::invalid_argument(
        "ParallelEvaluator: the surrogate strategy scores the whole space — "
        "call run(const SearchSpace&) instead of run(configs)");
  }
  return run_impl([&configs](std::size_t i) { return configs[i]; }, configs.size());
}

TuningRun ParallelEvaluator::run_impl(const ConfigAt& config_at, std::size_t n) const {
  TuningRun run;
  if (n == 0) return run;
  util::Profiler::instance().set_thread_name("coordinator");

  // Cap the backend fleet at what the schedule can actually run
  // concurrently: an epoch (wave or racing block) times the lookahead.
  // Requesting 64 workers on a 96-config grid with 16-wide waves used to
  // build 64 backends of which at most 16 ever ran at once.
  std::size_t concurrency = n;
  if (options_.strategy == SearchStrategy::Racing) {
    concurrency = std::min(n, RacingScheduler::kBlock * lookahead());
  } else if (parallel_.deterministic) {
    concurrency =
        std::min(n, std::max<std::size_t>(1, parallel_.wave) * lookahead());
  }
  auto backends = make_backends(concurrency);
  const std::unique_ptr<EvalPool> pool =
      (parallel_.deterministic || options_.strategy == SearchStrategy::Racing)
          ? make_pool(backends)
          : nullptr;
  CommitAccounting accounting;

  if (options_.strategy == SearchStrategy::Racing) {
    // The race holds per-entry state for the whole population; materialize
    // its config list once.
    std::vector<Configuration> configs;
    configs.reserve(n);
    for (std::size_t i = 0; i < n; ++i) configs.push_back(config_at(i));
    TuningRun racing_run = run_racing(backends, pool.get(), configs, &accounting);
    racing_run.arena = aggregate_arena_stats(backends);
    attach_sched_stats(racing_run, pool.get(), backends.size(), accounting);
    return racing_run;
  }

  std::vector<std::optional<ConfigResult>> results(n);
  std::atomic<double> incumbent{kNoIncumbent};

  if (parallel_.deterministic) {
    if (parallel_.scheduler == SchedulerMode::Pipeline) {
      evaluate_pipeline(pool.get(), backends, config_at, n, incumbent, results,
                        &accounting);
    } else {
      evaluate_waves(backends, config_at, n, incumbent, results);
    }
  } else {
    // Live mode: workers pull from a shared queue, read the freshest
    // incumbent per configuration and publish completions immediately.
    // Each configuration is its own epoch (like the serial loop).
    std::exception_ptr failure;
    std::mutex failure_mutex;
    std::atomic<std::size_t> next{0};
    const auto body = [&](std::size_t worker) noexcept {
      try {
        Backend& backend = *backends[worker];
        for (;;) {
          const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= n) break;
          const double inc = incumbent.load(std::memory_order_acquire);
          const Configuration config = config_at(i);
          TraceContext ctx;
          ctx.epoch = i;
          ctx.config_ordinal = i;
          ConfigResult result = run_configuration(backend, config, options_,
                                                  as_incumbent(inc), ctx);
          const double value = result.value();
          if (atomic_max(incumbent, value) && options_.trace) {
            // Live mode makes no determinism claim; the event records when
            // this worker observed its value become the new best.
            TraceEvent event;
            event.kind = TraceEvent::Kind::IncumbentUpdate;
            event.epoch = ctx.epoch;
            event.config_ordinal = ctx.config_ordinal;
            event.invocation = result.invocations.empty()
                                   ? 0
                                   : result.invocations.size() - 1;
            event.rank = 7;
            event.config = config;
            event.value = value;
            options_.trace->emit(event);
          }
          results[i].emplace(std::move(result));
        }
      } catch (...) {
        const std::scoped_lock lock(failure_mutex);
        if (!failure) failure = std::current_exception();
      }
    };
    const std::size_t active = std::min(backends.size(), n);
    std::vector<std::thread> threads;
    threads.reserve(active > 0 ? active - 1 : 0);
    for (std::size_t w = 1; w < active; ++w) threads.emplace_back(body, w);
    body(0);
    for (std::thread& t : threads) t.join();
    if (failure) std::rethrow_exception(failure);
  }

  // Final ordered reduction: identical best/tie-breaking rule to the
  // serial Autotuner loop (first strictly-greater value wins).
  std::optional<double> best;
  run.results.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    ConfigResult result = std::move(*results[i]);
    run.total_iterations += result.total_iterations;
    run.total_invocations += result.invocations.size();
    if (result.pruned()) ++run.pruned_configs;
    run.total_time += result.total_time;
    run.total_setup_time += result.total_setup_time;
    run.total_kernel_time += result.total_kernel_time;
    const double value = result.value();
    if (!best.has_value() || value > *best) {
      best = value;
      run.best_index = i;
    }
    run.results.push_back(std::move(result));
  }
  run.arena = aggregate_arena_stats(backends);
  attach_sched_stats(run, pool.get(), backends.size(), accounting);
  return run;
}

void ParallelEvaluator::evaluate_waves(
    std::vector<std::unique_ptr<Backend>>& backends, const ConfigAt& config_at,
    std::size_t n, std::atomic<double>& incumbent,
    std::vector<std::optional<ConfigResult>>& results) const {
  std::exception_ptr failure;
  std::mutex failure_mutex;
  const std::size_t wave = std::max<std::size_t>(1, parallel_.wave);

  for (std::size_t lo = 0; lo < n && !failure; lo += wave) {
    const std::size_t hi = std::min(n, lo + wave);
    const std::uint64_t epoch = static_cast<std::uint64_t>(lo / wave);
    // Every configuration in the wave sees the same frozen incumbent, so
    // which worker runs which configuration cannot influence any result.
    const double frozen = incumbent.load(std::memory_order_acquire);
    std::atomic<std::size_t> next{lo};
    const auto body = [&](std::size_t worker) noexcept {
      try {
        Backend& backend = *backends[worker];
        for (;;) {
          const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= hi) break;
          const Configuration config = config_at(i);
          TraceContext ctx;
          ctx.epoch = epoch;
          ctx.config_ordinal = i;
          ConfigResult result = run_configuration(backend, config, options_,
                                                  as_incumbent(frozen), ctx);
          results[i].emplace(std::move(result));
        }
      } catch (...) {
        const std::scoped_lock lock(failure_mutex);
        if (!failure) failure = std::current_exception();
      }
    };
    const std::size_t active = std::min(backends.size(), hi - lo);
    std::vector<std::thread> threads;
    threads.reserve(active > 0 ? active - 1 : 0);
    for (std::size_t w = 1; w < active; ++w) threads.emplace_back(body, w);
    body(0);
    for (std::thread& t : threads) t.join();
    if (failure) break;

    // Ordered reduction over the finished wave feeds the next wave's
    // frozen incumbent — independent of worker count and completion
    // order, hence bit-reproducible.  The same reduction is where
    // incumbent updates become journal events: emitted here, in config
    // order on one thread, they are deterministic too.
    for (std::size_t i = lo; i < hi; ++i) {
      const double value = results[i]->value();
      const bool improved = atomic_max(incumbent, value);
      if (improved) {
        util::Profiler::instance().instant(util::ProfileCategory::Incumbent, i);
      }
      if (improved && options_.trace) {
        TraceEvent event;
        event.kind = TraceEvent::Kind::IncumbentUpdate;
        event.epoch = epoch;
        event.config_ordinal = i;
        event.invocation = results[i]->invocations.empty()
                               ? 0
                               : results[i]->invocations.size() - 1;
        event.rank = 7;
        event.config = config_at(i);
        event.value = value;
        options_.trace->emit(event);
      }
    }
  }
  if (failure) std::rethrow_exception(failure);
}

void ParallelEvaluator::evaluate_pipeline(
    EvalPool* pool, std::vector<std::unique_ptr<Backend>>& backends,
    const ConfigAt& config_at, std::size_t n, std::atomic<double>& incumbent,
    std::vector<std::optional<ConfigResult>>& results,
    CommitAccounting* accounting) const {
  const std::size_t wave = std::max<std::size_t>(1, parallel_.wave);
  const std::size_t window = lookahead();
  const std::size_t epochs = (n + wave - 1) / wave;

  PipelineSync sync;
  std::atomic<bool> cancelled{false};
  // done[i] flips when task i finished (with a result, or cancelled after a
  // failure); the commit frontier only crosses contiguous done slots.
  std::vector<std::uint8_t> done(n, 0);
  std::vector<Clock::time_point> done_at(n);

  // snapshots[k] = incumbent value once k epochs have committed (index 0 =
  // phase entry).  Epoch e executes against snapshots[max(0, e+1-window)]
  // — the wave-mode frozen incumbent when window == 1 — so every task's
  // input is a pure function of the schedule, never of worker timing.
  std::vector<double> snapshots(epochs + 1, kNoIncumbent);
  snapshots[0] = incumbent.load(std::memory_order_acquire);

  std::size_t dispatched = 0;
  std::size_t committed = 0;
  std::size_t committed_epochs = 0;

  const auto dispatch_one = [&](std::size_t i) {
    const std::uint64_t epoch = static_cast<std::uint64_t>(i / wave);
    const double frozen =
        snapshots[epoch + 1 > window ? epoch + 1 - window : 0];
    {
      const std::scoped_lock lock(sync.mutex);
      ++sync.in_flight;
    }
    auto task = [&, i, epoch, frozen](std::size_t worker) noexcept {
      std::optional<ConfigResult> result;
      std::exception_ptr error;
      if (!cancelled.load(std::memory_order_acquire)) {
        try {
          Backend& backend = *backends[worker];
          const Configuration config = config_at(i);
          TraceContext ctx;
          ctx.epoch = epoch;
          ctx.config_ordinal = i;
          result.emplace(run_configuration(backend, config, options_,
                                           as_incumbent(frozen), ctx));
        } catch (...) {
          error = std::current_exception();
        }
      }
      {
        const std::scoped_lock lock(sync.mutex);
        if (result.has_value()) results[i] = std::move(result);
        if (error && !sync.failure) {
          sync.failure = error;
          cancelled.store(true, std::memory_order_release);
        }
        done[i] = 1;
        done_at[i] = Clock::now();
        --sync.in_flight;
        // Notify under the lock: the coordinator destroys `sync` as soon
        // as its predicate holds, so an unlocked notify could touch a dead
        // condition variable.
        sync.cv.notify_all();
      }
    };
    if (pool != nullptr) {
      pool->submit(std::move(task));
    } else {
      task(0);
    }
  };

  try {
    bool aborted = false;
    while (committed < n && !aborted) {
      // Fill the dispatch window: every config whose epoch is within
      // `window` of the committed-epoch frontier.
      for (;;) {
        {
          const std::scoped_lock lock(sync.mutex);
          if (sync.failure) break;
        }
        if (dispatched >= n ||
            dispatched / wave >= committed_epochs + window) {
          break;
        }
        dispatch_one(dispatched);
        ++dispatched;
      }

      // Wait until the commit frontier can advance (or everything drained
      // after a failure).
      {
        std::unique_lock lock(sync.mutex);
        sync.cv.wait(lock, [&] {
          return done[committed] != 0 ||
                 (sync.failure && sync.in_flight == 0);
        });
        if (done[committed] == 0) break;  // failure drained; nothing to commit
      }

      // Retire every contiguous completed result, strictly in config
      // order.  This is the only place the incumbent advances, so the
      // rank-7 events replicate the wave reduction exactly.
      while (committed < n) {
        {
          const std::scoped_lock lock(sync.mutex);
          if (done[committed] == 0) break;
        }
        if (!results[committed].has_value()) {  // cancelled task: failing run
          aborted = true;
          break;
        }
        const std::size_t i = committed;
        util::Profiler& profiler = util::Profiler::instance();
        if (accounting != nullptr) {
          const Clock::time_point commit_at = Clock::now();
          accounting->commit_wait_ns += ns_between(done_at[i], commit_at);
          ++accounting->tasks;
          // Same interval commit_wait_ns accumulates: task done → committed.
          profiler.record(util::ProfileCategory::CommitWait,
                          profiler.to_ticks(done_at[i]),
                          profiler.to_ticks(commit_at), 0.0, i);
        }
        const double value = results[i]->value();
        const std::uint64_t epoch = static_cast<std::uint64_t>(i / wave);
        const bool improved = atomic_max(incumbent, value);
        if (improved) profiler.instant(util::ProfileCategory::Incumbent, i);
        if (improved && options_.trace) {
          TraceEvent event;
          event.kind = TraceEvent::Kind::IncumbentUpdate;
          event.epoch = epoch;
          event.config_ordinal = i;
          event.invocation = results[i]->invocations.empty()
                                 ? 0
                                 : results[i]->invocations.size() - 1;
          event.rank = 7;
          event.config = config_at(i);
          event.value = value;
          options_.trace->emit(event);
        }
        ++committed;
        if (committed % wave == 0 || committed == n) {
          snapshots[++committed_epochs] =
              incumbent.load(std::memory_order_acquire);
          util::Profiler::instance().instant(util::ProfileCategory::Epoch,
                                             committed_epochs);
        }
      }
    }
  } catch (...) {
    // Coordinator-side failure (config_at, trace sink): stop issuing work,
    // let in-flight tasks drain against live stack frames, then rethrow.
    cancelled.store(true, std::memory_order_release);
    std::unique_lock lock(sync.mutex);
    sync.cv.wait(lock, [&] { return sync.in_flight == 0; });
    throw;
  }

  std::unique_lock lock(sync.mutex);
  sync.cv.wait(lock, [&] { return sync.in_flight == 0; });
  if (sync.failure) std::rethrow_exception(sync.failure);
}

std::optional<util::ArenaStats> ParallelEvaluator::aggregate_arena_stats(
    const std::vector<std::unique_ptr<Backend>>& backends) {
  // Each worker owns an independent arena; the report shows the fleet-wide
  // totals.  Backends without an arena contribute nothing; if no backend
  // has one the run carries no arena section at all.
  std::optional<util::ArenaStats> total;
  for (const auto& backend : backends) {
    if (const auto stats = backend->arena_stats()) {
      if (!total) total.emplace();
      *total += *stats;
    }
  }
  return total;
}

void ParallelEvaluator::race_waves(std::vector<std::unique_ptr<Backend>>& backends,
                                   const RacingScheduler& scheduler,
                                   RacingScheduler::State& state) const {
  std::exception_ptr failure;
  std::mutex failure_mutex;
  const TunerOptions& options = scheduler.options();

  for (;;) {
    const auto blocks = RacingScheduler::round_blocks(state);
    if (blocks.empty()) break;
    util::ProfileSpan round_span(util::ProfileCategory::RacingRound,
                                 state.round);
    for (const auto& block : blocks) {
      // The incumbent refreshes at block boundaries only (an ordered
      // reduction over everything already run), so which worker ran which
      // entry cannot influence any entry's evaluation.
      const auto incumbent = RacingScheduler::frozen_incumbent(state);
      if (options.trace && incumbent.has_value()) {
        // Emitted on the coordinating thread before the block fans out —
        // same event, same sort key as the serial scheduler's step().
        TraceEvent event;
        event.kind = TraceEvent::Kind::IncumbentUpdate;
        event.epoch = state.round;
        event.config_ordinal = block.front();
        event.invocation = state.round;
        event.rank = 0;
        event.value = *incumbent;
        options.trace->emit(event);
      }
      // Pre-invocation skips are decided here, on the coordinating thread
      // with the frozen incumbent — the same single-threaded prologue the
      // serial scheduler uses, so worker count cannot affect them.
      scheduler.apply_counter_skips(state, block, incumbent, *backends[0]);

      std::atomic<std::size_t> next{0};
      const auto body = [&](std::size_t worker) noexcept {
        try {
          Backend& backend = *backends[worker];
          for (;;) {
            const std::size_t j = next.fetch_add(1, std::memory_order_relaxed);
            if (j >= block.size()) break;
            if (state.entries[block[j]].status != RacingScheduler::Status::Racing) {
              continue;
            }
            scheduler.run_entry_invocation(backend, state.entries[block[j]],
                                           incumbent, block[j]);
          }
        } catch (...) {
          const std::scoped_lock lock(failure_mutex);
          if (!failure) failure = std::current_exception();
        }
      };

      // Count the entries that will actually run — skipped/finished ones
      // cost no thread.  A block of 16 with one survivor used to spawn
      // min(workers, 16) threads of which all but one exited immediately.
      std::size_t runnable = 0;
      for (const std::size_t i : block) {
        if (state.entries[i].status == RacingScheduler::Status::Racing) {
          ++runnable;
        }
      }
      if (runnable == 0) continue;
      const std::size_t active = std::min(backends.size(), runnable);
      std::vector<std::thread> threads;
      threads.reserve(active > 0 ? active - 1 : 0);
      for (std::size_t w = 1; w < active; ++w) threads.emplace_back(body, w);
      body(0);
      for (std::thread& t : threads) t.join();
      if (failure) break;
    }

    if (failure) break;
    if (!scheduler.conclude_round(state)) break;
  }
  if (failure) std::rethrow_exception(failure);
}

void ParallelEvaluator::race_pipeline(
    EvalPool* pool, std::vector<std::unique_ptr<Backend>>& backends,
    const RacingScheduler& scheduler, RacingScheduler::State& state,
    CommitAccounting* accounting) const {
  const TunerOptions& options = scheduler.options();
  const std::size_t window = lookahead();

  for (;;) {
    const auto blocks = RacingScheduler::round_blocks(state);
    if (blocks.empty()) break;
    const std::size_t nblocks = blocks.size();
    util::ProfileSpan round_span(util::ProfileCategory::RacingRound,
                                 state.round);

    PipelineSync sync;
    std::atomic<bool> cancelled{false};
    // One pending slot per runnable entry of each block, filled by workers
    // out of order and merged by the coordinator strictly in block order.
    struct PendingInvocation {
      std::size_t entry = 0;
      InvocationResult result;
      bool valid = false;
    };
    std::vector<std::vector<PendingInvocation>> pending(nblocks);
    std::vector<std::size_t> remaining(nblocks, 0);
    std::vector<Clock::time_point> block_done_at(nblocks);

    // snapshots[k] = frozen incumbent after k blocks of this round have
    // committed (index 0 = round entry).  Block b dispatches against
    // snapshots[max(0, b+1-window)]; at window 1 that is exactly the
    // wave-mode per-block refresh.  The window resets each round — the
    // round barrier stays, because conclude_round needs the whole round.
    std::vector<std::optional<double>> snapshots(nblocks + 1);
    snapshots[0] = RacingScheduler::frozen_incumbent(state);

    // Dispatch prologue runs on the coordinator at a schedule-determined
    // point (exactly one block per committed block), so the counter-skip
    // calibration scan always sees the same committed prefix regardless of
    // worker timing.
    const auto dispatch_block = [&](std::size_t b) {
      const std::vector<std::size_t>& block = blocks[b];
      const std::optional<double> incumbent =
          snapshots[b + 1 > window ? b + 1 - window : 0];
      if (options.trace && incumbent.has_value()) {
        TraceEvent event;
        event.kind = TraceEvent::Kind::IncumbentUpdate;
        event.epoch = state.round;
        event.config_ordinal = block.front();
        event.invocation = state.round;
        event.rank = 0;
        event.value = *incumbent;
        options.trace->emit(event);
      }
      scheduler.apply_counter_skips(state, block, incumbent, *backends[0]);

      std::vector<std::size_t> runnable;
      for (const std::size_t i : block) {
        if (state.entries[i].status == RacingScheduler::Status::Racing) {
          runnable.push_back(i);
        }
      }
      pending[b].resize(runnable.size());
      {
        const std::scoped_lock lock(sync.mutex);
        remaining[b] = runnable.size();
        sync.in_flight += runnable.size();
        if (runnable.empty()) {
          block_done_at[b] = Clock::now();
          sync.cv.notify_all();  // under the lock; see evaluate_pipeline
        }
      }
      if (runnable.empty()) return;
      for (std::size_t j = 0; j < runnable.size(); ++j) {
        const std::size_t entry_index = runnable[j];
        // Captured at dispatch: the entry's committed invocation count and
        // a copy of its configuration — workers never touch State.
        const Configuration config =
            state.entries[entry_index].result.config;
        const auto invocation_index = static_cast<std::uint64_t>(
            state.entries[entry_index].result.invocations.size());
        auto task = [&, b, j, entry_index, config, invocation_index,
                     incumbent](std::size_t worker) noexcept {
          PendingInvocation slot;
          slot.entry = entry_index;
          std::exception_ptr error;
          if (!cancelled.load(std::memory_order_acquire)) {
            try {
              slot.result = scheduler.run_detached_invocation(
                  *backends[worker], config, invocation_index, incumbent,
                  entry_index);
              slot.valid = true;
            } catch (...) {
              error = std::current_exception();
            }
          }
          {
            const std::scoped_lock lock(sync.mutex);
            pending[b][j] = std::move(slot);
            if (error && !sync.failure) {
              sync.failure = error;
              cancelled.store(true, std::memory_order_release);
            }
            if (--remaining[b] == 0) block_done_at[b] = Clock::now();
            --sync.in_flight;
            sync.cv.notify_all();  // under the lock; see evaluate_pipeline
          }
        };
        if (pool != nullptr) {
          pool->submit(std::move(task));
        } else {
          task(0);
        }
      }
    };

    bool aborted = false;
    try {
      std::size_t next_dispatch = 0;
      for (; next_dispatch < std::min(window, nblocks); ++next_dispatch) {
        dispatch_block(next_dispatch);
      }
      for (std::size_t b = 0; b < nblocks && !aborted; ++b) {
        {
          std::unique_lock lock(sync.mutex);
          sync.cv.wait(lock, [&] {
            return remaining[b] == 0 ||
                   (sync.failure && sync.in_flight == 0);
          });
          if (remaining[b] != 0) {  // failure drained mid-round
            aborted = true;
            break;
          }
        }
        // In-order commit: merge the block's invocations in block order.
        for (PendingInvocation& slot : pending[b]) {
          if (!slot.valid) {  // cancelled after a failure
            aborted = true;
            break;
          }
          RacingScheduler::commit_invocation(state.entries[slot.entry],
                                             std::move(slot.result));
        }
        if (aborted) break;
        if (accounting != nullptr) {
          const Clock::time_point commit_at = Clock::now();
          accounting->commit_wait_ns +=
              ns_between(block_done_at[b], commit_at);
          accounting->tasks += pending[b].size();
          util::Profiler& profiler = util::Profiler::instance();
          profiler.record(util::ProfileCategory::CommitWait,
                          profiler.to_ticks(block_done_at[b]),
                          profiler.to_ticks(commit_at), 0.0, b);
        }
        snapshots[b + 1] = RacingScheduler::frozen_incumbent(state);
        if (next_dispatch < nblocks) {
          bool failed = false;
          {
            const std::scoped_lock lock(sync.mutex);
            failed = sync.failure != nullptr;
          }
          if (!failed) dispatch_block(next_dispatch++);
        }
      }
    } catch (...) {
      cancelled.store(true, std::memory_order_release);
      std::unique_lock lock(sync.mutex);
      sync.cv.wait(lock, [&] { return sync.in_flight == 0; });
      throw;
    }

    {
      std::unique_lock lock(sync.mutex);
      sync.cv.wait(lock, [&] { return sync.in_flight == 0; });
      if (sync.failure) std::rethrow_exception(sync.failure);
    }
    if (aborted) break;  // unreachable without a failure; defensive

    if (!scheduler.conclude_round(state)) break;
  }
}

TuningRun ParallelEvaluator::run_racing(
    std::vector<std::unique_ptr<Backend>>& backends, EvalPool* pool,
    const std::vector<Configuration>& configs,
    CommitAccounting* accounting) const {
  // A racing round is inherently a deterministic wave: every survivor's
  // invocation is keyed by (configuration, invocation index), the incumbent
  // is frozen per block, and elimination reduces in config order after
  // the round barrier — so live and deterministic mode coincide and results
  // are bit-identical for any worker count.
  const RacingScheduler scheduler(options_);
  RacingScheduler::State state = scheduler.init(configs);
  if (parallel_.scheduler == SchedulerMode::Pipeline) {
    race_pipeline(pool, backends, scheduler, state, accounting);
  } else {
    race_waves(backends, scheduler, state);
  }
  return RacingScheduler::finish(std::move(state));
}

TuningRun ParallelEvaluator::run_surrogate(const SearchSpace& space) const {
  const SurrogateScheduler scheduler(options_);
  SurrogateScheduler::State state = scheduler.init(space);
  const std::size_t seeds = state.seed_indices.size();
  if (seeds == 0) return {};

  const std::size_t wave = std::max<std::size_t>(1, parallel_.wave);
  auto backends = make_backends(
      std::min(seeds, std::max(wave, RacingScheduler::kBlock) * lookahead()));
  const std::unique_ptr<EvalPool> pool = make_pool(backends);
  const bool pipelined = parallel_.scheduler == SchedulerMode::Pipeline;
  CommitAccounting accounting;

  // Seed phase: deterministic waves regardless of ParallelOptions::
  // deterministic — the fitted model (and with it the confirm set) must be
  // a pure function of the seed batch for the bit-reproducibility claim to
  // hold across worker counts.  Epoch = wave index, like the exhaustive
  // deterministic mode.
  util::Profiler::instance().set_thread_name("coordinator");
  std::vector<std::optional<ConfigResult>> results(seeds);
  std::atomic<double> incumbent{kNoIncumbent};
  const auto seed_at = [&](std::size_t i) {
    return space.config_at(state.seed_indices[i]);
  };
  {
    util::ProfileSpan seed_span(util::ProfileCategory::SurrogateSeed, seeds);
    if (pipelined) {
      evaluate_pipeline(pool.get(), backends, seed_at, seeds, incumbent,
                        results, &accounting);
    } else {
      evaluate_waves(backends, seed_at, seeds, incumbent, results);
    }
  }
  for (auto& result : results) {
    SurrogateScheduler::normalize_seed_time(*result);
    state.seed_results.push_back(std::move(*result));
  }

  // Fit + prune on the coordinating thread, one epoch past the seed waves.
  const std::uint64_t wave_count = (seeds + wave - 1) / wave;
  {
    util::ProfileSpan fit_span(util::ProfileCategory::SurrogateFit, seeds);
    scheduler.fit_and_prune(space, state, wave_count);
  }

  // Confirm race: racing waves with the logical sort key shifted past the
  // seed phase (epochs past the fit/prune epoch, ordinals past the seeds).
  // The same pool carries both phases — no teardown between them.
  OffsetTraceSink sink(options_.trace, wave_count + 1, seeds);
  const RacingScheduler confirm(
      scheduler.confirm_options(options_.trace ? &sink : nullptr));
  {
    util::ProfileSpan confirm_span(util::ProfileCategory::SurrogateConfirm,
                                   state.confirm_indices.size());
    if (pipelined) {
      race_pipeline(pool.get(), backends, confirm, state.race, &accounting);
    } else {
      race_waves(backends, confirm, state.race);
    }
  }

  TuningRun run = SurrogateScheduler::finish(std::move(state));
  run.arena = aggregate_arena_stats(backends);
  attach_sched_stats(run, pool.get(), backends.size(), accounting);
  return run;
}

}  // namespace rooftune::core
