#include "core/parallel_evaluator.hpp"

#include <algorithm>
#include <exception>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

#include "core/surrogate.hpp"
#include "util/log.hpp"

namespace rooftune::core {

namespace {

// -inf marks "no incumbent yet": every real configuration value (GFLOP/s,
// GB/s) exceeds it, and it converts to std::nullopt before reaching the
// stop conditions.
constexpr double kNoIncumbent = -std::numeric_limits<double>::infinity();

std::optional<double> as_incumbent(double value) {
  if (value == kNoIncumbent) return std::nullopt;
  return value;
}

/// Raise `target` to `value`; true when `value` became the new maximum
/// (the caller publishes an incumbent-update trace event on that edge).
bool atomic_max(std::atomic<double>& target, double value) {
  double current = target.load(std::memory_order_relaxed);
  while (value > current) {
    if (target.compare_exchange_weak(current, value,
                                     std::memory_order_acq_rel)) {
      return true;
    }
  }
  return false;
}

}  // namespace

ParallelEvaluator::ParallelEvaluator(BackendFactory factory, TunerOptions options,
                                     ParallelOptions parallel)
    : factory_(std::move(factory)), options_(options), parallel_(parallel) {
  if (!factory_) {
    throw std::invalid_argument("ParallelEvaluator: null backend factory");
  }
}

std::vector<std::unique_ptr<Backend>> ParallelEvaluator::make_backends(
    std::size_t max_workers) const {
  std::size_t workers =
      parallel_.workers != 0
          ? parallel_.workers
          : std::max<std::size_t>(1, std::thread::hardware_concurrency());
  workers = std::min(workers, std::max<std::size_t>(1, max_workers));

  // Probe reentrancy with the first backend (it becomes worker 0's).
  std::vector<std::unique_ptr<Backend>> backends;
  backends.push_back(factory_());
  if (backends.front() == nullptr) {
    throw std::invalid_argument("ParallelEvaluator: factory returned null backend");
  }
  if (workers > 1 && !backends.front()->reentrant()) {
    util::log_warn() << "ParallelEvaluator: backend is not reentrant; "
                        "falling back to 1 worker";
    workers = 1;
  }
  for (std::size_t w = 1; w < workers; ++w) {
    backends.push_back(factory_());
    if (backends.back() == nullptr) {
      throw std::invalid_argument("ParallelEvaluator: factory returned null backend");
    }
  }
  return backends;
}

TuningRun ParallelEvaluator::run(const SearchSpace& space) const {
  if (options_.strategy == SearchStrategy::Surrogate) {
    return run_surrogate(space);
  }
  const SpaceView view(space, options_.order, options_.random_seed);
  return run_impl([&view](std::size_t i) { return view.at(i); }, view.size());
}

TuningRun ParallelEvaluator::run(const std::vector<Configuration>& configs) const {
  if (options_.strategy == SearchStrategy::Surrogate) {
    throw std::invalid_argument(
        "ParallelEvaluator: the surrogate strategy scores the whole space — "
        "call run(const SearchSpace&) instead of run(configs)");
  }
  return run_impl([&configs](std::size_t i) { return configs[i]; }, configs.size());
}

TuningRun ParallelEvaluator::run_impl(const ConfigAt& config_at, std::size_t n) const {
  TuningRun run;
  if (n == 0) return run;

  auto backends = make_backends(n);

  if (options_.strategy == SearchStrategy::Racing) {
    // The race holds per-entry state for the whole population; materialize
    // its config list once.
    std::vector<Configuration> configs;
    configs.reserve(n);
    for (std::size_t i = 0; i < n; ++i) configs.push_back(config_at(i));
    TuningRun racing_run = run_racing(backends, configs);
    racing_run.arena = aggregate_arena_stats(backends);
    return racing_run;
  }

  std::vector<std::optional<ConfigResult>> results(n);
  std::atomic<double> incumbent{kNoIncumbent};

  if (parallel_.deterministic) {
    evaluate_waves(backends, config_at, n, incumbent, results);
  } else {
    // Live mode: workers pull from a shared queue, read the freshest
    // incumbent per configuration and publish completions immediately.
    // Each configuration is its own epoch (like the serial loop).
    std::exception_ptr failure;
    std::mutex failure_mutex;
    std::atomic<std::size_t> next{0};
    const auto body = [&](std::size_t worker) noexcept {
      try {
        Backend& backend = *backends[worker];
        for (;;) {
          const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= n) break;
          const double inc = incumbent.load(std::memory_order_acquire);
          const Configuration config = config_at(i);
          TraceContext ctx;
          ctx.epoch = i;
          ctx.config_ordinal = i;
          ConfigResult result = run_configuration(backend, config, options_,
                                                  as_incumbent(inc), ctx);
          const double value = result.value();
          if (atomic_max(incumbent, value) && options_.trace) {
            // Live mode makes no determinism claim; the event records when
            // this worker observed its value become the new best.
            TraceEvent event;
            event.kind = TraceEvent::Kind::IncumbentUpdate;
            event.epoch = ctx.epoch;
            event.config_ordinal = ctx.config_ordinal;
            event.invocation = result.invocations.empty()
                                   ? 0
                                   : result.invocations.size() - 1;
            event.rank = 7;
            event.config = config;
            event.value = value;
            options_.trace->emit(event);
          }
          results[i].emplace(std::move(result));
        }
      } catch (...) {
        const std::scoped_lock lock(failure_mutex);
        if (!failure) failure = std::current_exception();
      }
    };
    const std::size_t active = std::min(backends.size(), n);
    std::vector<std::thread> threads;
    threads.reserve(active > 0 ? active - 1 : 0);
    for (std::size_t w = 1; w < active; ++w) threads.emplace_back(body, w);
    body(0);
    for (std::thread& t : threads) t.join();
    if (failure) std::rethrow_exception(failure);
  }

  // Final ordered reduction: identical best/tie-breaking rule to the
  // serial Autotuner loop (first strictly-greater value wins).
  std::optional<double> best;
  run.results.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    ConfigResult result = std::move(*results[i]);
    run.total_iterations += result.total_iterations;
    run.total_invocations += result.invocations.size();
    if (result.pruned()) ++run.pruned_configs;
    run.total_time += result.total_time;
    run.total_setup_time += result.total_setup_time;
    run.total_kernel_time += result.total_kernel_time;
    const double value = result.value();
    if (!best.has_value() || value > *best) {
      best = value;
      run.best_index = i;
    }
    run.results.push_back(std::move(result));
  }
  run.arena = aggregate_arena_stats(backends);
  return run;
}

void ParallelEvaluator::evaluate_waves(
    std::vector<std::unique_ptr<Backend>>& backends, const ConfigAt& config_at,
    std::size_t n, std::atomic<double>& incumbent,
    std::vector<std::optional<ConfigResult>>& results) const {
  std::exception_ptr failure;
  std::mutex failure_mutex;
  const std::size_t wave = std::max<std::size_t>(1, parallel_.wave);

  for (std::size_t lo = 0; lo < n && !failure; lo += wave) {
    const std::size_t hi = std::min(n, lo + wave);
    const std::uint64_t epoch = static_cast<std::uint64_t>(lo / wave);
    // Every configuration in the wave sees the same frozen incumbent, so
    // which worker runs which configuration cannot influence any result.
    const double frozen = incumbent.load(std::memory_order_acquire);
    std::atomic<std::size_t> next{lo};
    const auto body = [&](std::size_t worker) noexcept {
      try {
        Backend& backend = *backends[worker];
        for (;;) {
          const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= hi) break;
          const Configuration config = config_at(i);
          TraceContext ctx;
          ctx.epoch = epoch;
          ctx.config_ordinal = i;
          ConfigResult result = run_configuration(backend, config, options_,
                                                  as_incumbent(frozen), ctx);
          results[i].emplace(std::move(result));
        }
      } catch (...) {
        const std::scoped_lock lock(failure_mutex);
        if (!failure) failure = std::current_exception();
      }
    };
    const std::size_t active = std::min(backends.size(), hi - lo);
    std::vector<std::thread> threads;
    threads.reserve(active > 0 ? active - 1 : 0);
    for (std::size_t w = 1; w < active; ++w) threads.emplace_back(body, w);
    body(0);
    for (std::thread& t : threads) t.join();
    if (failure) break;

    // Ordered reduction over the finished wave feeds the next wave's
    // frozen incumbent — independent of worker count and completion
    // order, hence bit-reproducible.  The same reduction is where
    // incumbent updates become journal events: emitted here, in config
    // order on one thread, they are deterministic too.
    for (std::size_t i = lo; i < hi; ++i) {
      const double value = results[i]->value();
      if (atomic_max(incumbent, value) && options_.trace) {
        TraceEvent event;
        event.kind = TraceEvent::Kind::IncumbentUpdate;
        event.epoch = epoch;
        event.config_ordinal = i;
        event.invocation = results[i]->invocations.empty()
                               ? 0
                               : results[i]->invocations.size() - 1;
        event.rank = 7;
        event.config = config_at(i);
        event.value = value;
        options_.trace->emit(event);
      }
    }
  }
  if (failure) std::rethrow_exception(failure);
}

std::optional<util::ArenaStats> ParallelEvaluator::aggregate_arena_stats(
    const std::vector<std::unique_ptr<Backend>>& backends) {
  // Each worker owns an independent arena; the report shows the fleet-wide
  // totals.  Backends without an arena contribute nothing; if no backend
  // has one the run carries no arena section at all.
  std::optional<util::ArenaStats> total;
  for (const auto& backend : backends) {
    if (const auto stats = backend->arena_stats()) {
      if (!total) total.emplace();
      *total += *stats;
    }
  }
  return total;
}

void ParallelEvaluator::race_waves(std::vector<std::unique_ptr<Backend>>& backends,
                                   const RacingScheduler& scheduler,
                                   RacingScheduler::State& state) const {
  std::exception_ptr failure;
  std::mutex failure_mutex;
  const TunerOptions& options = scheduler.options();

  for (;;) {
    const auto blocks = RacingScheduler::round_blocks(state);
    if (blocks.empty()) break;
    for (const auto& block : blocks) {
      // The incumbent refreshes at block boundaries only (an ordered
      // reduction over everything already run), so which worker ran which
      // entry cannot influence any entry's evaluation.
      const auto incumbent = RacingScheduler::frozen_incumbent(state);
      if (options.trace && incumbent.has_value()) {
        // Emitted on the coordinating thread before the block fans out —
        // same event, same sort key as the serial scheduler's step().
        TraceEvent event;
        event.kind = TraceEvent::Kind::IncumbentUpdate;
        event.epoch = state.round;
        event.config_ordinal = block.front();
        event.invocation = state.round;
        event.rank = 0;
        event.value = *incumbent;
        options.trace->emit(event);
      }
      // Pre-invocation skips are decided here, on the coordinating thread
      // with the frozen incumbent — the same single-threaded prologue the
      // serial scheduler uses, so worker count cannot affect them.
      scheduler.apply_counter_skips(state, block, incumbent, *backends[0]);

      std::atomic<std::size_t> next{0};
      const auto body = [&](std::size_t worker) noexcept {
        try {
          Backend& backend = *backends[worker];
          for (;;) {
            const std::size_t j = next.fetch_add(1, std::memory_order_relaxed);
            if (j >= block.size()) break;
            if (state.entries[block[j]].status != RacingScheduler::Status::Racing) {
              continue;
            }
            scheduler.run_entry_invocation(backend, state.entries[block[j]],
                                           incumbent, block[j]);
          }
        } catch (...) {
          const std::scoped_lock lock(failure_mutex);
          if (!failure) failure = std::current_exception();
        }
      };

      const std::size_t active = std::min(backends.size(), block.size());
      std::vector<std::thread> threads;
      threads.reserve(active > 0 ? active - 1 : 0);
      for (std::size_t w = 1; w < active; ++w) threads.emplace_back(body, w);
      body(0);
      for (std::thread& t : threads) t.join();
      if (failure) break;
    }

    if (failure) break;
    if (!scheduler.conclude_round(state)) break;
  }
  if (failure) std::rethrow_exception(failure);
}

TuningRun ParallelEvaluator::run_racing(
    std::vector<std::unique_ptr<Backend>>& backends,
    const std::vector<Configuration>& configs) const {
  // A racing round is inherently a deterministic wave: every survivor's
  // invocation is keyed by (configuration, invocation index), the incumbent
  // is frozen for the round, and elimination reduces in config order after
  // the barrier — so live and deterministic mode coincide and results are
  // bit-identical for any worker count.
  const RacingScheduler scheduler(options_);
  RacingScheduler::State state = scheduler.init(configs);
  race_waves(backends, scheduler, state);
  return RacingScheduler::finish(std::move(state));
}

TuningRun ParallelEvaluator::run_surrogate(const SearchSpace& space) const {
  const SurrogateScheduler scheduler(options_);
  SurrogateScheduler::State state = scheduler.init(space);
  const std::size_t seeds = state.seed_indices.size();
  if (seeds == 0) return {};

  auto backends = make_backends(seeds);

  // Seed phase: deterministic waves regardless of ParallelOptions::
  // deterministic — the fitted model (and with it the confirm set) must be
  // a pure function of the seed batch for the bit-reproducibility claim to
  // hold across worker counts.  Epoch = wave index, like the exhaustive
  // deterministic mode.
  std::vector<std::optional<ConfigResult>> results(seeds);
  std::atomic<double> incumbent{kNoIncumbent};
  evaluate_waves(
      backends,
      [&](std::size_t i) { return space.config_at(state.seed_indices[i]); }, seeds,
      incumbent, results);
  for (auto& result : results) {
    SurrogateScheduler::normalize_seed_time(*result);
    state.seed_results.push_back(std::move(*result));
  }

  // Fit + prune on the coordinating thread, one epoch past the seed waves.
  const std::size_t wave = std::max<std::size_t>(1, parallel_.wave);
  const std::uint64_t wave_count = (seeds + wave - 1) / wave;
  scheduler.fit_and_prune(space, state, wave_count);

  // Confirm race: racing waves with the logical sort key shifted past the
  // seed phase (epochs past the fit/prune epoch, ordinals past the seeds).
  OffsetTraceSink sink(options_.trace, wave_count + 1, seeds);
  const RacingScheduler confirm(
      scheduler.confirm_options(options_.trace ? &sink : nullptr));
  race_waves(backends, confirm, state.race);

  TuningRun run = SurrogateScheduler::finish(std::move(state));
  run.arena = aggregate_arena_stats(backends);
  return run;
}

}  // namespace rooftune::core
