#pragma once
// SchedulerStats — per-run accounting for the parallel evaluation
// scheduler (core::EvalPool + the in-order commit stage).
//
// Every field except mode/workers/lookahead is a wall-clock measurement
// and therefore nondeterministic run to run.  That is why the stats ride
// OUTSIDE the journal's bit-identity boundary: they are only collected
// when ParallelOptions::sched_stats is set, and the journal serializes
// them as a separate {"t":"scheduler"} record that is absent by default
// (see trace/journal.cpp).

#include <cstdint>
#include <string>

namespace rooftune::core {

struct SchedulerStats {
  std::string mode;            ///< "wave" or "pipeline"
  std::uint64_t workers = 0;   ///< pool width actually used
  std::uint64_t lookahead = 0; ///< epochs in flight (1 = wave-equivalent)
  std::uint64_t tasks = 0;     ///< tasks executed across the pool
  std::uint64_t steals = 0;    ///< tasks obtained from another worker's deque
  std::uint64_t parks = 0;     ///< times a worker slept for lack of work
  std::uint64_t idle_ns = 0;   ///< summed worker time parked or scanning empty
  std::uint64_t busy_ns = 0;   ///< summed worker time inside task bodies
  std::uint64_t commit_wait_ns = 0;  ///< completed-to-committed latency sum
  std::uint64_t span_ns = 0;   ///< pool lifetime (construction to stats())

  /// Fraction of total worker-time spent without work; the headline number
  /// the pipeline ablation drives down versus wave scheduling.
  [[nodiscard]] double idle_fraction() const {
    const double denom =
        static_cast<double>(workers) * static_cast<double>(span_ns);
    return denom > 0.0 ? static_cast<double>(idle_ns) / denom : 0.0;
  }
};

}  // namespace rooftune::core
