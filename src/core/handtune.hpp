#pragma once
// Derivation of the paper's hand-tuned baselines (§VI-C, Table VII).
//
// "Hand-tuned Time": one invocation, inner iteration count tuned so the
// total runtime matches the most-optimized technique's runtime.
// "Hand-tuned Accuracy": one invocation, iteration count tuned upward until
// the tuning result is comparable to the optimized implementations.
//
// The paper's authors did this by hand; these helpers automate exactly that
// procedure so Table VII can be regenerated for any machine.

#include <cstdint>

#include "core/autotuner.hpp"

namespace rooftune::core {

struct HandTuneResult {
  std::uint64_t iterations = 0;  ///< the chosen inner iteration count
  TuningRun run;                 ///< the tuning run at that count
};

/// Largest iteration count (1 invocation) whose exhaustive run finishes
/// within `target_time`; found by doubling then bisecting.  Runs multiple
/// tuning passes against `backend`, so it is intended for simulated or
/// cheap backends.
HandTuneResult hand_tune_time(Backend& backend, const SearchSpace& space,
                              const TunerOptions& base, util::Seconds target_time);

/// Smallest iteration count (1 invocation, scanned over a coarse grid) whose
/// best-found value is within `tolerance` (relative) of `reference_value`.
HandTuneResult hand_tune_accuracy(Backend& backend, const SearchSpace& space,
                                  const TunerOptions& base, double reference_value,
                                  double tolerance = 0.005);

}  // namespace rooftune::core
