#pragma once
// Execution backend: the boundary between the autotuner (which only sees
// samples, time, and a clock) and whatever actually runs the kernel — real
// hardware via blas/stream, or the simulated machines in simhw.
//
// The benchmarking process (paper Fig. 2) is:
//   for each invocation:            (outer invocation loop)
//     begin_invocation()            — process launch, buffers, init, preheat
//     repeat: run_iteration()       (inner iteration loop)
//     end_invocation()
//
// A backend charges ALL costs (launch, init, preheat, kernel) to its clock;
// the "Time" columns of Tables VIII–XI are differences of that clock.

#include <cstdint>
#include <optional>
#include <string>

#include "core/bottleneck.hpp"
#include "core/config.hpp"
#include "core/telemetry_span.hpp"
#include "util/clock.hpp"
#include "util/units.hpp"
#include "util/workspace_arena.hpp"

namespace rooftune::core {

/// One inner-loop measurement: a higher-is-better metric sample (GFLOP/s or
/// GB/s) and the kernel time it consumed (feeds the max-time stop condition).
struct Sample {
  double value = 0.0;
  util::Seconds kernel_time{0.0};
};

/// Aggregate of `count` consecutive kernel iterations timed as one unit
/// (one timer pair around the whole group).  `value` is the group-mean
/// metric; `kernel_time` the group's total measured kernel time.
struct BatchSample {
  double value = 0.0;
  util::Seconds kernel_time{0.0};
  std::uint64_t count = 0;
};

class Backend {
 public:
  virtual ~Backend() = default;

  /// Prepare one benchmark program invocation for `config`.
  /// `invocation_index` distinguishes repeated invocations so backends can
  /// reproduce invocation-level variance (Georges et al.).
  virtual void begin_invocation(const Configuration& config,
                                std::uint64_t invocation_index) = 0;

  /// Execute one kernel iteration; must be called between begin/end.
  virtual Sample run_iteration() = 0;

  /// Execute `count` kernel iterations as one timed unit.  Backends that
  /// pay real timer overhead override this to wrap the whole group in a
  /// single timer pair (amortizing the per-call cost the evaluator's
  /// adaptive batching exists to remove); the default composes
  /// run_iteration() and reports the work-weighted mean rate, which is
  /// what a single timer pair around the group would have measured.
  virtual BatchSample run_batch(std::uint64_t count) {
    BatchSample batch;
    double work = 0.0;   // value * time, i.e. metric-units delivered
    double values = 0.0; // fallback for zero-cost scripted backends
    for (std::uint64_t i = 0; i < count; ++i) {
      const Sample s = run_iteration();
      work += s.value * s.kernel_time.value;
      values += s.value;
      batch.kernel_time += s.kernel_time;
      ++batch.count;
    }
    if (batch.count == 0) return batch;
    batch.value = batch.kernel_time.value > 0.0
                      ? work / batch.kernel_time.value
                      : values / static_cast<double>(batch.count);
    return batch;
  }

  /// Tear down the invocation (free buffers / account teardown time).
  virtual void end_invocation() = 0;

  /// The time source all durations are measured against.
  [[nodiscard]] virtual const util::Clock& clock() const = 0;

  /// True when *multiple instances* of this backend may evaluate different
  /// configurations concurrently in one process (each ParallelEvaluator
  /// worker owns its own instance).  Defaults to false: backends that own
  /// process-global state — the native backends pin affinity and share the
  /// OpenMP runtime — must stay serial.  The simulated backends (pure
  /// virtual clock + per-instance RNG) and the pipe backend (one child
  /// process per instance, i.e. a bounded process pool) declare true.
  [[nodiscard]] virtual bool reentrant() const { return false; }

  /// Workspace-arena counters for backends that lease operand buffers from
  /// a util::WorkspaceArena (the native backends; the simulated backends
  /// report modelled counters when SimOptions::arena_reuse is on).  The
  /// tuner copies this into TuningRun so reports can show slab hit rates —
  /// the instrumented proof that the steady-state loop allocates nothing.
  [[nodiscard]] virtual std::optional<util::ArenaStats> arena_stats() const {
    return std::nullopt;
  }

  /// Durations of the most recently completed invocation as accounted by
  /// the backend itself.
  struct InvocationTiming {
    util::Seconds setup{0.0};  ///< begin_invocation + end_invocation costs
    util::Seconds wall{0.0};   ///< everything between those boundaries
  };

  /// Exact invocation timing, when the backend can provide it independently
  /// of its clock's accumulated base.  The simulated backends sum their
  /// modelled charges from zero each invocation, so the result is
  /// bit-identical for any worker assignment — which is what makes trace
  /// journals reproducible (docs/observability.md).  The default nullopt
  /// tells callers to fall back to clock spans (exact enough for real
  /// hardware, where nothing is bit-reproducible anyway).
  [[nodiscard]] virtual std::optional<InvocationTiming> last_invocation_timing()
      const {
    return std::nullopt;
  }

  /// Machine telemetry over the most recently completed invocation, when
  /// the backend can account it.  The simulated backends compute it from
  /// their deterministic thermal/energy model (a pure function of the
  /// invocation's modelled durations, hence bit-identical across worker
  /// assignments); real backends leave the default nullopt and rely on the
  /// journal's span probe / the background sampler instead.
  [[nodiscard]] virtual std::optional<TelemetrySpan> last_invocation_telemetry()
      const {
    return std::nullopt;
  }

  /// Hardware-counter deltas over the most recently completed invocation,
  /// when the backend can account them.  The simulated backends derive
  /// cycles/instructions/LLC-misses from the same response surfaces that
  /// generate timings (SimOptions::counter_model) — a pure function of the
  /// invocation's modelled work, hence bit-identical across worker
  /// assignments.  Real backends leave the default nullopt; their counters
  /// flow through the trace sink's sampler instead
  /// (TraceSink::kernel_phase_counters).
  [[nodiscard]] virtual std::optional<CounterSample> last_invocation_counters()
      const {
    return std::nullopt;
  }

  /// Predicted operational intensity (flops/byte) of `config`, computable
  /// *without running it* — the analytic work/traffic model the backend's
  /// intensity columns are built from.  This is what lets the counter-prune
  /// policy skip a configuration before its first invocation: the roofline
  /// bound DRAM_bw × OI needs only the OI prediction, and the prediction is
  /// only trusted once measured OIs from earlier invocations have validated
  /// it (RacingScheduler::apply_counter_skips).  Must be an upper bound on
  /// the real OI (compulsory traffic is the least traffic possible), so the
  /// derived ceiling stays sound.  Default: no prediction, never skipped.
  [[nodiscard]] virtual std::optional<double> analytic_intensity(
      const Configuration& config) const {
    (void)config;
    return std::nullopt;
  }

  /// Analytic work one kernel iteration performs, in FLOP — e.g. 2nmk for
  /// DGEMM, 2N for TRIAD.  Feeds the trace journal's operational-intensity
  /// columns (measured counter bytes vs. this analytic numerator).  nullopt
  /// when the backend cannot know (scripted/pipe backends).
  [[nodiscard]] virtual std::optional<double> flops_per_iteration() const {
    return std::nullopt;
  }

  /// Analytic memory traffic one kernel iteration moves, in bytes — e.g.
  /// 8(nk + km + nm) for DGEMM, 24N for TRIAD.  Denominator of the analytic
  /// operational intensity printed next to the counter-derived one.
  [[nodiscard]] virtual std::optional<double> bytes_per_iteration() const {
    return std::nullopt;
  }

  /// "GFLOP/s" or "GB/s" — used in reports.
  [[nodiscard]] virtual std::string metric_name() const = 0;
};

}  // namespace rooftune::core
