#pragma once
// Execution backend: the boundary between the autotuner (which only sees
// samples, time, and a clock) and whatever actually runs the kernel — real
// hardware via blas/stream, or the simulated machines in simhw.
//
// The benchmarking process (paper Fig. 2) is:
//   for each invocation:            (outer invocation loop)
//     begin_invocation()            — process launch, buffers, init, preheat
//     repeat: run_iteration()       (inner iteration loop)
//     end_invocation()
//
// A backend charges ALL costs (launch, init, preheat, kernel) to its clock;
// the "Time" columns of Tables VIII–XI are differences of that clock.

#include <cstdint>
#include <string>

#include "core/config.hpp"
#include "util/clock.hpp"
#include "util/units.hpp"

namespace rooftune::core {

/// One inner-loop measurement: a higher-is-better metric sample (GFLOP/s or
/// GB/s) and the kernel time it consumed (feeds the max-time stop condition).
struct Sample {
  double value = 0.0;
  util::Seconds kernel_time{0.0};
};

class Backend {
 public:
  virtual ~Backend() = default;

  /// Prepare one benchmark program invocation for `config`.
  /// `invocation_index` distinguishes repeated invocations so backends can
  /// reproduce invocation-level variance (Georges et al.).
  virtual void begin_invocation(const Configuration& config,
                                std::uint64_t invocation_index) = 0;

  /// Execute one kernel iteration; must be called between begin/end.
  virtual Sample run_iteration() = 0;

  /// Tear down the invocation (free buffers / account teardown time).
  virtual void end_invocation() = 0;

  /// The time source all durations are measured against.
  [[nodiscard]] virtual const util::Clock& clock() const = 0;

  /// True when *multiple instances* of this backend may evaluate different
  /// configurations concurrently in one process (each ParallelEvaluator
  /// worker owns its own instance).  Defaults to false: backends that own
  /// process-global state — the native backends pin affinity and share the
  /// OpenMP runtime — must stay serial.  The simulated backends (pure
  /// virtual clock + per-instance RNG) and the pipe backend (one child
  /// process per instance, i.e. a bounded process pool) declare true.
  [[nodiscard]] virtual bool reentrant() const { return false; }

  /// "GFLOP/s" or "GB/s" — used in reports.
  [[nodiscard]] virtual std::string metric_name() const = 0;
};

}  // namespace rooftune::core
