#include "core/stop_condition_ext.hpp"

#include <cmath>
#include <stdexcept>

#include "util/strings.hpp"

namespace rooftune::core {

// ---- OnlineMedianStop --------------------------------------------------------

OnlineMedianStop::OnlineMedianStop(double tolerance, std::uint64_t min_samples)
    : tolerance_(tolerance),
      min_samples_(std::max<std::uint64_t>(min_samples, 10)),
      lo_(0.45),
      median_(0.5),
      hi_(0.55) {
  if (tolerance <= 0.0) throw std::invalid_argument("OnlineMedianStop: tolerance > 0");
}

void OnlineMedianStop::observe(double sample) const {
  lo_.add(sample);
  median_.add(sample);
  hi_.add(sample);
}

void OnlineMedianStop::reset() const {
  lo_ = stats::P2Quantile(0.45);
  median_ = stats::P2Quantile(0.5);
  hi_ = stats::P2Quantile(0.55);
}

StopReason OnlineMedianStop::check(const EvalState& state) const {
  (void)state;
  if (median_.count() < min_samples_) return StopReason::None;
  const double med = median_.value();
  if (med == 0.0) return StopReason::None;
  const double band = hi_.value() - lo_.value();
  return (band / std::fabs(med) <= 2.0 * tolerance_) ? StopReason::Converged
                                                     : StopReason::None;
}

std::string OnlineMedianStop::name() const {
  return util::format("online-median(+/-%.2g%%, min=%llu)", tolerance_ * 100.0,
                      static_cast<unsigned long long>(min_samples_));
}

// ---- SteadyStateStop ---------------------------------------------------------

SteadyStateStop::SteadyStateStop(double cov_threshold, std::size_t window)
    : cov_threshold_(cov_threshold), window_(window) {
  if (cov_threshold <= 0.0) {
    throw std::invalid_argument("SteadyStateStop: threshold > 0");
  }
  if (window < 4) throw std::invalid_argument("SteadyStateStop: window >= 4");
}

void SteadyStateStop::observe(double sample) const {
  recent_.push_back(sample);
  if (recent_.size() > window_) recent_.erase(recent_.begin());
}

void SteadyStateStop::reset() const { recent_.clear(); }

StopReason SteadyStateStop::check(const EvalState& state) const {
  (void)state;
  if (recent_.size() < window_) return StopReason::None;
  double mean = 0.0;
  for (double x : recent_) mean += x;
  mean /= static_cast<double>(recent_.size());
  if (mean == 0.0) return StopReason::None;
  double var = 0.0;
  for (double x : recent_) var += (x - mean) * (x - mean);
  var /= static_cast<double>(recent_.size() - 1);
  const double cov = std::sqrt(var) / std::fabs(mean);
  return cov <= cov_threshold_ ? StopReason::Converged : StopReason::None;
}

std::string SteadyStateStop::name() const {
  return util::format("steady-state(CoV<=%.2g%%, w=%zu)", cov_threshold_ * 100.0,
                      window_);
}

// ---- IndependenceStop --------------------------------------------------------

IndependenceStop::IndependenceStop(std::size_t window, double threshold)
    : autocorr_(window), threshold_(threshold) {}

void IndependenceStop::observe(double sample) const { autocorr_.add(sample); }

void IndependenceStop::reset() const { autocorr_.reset(); }

StopReason IndependenceStop::check(const EvalState& state) const {
  (void)state;
  return autocorr_.independent(threshold_) ? StopReason::Converged
                                           : StopReason::None;
}

std::string IndependenceStop::name() const {
  return util::format("independence(|rho1|<%s)",
                      threshold_ > 0.0 ? util::format("%.2g", threshold_).c_str()
                                       : "2/sqrt(w)");
}

}  // namespace rooftune::core
