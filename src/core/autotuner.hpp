#pragma once
// Exhaustive autotuner with incumbent tracking (paper §IV-C: for spaces of
// this cardinality, exhaustive search beats metaheuristics).  Also provides
// random search as the baseline alternative the paper mentions.

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/backend.hpp"
#include "core/evaluator.hpp"
#include "core/search_space.hpp"
#include "core/sched_stats.hpp"

namespace rooftune::core {

/// Complete record of one tuning run.
struct TuningRun {
  std::vector<ConfigResult> results;     ///< in visit order
  std::optional<std::size_t> best_index; ///< into results
  util::Seconds total_time{0.0};         ///< backend-clock span of the run
  util::Seconds total_setup_time{0.0};   ///< setup/teardown share of total_time
  util::Seconds total_kernel_time{0.0};  ///< measured-kernel share of total_time
  std::uint64_t total_iterations = 0;
  std::uint64_t total_invocations = 0;
  std::uint64_t pruned_configs = 0;
  /// Workspace-arena counters at the end of the run (backends that lease
  /// operands from a util::WorkspaceArena; aggregated across workers by
  /// ParallelEvaluator).  Reports use this to show slab hit rates.
  std::optional<util::ArenaStats> arena;
  /// Parallel-scheduler accounting (pool idle/steal/commit-latency);
  /// present only when ParallelOptions::sched_stats asked for it.  The
  /// counters are wall-clock measurements, deliberately kept out of the
  /// journal's bit-identity boundary.
  std::optional<SchedulerStats> sched;

  [[nodiscard]] const ConfigResult& best() const;
  [[nodiscard]] double best_value() const { return best().value(); }
  [[nodiscard]] const Configuration& best_config() const { return best().config; }
};

class Autotuner {
 public:
  /// Called after every evaluated configuration (progress reporting).
  using ProgressCallback =
      std::function<void(std::size_t index, std::size_t total, const ConfigResult&)>;

  Autotuner(SearchSpace space, TunerOptions options)
      : space_(std::move(space)), options_(options) {}

  [[nodiscard]] const TunerOptions& options() const { return options_; }
  [[nodiscard]] const SearchSpace& space() const { return space_; }

  void set_progress_callback(ProgressCallback callback) {
    progress_ = std::move(callback);
  }

  /// Search the whole space in the configured order.  With
  /// TunerOptions::strategy == SearchStrategy::Racing the schedule is the
  /// interleaved CI-elimination race (core/racing.hpp) instead of the
  /// paper's one-configuration-at-a-time loop; with Surrogate it is the
  /// model-guided seed → fit → prune → confirm pipeline
  /// (core/surrogate.hpp).  run_random and run_coordinate_descent always
  /// evaluate sequentially (their budgets / descent structure presuppose
  /// completed evaluations).
  [[nodiscard]] TuningRun run(Backend& backend) const;

  /// Random search over `budget` configurations sampled without replacement
  /// (budget >= |space| degenerates to exhaustive in random order).
  [[nodiscard]] TuningRun run_random(Backend& backend, std::size_t budget) const;

  /// Coordinate descent: starting from `start` (default: the midpoint of
  /// every range), repeatedly sweep one parameter at a time over its full
  /// range while holding the others fixed, moving to the best value found;
  /// stops when a full pass over all parameters yields no improvement.
  /// Each configuration is evaluated at most once.  This is the kind of
  /// "more advanced technique" §IV-C argues is unnecessary at this
  /// cardinality — run bench/ablation_search_strategies to see the paper's
  /// claim quantified.
  [[nodiscard]] TuningRun run_coordinate_descent(
      Backend& backend, std::optional<Configuration> start = std::nullopt) const;

 private:
  [[nodiscard]] TuningRun run_over(Backend& backend, const SpaceView& view) const;

  SearchSpace space_;
  TunerOptions options_;
  ProgressCallback progress_;
};

}  // namespace rooftune::core
