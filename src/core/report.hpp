#pragma once
// Serialization of tuning runs: JSON report and per-configuration CSV.

#include <iosfwd>
#include <string>

#include "core/autotuner.hpp"

namespace rooftune::core {

/// Machine-readable report: options summary, per-configuration statistics
/// (value, CI, iteration counts, stop reasons), and the best configuration.
std::string to_json(const TuningRun& run, const std::string& benchmark_name,
                    const std::string& metric_name);

/// One CSV row per configuration: parameters, value, stddev across
/// invocations, iterations, time, stop reason, pruned flag.
void write_csv(std::ostream& out, const TuningRun& run);

/// Short human-readable summary (best config, value, totals).
std::string summary(const TuningRun& run, const std::string& metric_name);

}  // namespace rooftune::core
