#include "core/evaluator.hpp"

#include <cmath>
#include <memory>
#include <string>

#include "stats/confidence.hpp"
#include "util/profiler.hpp"

namespace rooftune::core {

namespace {

/// Arena counter delta over one invocation, when the backend has an arena.
std::optional<util::ArenaStats> arena_delta(
    const std::optional<util::ArenaStats>& before,
    const std::optional<util::ArenaStats>& after) {
  if (!before.has_value() || !after.has_value()) return std::nullopt;
  util::ArenaStats delta;
  delta.leases = after->leases - before->leases;
  delta.slab_hits = after->slab_hits - before->slab_hits;
  delta.slab_misses = after->slab_misses - before->slab_misses;
  delta.allocations = after->allocations - before->allocations;
  delta.bytes_leased = after->bytes_leased - before->bytes_leased;
  delta.bytes_reserved = after->bytes_reserved;  // high-water, not a counter
  delta.pages_touched = after->pages_touched - before->pages_touched;
  return delta;
}

/// Fill the mean/CI-at-this-instant fields of a StopDecision event from
/// running moments (CI only once two samples exist — below that the
/// interval is degenerate and the journal records null bounds).
void fill_decision_stats(TraceEvent& event, const stats::OnlineMoments& moments,
                         const TunerOptions& options) {
  event.count = moments.count();
  event.mean = moments.mean();
  if (moments.count() >= 2) {
    const auto ci = stats::mean_confidence_interval(moments, options.confidence,
                                                    options.interval_method);
    event.have_ci = true;
    event.ci_lower = ci.lower;
    event.ci_upper = ci.upper;
  }
}

/// Inner-loop stop set per the options.  Order encodes reporting priority:
/// budget exhaustion first, then pruning, then convergence.
StopSet make_inner_stops(const TunerOptions& options) {
  StopSet stops;
  stops.add(std::make_shared<MaxTimeStop>(options.timeout));
  stops.add(std::make_shared<MaxCountStop>(options.iterations));
  if (options.inner_prune) {
    stops.add(std::make_shared<UpperBoundStop>(options.confidence, options.prune_min_count,
                                               options.trend_guard,
                                               options.interval_method));
  }
  if (options.confidence_stop) {
    stops.add(std::make_shared<ConfidenceStop>(options.confidence, options.tolerance,
                                               options.confidence_min_samples,
                                               options.interval_method));
  }
  for (const auto& factory : options.extra_inner_stops) stops.add(factory());
  return stops;
}

/// Outer-loop stop set: invocation cap, optional outer pruning, optional
/// invocation-level confidence convergence.
StopSet make_outer_stops(const TunerOptions& options) {
  StopSet stops;
  stops.add(std::make_shared<MaxCountStop>(options.invocations));
  if (options.outer_prune) {
    stops.add(std::make_shared<UpperBoundStop>(options.confidence, /*min_count=*/2,
                                               options.trend_guard,
                                               options.interval_method));
  }
  if (options.confidence_stop) {
    stops.add(std::make_shared<ConfidenceStop>(options.confidence, options.tolerance,
                                               options.confidence_min_samples,
                                               options.interval_method));
  }
  for (const auto& factory : options.extra_outer_stops) stops.add(factory());
  return stops;
}

/// Classify this invocation's counter signature and convert the roofline
/// bound into the backend's metric, while the backend is still in scope.
/// GFLOP/s metrics take the bound directly; byte metrics scale by the
/// kernel's analytic bytes/flops ratio (the bound says "at most X GFLOP/s",
/// and every flop moves bytes/flops bytes).  Backends without analytic
/// work counts (pipe) yield no bound — the policy never prunes them.
void classify_invocation(InvocationResult& result, Backend& backend,
                         const TunerOptions& options) {
  if (!result.counters.has_value()) return;
  const auto flops_per_iter = backend.flops_per_iteration();
  if (!flops_per_iter.has_value() || !(*flops_per_iter > 0.0)) return;
  const BottleneckClassifier classifier(options.counter_peak_gflops,
                                        options.counter_dram_gbps);
  const double flops =
      *flops_per_iter * static_cast<double>(result.iterations);
  result.bottleneck =
      classifier.classify(*result.counters, flops, result.kernel_time.value);
  if (result.bottleneck->cls == BottleneckClass::Unknown ||
      !std::isfinite(result.bottleneck->bound_gflops)) {
    return;
  }
  const std::string metric = backend.metric_name();
  if (metric.find("FLOP") != std::string::npos) {
    result.counter_bound = result.bottleneck->bound_gflops;
    return;
  }
  const auto bytes_per_iter = backend.bytes_per_iteration();
  if (!bytes_per_iter.has_value()) return;
  result.counter_bound =
      result.bottleneck->bound_gflops * (*bytes_per_iter / *flops_per_iter);
}

}  // namespace

bool counter_prune_armed(const TunerOptions& options) {
  return options.counter_prune && options.counter_peak_gflops > 0.0 &&
         options.counter_dram_gbps > 0.0;
}

TraceEvent make_counter_prune_event(const InvocationResult& invocation,
                                    const ConfigResult& result,
                                    const TunerOptions& options,
                                    std::optional<double> incumbent) {
  TraceEvent event;
  event.kind = TraceEvent::Kind::CounterPrune;
  event.config = result.config;
  event.basis = to_string(invocation.bottleneck->cls);
  event.bound = *invocation.counter_bound;
  event.margin = options.counter_prune_margin;
  event.oi = invocation.bottleneck->oi;
  event.widened = invocation.bottleneck->widened;
  event.incumbent = incumbent;
  event.count = result.outer_moments.count();
  event.mean = result.outer_moments.mean();
  return event;
}

std::optional<CounterHint> counter_hint(const Backend& backend,
                                        const Configuration& config,
                                        const TunerOptions& options) {
  if (!counter_prune_armed(options)) return std::nullopt;
  if (backend.metric_name().find("FLOP") == std::string::npos) {
    return std::nullopt;
  }
  const auto oi = backend.analytic_intensity(config);
  if (!oi.has_value() || !(*oi > 0.0)) return std::nullopt;
  CounterHint hint;
  hint.oi = *oi;
  const double memory_roof = options.counter_dram_gbps * *oi;
  hint.bound_metric = std::min(options.counter_peak_gflops, memory_roof);
  hint.cls = memory_roof < options.counter_peak_gflops
                 ? BottleneckClass::Dram
                 : BottleneckClass::Compute;
  return hint;
}

const char* to_string(SearchStrategy strategy) {
  switch (strategy) {
    case SearchStrategy::Exhaustive: return "exhaustive";
    case SearchStrategy::Racing: return "racing";
    case SearchStrategy::Surrogate: return "surrogate";
  }
  return "?";
}

double ConfigResult::value() const {
  stats::OnlineMoments completed;
  for (const auto& inv : invocations) {
    if (inv.stop_reason != StopReason::PrunedByBest) completed.add(inv.mean());
  }
  return completed.count() > 0 ? completed.mean() : outer_moments.mean();
}

bool ConfigResult::pruned() const {
  if (outer_stop == StopReason::PrunedByBest) return true;
  if (outer_stop == StopReason::CounterBound) return true;
  for (const auto& inv : invocations) {
    if (inv.stop_reason == StopReason::PrunedByBest) return true;
  }
  return false;
}

InvocationResult run_invocation(Backend& backend, const Configuration& config,
                                std::uint64_t invocation_index,
                                const TunerOptions& options,
                                std::optional<double> incumbent,
                                const TraceContext& trace_ctx) {
  const StopSet stops = make_inner_stops(options);
  stops.reset();
  InvocationResult result;
  stats::TrendDetector trend(16);

  std::optional<util::ArenaStats> arena_before;
  if (options.trace) arena_before = backend.arena_stats();

  // Host-clock spans for the profile timeline; the backend-reported
  // setup/kernel seconds (which on simulated machines are simulated time)
  // ride along as span weights so `rooftune profile` can cross-check the
  // profile's sums against the report's.
  util::ProfileSpan setup_span(util::ProfileCategory::Setup,
                               trace_ctx.config_ordinal);
  const util::Seconds start = backend.clock().now();
  backend.begin_invocation(config, invocation_index);
  result.setup_time += backend.clock().now() - start;
  setup_span.finish();

  if (options.trace) options.trace->kernel_phase_begin();
  util::ProfileSpan kernel_span(util::ProfileCategory::Kernel,
                                trace_ctx.config_ordinal);

  EvalState state;
  state.moments = &result.moments;
  state.incumbent = incumbent;
  state.trend = &trend;

  // Adaptive timing batches: while the per-iteration time is comparable to
  // the cost of reading the clock, time geometrically growing groups of
  // iterations with one timer pair and record each group's mean as one
  // sample — the timer bias amortizes away and syscall pressure drops.
  // With a zero-overhead clock `batch` stays 1 and this loop is exactly
  // the per-iteration schedule of the paper.
  const double overhead = backend.clock().overhead().value;
  const std::uint64_t max_batch = std::max<std::uint64_t>(1, options.max_timing_batch);
  std::uint64_t batch = 1;
  for (;;) {
    double batch_value;
    if (batch == 1) {
      const Sample sample = backend.run_iteration();
      batch_value = sample.value;
      result.kernel_time += sample.kernel_time;
      ++result.iterations;
    } else {
      // Never overshoot the iteration cap; the time budget is checked per
      // batch, same as the per-iteration loop checks it per sample.
      std::uint64_t k = batch;
      if (options.iterations > result.iterations) {
        k = std::min(k, options.iterations - result.iterations);
      }
      const BatchSample group = backend.run_batch(k);
      batch_value = group.value;
      result.kernel_time += group.kernel_time;
      result.iterations += group.count;
    }
    result.moments.add(batch_value);
    trend.add(batch_value);
    stops.observe(batch_value);

    state.accumulated_time = result.kernel_time;
    state.count = result.iterations;
    const StopReason reason = stops.check(state);
    if (reason != StopReason::None) {
      result.stop_reason = reason;
      break;
    }

    if (overhead > 0.0 && batch < max_batch && result.iterations > 0) {
      const double per_iteration =
          result.kernel_time.value / static_cast<double>(result.iterations);
      if (per_iteration < options.batch_overhead_ratio * overhead) {
        batch = std::min<std::uint64_t>(batch * 2, max_batch);
      }
    }
  }

  kernel_span.finish(result.kernel_time.value);
  if (options.trace) options.trace->kernel_phase_end();

  util::ProfileSpan teardown_span(util::ProfileCategory::Setup,
                                  trace_ctx.config_ordinal);
  const util::Seconds teardown_start = backend.clock().now();
  backend.end_invocation();
  result.setup_time += backend.clock().now() - teardown_start;
  result.trend_rising = trend.rising();
  result.wall_time = backend.clock().now() - start;
  if (const auto timing = backend.last_invocation_timing()) {
    // Backend-accounted durations: accumulated from zero per invocation,
    // independent of the clock's base, so per-config and run totals stay
    // bit-identical across worker assignments (see backend.hpp).
    result.setup_time = timing->setup;
    result.wall_time = timing->wall;
  }
  // The invocation's whole backend-reported setup time weights the
  // teardown span (one weighted setup record per invocation, so weight
  // sums match the report's setup total exactly).
  teardown_span.finish(result.setup_time.value);

  // Counter signature of the kernel phase: the backend's own model first
  // (simulated, deterministic), else whatever the sink's sampler read on
  // this thread (real hardware).  Classified here, while the backend's
  // analytic work counts and metric are in scope, so the schedulers only
  // compare the stored bound against their incumbents.
  result.counters = backend.last_invocation_counters();
  if (!result.counters.has_value() && options.trace) {
    result.counters = options.trace->kernel_phase_counters();
  }
  if (counter_prune_armed(options)) {
    classify_invocation(result, backend, options);
  }

  if (options.trace) {
    // The stop decision that ended the iteration loop, with the CI at that
    // instant, followed by the invocation span itself.
    TraceEvent stop;
    stop.kind = TraceEvent::Kind::StopDecision;
    stop.epoch = trace_ctx.epoch;
    stop.config_ordinal = trace_ctx.config_ordinal;
    stop.invocation = invocation_index;
    stop.rank = 1;
    stop.config = config;
    stop.reason = result.stop_reason;
    stop.outer_level = false;
    stop.accumulated_s = result.kernel_time.value;
    stop.incumbent = incumbent;
    fill_decision_stats(stop, result.moments, options);
    options.trace->emit(stop);

    TraceEvent span;
    span.kind = TraceEvent::Kind::Invocation;
    span.epoch = trace_ctx.epoch;
    span.config_ordinal = trace_ctx.config_ordinal;
    span.invocation = invocation_index;
    span.rank = 2;
    span.config = config;
    span.reason = result.stop_reason;
    span.iterations = result.iterations;
    span.kernel_s = result.kernel_time.value;
    span.setup_s = result.setup_time.value;
    span.wall_s = result.wall_time.value;
    span.deterministic_timing = backend.last_invocation_timing().has_value();
    span.mean = result.moments.mean();
    span.stddev = result.moments.stddev();
    span.trend_rising = result.trend_rising;
    span.incumbent = incumbent;
    const double n = static_cast<double>(result.iterations);
    if (const auto flops = backend.flops_per_iteration()) span.flops = *flops * n;
    if (const auto bytes = backend.bytes_per_iteration()) span.bytes = *bytes * n;
    span.arena_delta = arena_delta(arena_before, backend.arena_stats());
    // Backend-modelled counters are serialized with the span (the sink's
    // own sampled counters attach journal-side, so they are not repeated).
    span.counters = backend.last_invocation_counters();
    // Backend-modelled machine telemetry (frequency/energy over the span);
    // the journal forwards it to the sidecar, never into the journal body.
    span.telemetry = backend.last_invocation_telemetry();
    options.trace->emit(span);
  }
  return result;
}

ConfigResult run_configuration(Backend& backend, const Configuration& config,
                               const TunerOptions& options,
                               std::optional<double> incumbent,
                               const TraceContext& trace_ctx) {
  const StopSet outer_stops = make_outer_stops(options);
  outer_stops.reset();
  ConfigResult result;
  result.config = config;
  stats::TrendDetector outer_trend(8);

  const util::Seconds start = backend.clock().now();

  EvalState state;
  state.moments = &result.outer_moments;
  state.incumbent = incumbent;
  state.trend = &outer_trend;

  std::uint64_t last_inv = 0;
  for (std::uint64_t inv = 0;; ++inv) {
    last_inv = inv;
    InvocationResult invocation =
        run_invocation(backend, config, inv, options, incumbent, trace_ctx);
    result.total_iterations += invocation.iterations;
    result.total_setup_time += invocation.setup_time;
    result.total_kernel_time += invocation.kernel_time;
    result.outer_moments.add(invocation.mean());
    outer_trend.add(invocation.mean());
    outer_stops.observe(invocation.mean());
    // An inner prune ends only the current invocation (the benchmark
    // program exits early); with "Inner" alone the invocation loop keeps
    // re-launching the program — each launch gets pruned again after a few
    // iterations.  The "Outer" optimization additionally abandons the
    // remaining invocations once the configuration has shown it cannot win
    // — that separation is exactly the paper's Inner vs. Outer distinction
    // and the source of Outer's extra speedup (Tables VIII–XI).
    const bool inner_pruned = invocation.stop_reason == StopReason::PrunedByBest;
    result.invocations.push_back(std::move(invocation));

    if (options.outer_prune && inner_pruned) {
      result.outer_stop = StopReason::PrunedByBest;
      break;
    }

    // Counter-guided prune: the roofline bound from this invocation's
    // counter signature is rate-independent (OI is a ratio of counts), so
    // unlike the CI conditions it needs no settled samples — a hopeless
    // bottleneck class dies here after its first invocations, before the
    // statistics spend any more.  The completed invocations stay in the
    // result, so value() remains an unbiased mean.
    if (counter_prune_armed(options)) {
      const InvocationResult& last = result.invocations.back();
      const CounterPrunePolicy policy{options.counter_prune_margin,
                                      options.counter_prune_window};
      if (last.counter_bound.has_value() &&
          policy.should_prune(*last.bottleneck, *last.counter_bound, incumbent,
                              inv + 1)) {
        result.outer_stop = StopReason::CounterBound;
        util::Profiler::instance().instant(util::ProfileCategory::CounterPrune,
                                           trace_ctx.config_ordinal);
        if (options.trace) {
          TraceEvent event =
              make_counter_prune_event(last, result, options, incumbent);
          event.epoch = trace_ctx.epoch;
          event.config_ordinal = trace_ctx.config_ordinal;
          event.invocation = inv;
          event.rank = 3;  // same cell as the outer stop; emitted first
          options.trace->emit(event);
        }
        break;
      }
    }

    state.count = inv + 1;
    // Invocation loops have no kernel-time budget; leave accumulated_time 0.
    const StopReason reason = outer_stops.check(state);
    if (reason != StopReason::None) {
      result.outer_stop = reason;
      break;
    }
  }

  result.total_time = backend.clock().now() - start;

  if (options.trace) {
    // The invocation-loop decision that retired the configuration, then the
    // configuration's exit record.  Both anchor to the last invocation so
    // the merged journal interleaves them after its span.
    TraceEvent stop;
    stop.kind = TraceEvent::Kind::StopDecision;
    stop.epoch = trace_ctx.epoch;
    stop.config_ordinal = trace_ctx.config_ordinal;
    stop.invocation = last_inv;
    stop.rank = 3;
    stop.config = config;
    stop.reason = result.outer_stop;
    stop.outer_level = true;
    stop.incumbent = incumbent;
    fill_decision_stats(stop, result.outer_moments, options);
    options.trace->emit(stop);

    TraceEvent done;
    done.kind = TraceEvent::Kind::ConfigDone;
    done.epoch = trace_ctx.epoch;
    done.config_ordinal = trace_ctx.config_ordinal;
    done.invocation = last_inv;
    done.rank = 4;
    done.config = config;
    done.reason = result.outer_stop;
    done.iterations = result.total_iterations;
    done.kernel_s = result.total_kernel_time.value;
    done.setup_s = result.total_setup_time.value;
    done.value = result.value();
    done.pruned = result.pruned();
    options.trace->emit(done);
  }
  return result;
}

}  // namespace rooftune::core
