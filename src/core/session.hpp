#pragma once
// Checkpointed tuning sessions.
//
// The paper's tool runs each benchmark as a separate program invocation
// driven by an outer tuning process; on a shared cluster (§V: SLURM jobs)
// that process can be killed mid-search.  A TuningSession persists a JSON
// checkpoint after every evaluated configuration, so an interrupted search
// resumes exactly where it stopped — already-evaluated configurations are
// restored (including the incumbent used for pruning), only the remainder
// runs.  With the deterministic simulated backends, a resumed run is
// bit-identical to an uninterrupted one.

#include <optional>
#include <string>

#include "core/autotuner.hpp"
#include "core/racing.hpp"
#include "core/surrogate.hpp"

namespace rooftune::util {
class JsonValue;
}  // namespace rooftune::util

namespace rooftune::core {

class TuningSession {
 public:
  /// `checkpoint_path`: JSON file written after each configuration (via a
  /// temp file + rename, so a crash never leaves a torn checkpoint).
  TuningSession(SearchSpace space, TunerOptions options, std::string checkpoint_path);

  /// Run the search, resuming from the checkpoint when one with a matching
  /// fingerprint exists.  A checkpoint from a different space / options
  /// combination is rejected with std::runtime_error (never silently
  /// mixed), as is one recorded under a different machine-environment
  /// fingerprint (TunerOptions::env_fingerprint — governor/turbo/topology
  /// changes invalidate partial measurements).  On success the checkpoint
  /// file is removed.
  ///
  /// Under SearchStrategy::Racing the checkpoint is written after every
  /// *round* instead of every configuration: each survivor's partial
  /// moments (per-invocation means, exactly bit-preserved) serialize into
  /// the JSON, so a race interrupted mid-round resumes from the last round
  /// barrier and — on the deterministic simulated backends — finishes
  /// bit-identical to an uninterrupted run.
  ///
  /// Under SearchStrategy::Surrogate the checkpoint additionally records
  /// the phase: mid-seed it holds the completed seed evaluations (bit
  /// exact, racing-style); mid-confirm it holds the fitted model
  /// coefficients, the kept candidate indices and the confirm race state —
  /// a resume never refits the model or re-emits fit/prune trace records.
  [[nodiscard]] TuningRun run(Backend& backend);

  /// Number of configurations restored by the last run() call (for racing:
  /// configurations with at least one restored invocation).
  [[nodiscard]] std::size_t resumed_configs() const { return resumed_; }

  /// Fingerprint covering the walked configuration sequence and the options
  /// that change evaluation semantics; exposed for tests.
  [[nodiscard]] std::uint64_t fingerprint() const;

 private:
  void save_checkpoint(const TuningRun& run, std::optional<double> incumbent,
                       util::Seconds prior_time) const;
  [[nodiscard]] std::string checkpoint_json(const TuningRun& run,
                                            std::optional<double> incumbent,
                                            util::Seconds prior_time) const;

  [[nodiscard]] TuningRun run_racing(Backend& backend);
  void save_racing_checkpoint(const RacingScheduler::State& state) const;
  [[nodiscard]] std::string racing_checkpoint_json(
      const RacingScheduler::State& state) const;
  void restore_racing(RacingScheduler::State& state, const std::string& text);

  [[nodiscard]] TuningRun run_surrogate(Backend& backend);
  void save_surrogate_checkpoint(const SurrogateScheduler::State& state) const;
  [[nodiscard]] std::string surrogate_checkpoint_json(
      const SurrogateScheduler::State& state) const;
  void restore_surrogate(const SurrogateScheduler& scheduler,
                         SurrogateScheduler::State& state, const std::string& text);

  void check_fingerprint_and_context(const util::JsonValue& doc) const;
  void write_checkpoint_file(const std::string& content) const;

  SearchSpace space_;
  TunerOptions options_;
  std::string path_;
  std::size_t resumed_ = 0;
};

}  // namespace rooftune::core
