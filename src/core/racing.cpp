#include "core/racing.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "stats/confidence.hpp"

namespace rooftune::core {

bool RacingScheduler::State::active() const {
  for (const auto& entry : entries) {
    if (entry.status == Status::Racing) return true;
  }
  return false;
}

RacingScheduler::RacingScheduler(TunerOptions options) : options_(options) {
  if (options_.invocations == 0) {
    throw std::invalid_argument("RacingScheduler: invocations must be > 0");
  }
  // Racing owns the invocation-level schedule: extra outer stop conditions
  // are stateful per configuration and do not survive the round-interleaved
  // (and checkpointed) evaluation order, so they are rejected rather than
  // silently dropped.
  if (!options_.extra_outer_stops.empty()) {
    throw std::invalid_argument(
        "RacingScheduler: extra_outer_stops are not supported under racing");
  }
  // A racing round grants a sample batch, not a converged evaluation:
  // invocations run under a reduced iteration cap (racing_iterations) so a
  // round over the whole population costs a fraction of one sequential
  // pass; precision comes from later rounds, which only survivors reach.
  invocation_options_ = options_;
  if (options_.racing_iterations > 0) {
    invocation_options_.iterations =
        std::min(options_.iterations, options_.racing_iterations);
  }
}

RacingScheduler::State RacingScheduler::init(
    std::vector<Configuration> configs) const {
  State state;
  state.entries.reserve(configs.size());
  for (auto& config : configs) {
    Entry entry;
    entry.result.config = std::move(config);
    state.entries.push_back(std::move(entry));
  }
  return state;
}

std::vector<std::size_t> RacingScheduler::survivors(const State& state) {
  std::vector<std::size_t> indices;
  for (std::size_t i = 0; i < state.entries.size(); ++i) {
    if (state.entries[i].status == Status::Racing &&
        state.entries[i].result.invocations.size() == state.round) {
      indices.push_back(i);
    }
  }
  return indices;
}

std::vector<std::vector<std::size_t>> RacingScheduler::round_blocks(
    const State& state) {
  const auto indices = survivors(state);
  std::vector<std::vector<std::size_t>> blocks;
  for (std::size_t lo = 0; lo < indices.size(); lo += kBlock) {
    const std::size_t hi = std::min(indices.size(), lo + kBlock);
    blocks.emplace_back(indices.begin() + static_cast<std::ptrdiff_t>(lo),
                        indices.begin() + static_cast<std::ptrdiff_t>(hi));
  }
  return blocks;
}

std::optional<double> RacingScheduler::frozen_incumbent(const State& state) {
  std::optional<double> best;
  for (const auto& entry : state.entries) {
    if (entry.result.invocations.empty()) continue;
    const double value = entry.result.value();
    if (!best.has_value() || value > *best) best = value;
  }
  return best;
}

void RacingScheduler::apply_counter_skips(State& state,
                                          const std::vector<std::size_t>& block,
                                          std::optional<double> incumbent,
                                          const Backend& backend) const {
  if (!incumbent.has_value() || !counter_prune_armed(options_)) return;
  // Calibration: walk entries in config order and count invocations whose
  // measured OI matched the backend's prediction.  Stops at the target, so
  // once calibrated the scan touches only the first few entries; when the
  // backend has no predictions (or a PMU's traffic disagrees with the
  // analytic model) it never arms and no entry is ever skipped unseen.
  std::uint64_t verified = 0;
  for (const auto& entry : state.entries) {
    if (verified >= kCounterCalibration) break;
    if (entry.result.invocations.empty()) continue;
    const auto predicted = backend.analytic_intensity(entry.result.config);
    if (!predicted.has_value() || !(*predicted > 0.0)) continue;
    for (const auto& inv : entry.result.invocations) {
      if (!inv.bottleneck.has_value() || !inv.bottleneck->oi.has_value()) {
        continue;
      }
      if (std::abs(*inv.bottleneck->oi - *predicted) <=
          kOiTolerance * *predicted) {
        ++verified;
      }
    }
  }
  if (verified < kCounterCalibration) return;

  const CounterPrunePolicy policy{options_.counter_prune_margin,
                                  options_.counter_prune_window};
  for (const std::size_t i : block) {
    Entry& entry = state.entries[i];
    if (entry.status != Status::Racing || !entry.result.invocations.empty()) {
      continue;
    }
    const auto hint = counter_hint(backend, entry.result.config, options_);
    if (!hint.has_value()) continue;
    if (!policy.should_skip(hint->bound_metric, incumbent)) continue;
    entry.result.outer_stop = StopReason::CounterBound;
    entry.status = Status::Eliminated;
    if (options_.trace) {
      // The skip replaces the entry's would-be invocation records at the
      // same ordinal slot (rank 1, where its stop decision would have
      // sorted), followed by the standard exit record.
      TraceEvent event;
      event.kind = TraceEvent::Kind::CounterPrune;
      event.epoch = state.round;
      event.config_ordinal = i;
      event.invocation = state.round;
      event.rank = 1;
      event.config = entry.result.config;
      event.basis = to_string(hint->cls);
      event.bound = hint->bound_metric;
      event.margin = options_.counter_prune_margin;
      event.oi = hint->oi;
      event.widened = false;
      event.incumbent = incumbent;
      event.count = 0;
      event.mean = 0.0;
      options_.trace->emit(event);

      TraceEvent done;
      done.kind = TraceEvent::Kind::ConfigDone;
      done.epoch = state.round;
      done.config_ordinal = i;
      done.invocation = state.round;
      done.rank = 4;
      done.config = entry.result.config;
      done.reason = entry.result.outer_stop;
      done.iterations = 0;
      done.kernel_s = 0.0;
      done.setup_s = 0.0;
      done.value = entry.result.value();
      done.pruned = true;
      options_.trace->emit(done);
    }
  }
}

void RacingScheduler::run_entry_invocation(Backend& backend, Entry& entry,
                                           std::optional<double> incumbent,
                                           std::size_t ordinal) const {
  const auto invocation_index =
      static_cast<std::uint64_t>(entry.result.invocations.size());
  commit_invocation(entry,
                    run_detached_invocation(backend, entry.result.config,
                                            invocation_index, incumbent,
                                            ordinal));
}

InvocationResult RacingScheduler::run_detached_invocation(
    Backend& backend, const Configuration& config,
    std::uint64_t invocation_index, std::optional<double> incumbent,
    std::size_t ordinal) const {
  // Racing epoch = round number = this invocation's index (entries march in
  // lockstep), so the journal groups each round's spans together.
  TraceContext ctx;
  ctx.epoch = invocation_index;
  ctx.config_ordinal = ordinal;
  return run_invocation(backend, config, invocation_index,
                        invocation_options_, incumbent, ctx);
}

void RacingScheduler::commit_invocation(Entry& entry,
                                        InvocationResult invocation) {
  entry.result.total_iterations += invocation.iterations;
  entry.result.outer_moments.add(invocation.mean());
  entry.result.total_time += invocation.wall_time;
  entry.result.total_setup_time += invocation.setup_time;
  entry.result.total_kernel_time += invocation.kernel_time;
  entry.trend.add(invocation.mean());
  entry.result.invocations.push_back(std::move(invocation));
}

bool RacingScheduler::conclude_round(State& state) const {
  // The round that just ran: its invocations carry this index, and every
  // event below sorts under it as the epoch.
  const std::uint64_t round = state.round;
  ++state.round;

  std::vector<Status> before;
  std::uint64_t racing_before = 0;
  if (options_.trace) {
    before.reserve(state.entries.size());
    for (const auto& entry : state.entries) {
      before.push_back(entry.status);
      if (entry.status == Status::Racing) ++racing_before;
    }
  }
  const auto emit_elimination = [&](std::size_t ordinal, const Entry& entry,
                                    const char* basis,
                                    const stats::OnlineMoments& moments,
                                    const std::optional<stats::ConfidenceInterval>& own_ci,
                                    std::optional<std::size_t> leader,
                                    const std::optional<stats::ConfidenceInterval>& leader_ci) {
    if (!options_.trace) return;
    TraceEvent event;
    event.kind = TraceEvent::Kind::Elimination;
    event.epoch = round;
    event.config_ordinal = ordinal;
    event.invocation = round;
    event.rank = 5;
    event.config = entry.result.config;
    event.basis = basis;
    event.count = moments.count();
    event.mean = moments.mean();
    if (own_ci.has_value()) {
      event.have_ci = true;
      event.ci_lower = own_ci->lower;
      event.ci_upper = own_ci->upper;
    }
    if (leader.has_value()) {
      event.leader_ordinal = *leader;
      if (leader_ci.has_value()) {
        event.leader_ci_lower = leader_ci->lower;
        event.leader_ci_upper = leader_ci->upper;
      }
    }
    options_.trace->emit(event);
  };

  // Per-entry stops first, in config order (mirrors run_configuration's
  // check order: pruning, then the invocation cap, then convergence).
  for (std::size_t entry_index = 0; entry_index < state.entries.size();
       ++entry_index) {
    Entry& entry = state.entries[entry_index];
    if (entry.status != Status::Racing) continue;
    ConfigResult& result = entry.result;
    // An inner-pruned invocation exited mid-benchmark against the frozen
    // incumbent: the configuration has shown it cannot win, which under
    // racing always ends its participation (the exhaustive scheduler needs
    // outer_prune to draw the same conclusion; racing *is* that logic).
    if (!result.invocations.empty() &&
        result.invocations.back().stop_reason == StopReason::PrunedByBest) {
      result.outer_stop = StopReason::PrunedByBest;
      entry.status = Status::Eliminated;
      emit_elimination(entry_index, entry, "inner-prune", result.outer_moments,
                       std::nullopt, std::nullopt, std::nullopt);
      continue;
    }
    if (result.invocations.size() >= options_.invocations) {
      result.outer_stop = StopReason::MaxCount;
      entry.status = Status::Finished;
      continue;
    }
    if (options_.confidence_stop &&
        stats::has_converged(result.outer_moments, options_.confidence,
                             options_.tolerance, options_.confidence_min_samples,
                             options_.interval_method)) {
      result.outer_stop = StopReason::Converged;
      entry.status = Status::Finished;
    }
  }

  // Population-wide CI elimination against the leader.  The leader is the
  // best value() over everything still in contention (first
  // strictly-greater wins, same tie-breaking as the final reduction).
  std::optional<std::size_t> leader;
  for (std::size_t i = 0; i < state.entries.size(); ++i) {
    const Entry& entry = state.entries[i];
    if (entry.status == Status::Eliminated || entry.result.invocations.empty()) {
      continue;
    }
    if (!leader.has_value() ||
        entry.result.value() > state.entries[*leader].result.value()) {
      leader = i;
    }
  }
  // Counter-guided prune, ahead of the CI machinery: the roofline bound
  // from a survivor's counter signature is warm-up-independent (OI is a
  // ratio of counts), so it can kill entries the CI elimination must carry
  // for rounds — trend_rising defers iteration-CI elimination, and the
  // invocation-level CI needs racing_min_invocations samples, while a
  // dram-bound signature is conclusive from round one.  Decisions use the
  // bound stored at invocation time, so they are identical for any worker
  // assignment and across checkpoint resume.
  if (leader.has_value() && counter_prune_armed(options_)) {
    const double leader_value = state.entries[*leader].result.value();
    const CounterPrunePolicy policy{options_.counter_prune_margin,
                                    options_.counter_prune_window};
    for (std::size_t i = 0; i < state.entries.size(); ++i) {
      Entry& entry = state.entries[i];
      if (i == *leader || entry.status != Status::Racing) continue;
      if (entry.result.invocations.empty()) continue;
      const InvocationResult& last = entry.result.invocations.back();
      if (!last.counter_bound.has_value()) continue;
      if (!policy.should_prune(*last.bottleneck, *last.counter_bound,
                               leader_value,
                               entry.result.invocations.size())) {
        continue;
      }
      entry.result.outer_stop = StopReason::CounterBound;
      entry.status = Status::Eliminated;
      if (options_.trace) {
        TraceEvent event =
            make_counter_prune_event(last, entry.result, options_, leader_value);
        event.epoch = round;
        event.config_ordinal = i;
        event.invocation = round;
        event.rank = 5;  // the round's elimination slot
        event.leader_ordinal = *leader;
        options_.trace->emit(event);
      }
    }
  }

  if (leader.has_value() && state.round == 1) {
    // First round: every entry holds exactly one sample batch, so the
    // invocation-level CI (which needs racing_min_invocations rounds) is not
    // available yet — but granting every loser several more launches just to
    // build one would cost more than the sequential schedule.  The iteration
    // samples inside the first batch already carry a CI; hopeless entries
    // are dropped on that, except when the batch was still trending upward
    // (warm-up not settled — its mean underestimates the configuration, so
    // elimination would be unsafe; see docs/racing.md).
    const auto& leader_inv = state.entries[*leader].result.invocations.front();
    const auto leader_ci = stats::mean_confidence_interval(
        leader_inv.moments, options_.confidence, options_.interval_method);
    for (std::size_t i = 0; i < state.entries.size(); ++i) {
      Entry& entry = state.entries[i];
      if (i == *leader || entry.status != Status::Racing) continue;
      const auto& inv = entry.result.invocations.front();
      if (inv.trend_rising) continue;
      if (inv.moments.count() < options_.confidence_min_samples) continue;
      const auto ci = stats::mean_confidence_interval(
          inv.moments, options_.confidence, options_.interval_method);
      if (ci.upper < leader_ci.lower) {
        entry.result.outer_stop = StopReason::PrunedByBest;
        entry.status = Status::Eliminated;
        emit_elimination(i, entry, "iteration-ci", inv.moments, ci, leader,
                         leader_ci);
      }
    }
  } else if (leader.has_value()) {
    const auto leader_ci = stats::mean_confidence_interval(
        state.entries[*leader].result.outer_moments, options_.confidence,
        options_.interval_method);
    for (std::size_t i = 0; i < state.entries.size(); ++i) {
      Entry& entry = state.entries[i];
      if (i == *leader || entry.status != Status::Racing) continue;
      if (entry.result.outer_moments.count() < options_.racing_min_invocations) {
        continue;
      }
      if (options_.trend_guard &&
          (entry.trend.size() < 8 || entry.trend.rising())) {
        // §VII: performance still improving (or the window cannot tell yet)
        // — hold off, same conservatism as UpperBoundStop's guard.
        continue;
      }
      const auto ci = stats::mean_confidence_interval(
          entry.result.outer_moments, options_.confidence,
          options_.interval_method);
      if (ci.upper < leader_ci.lower) {
        entry.result.outer_stop = StopReason::PrunedByBest;
        entry.status = Status::Eliminated;
        emit_elimination(i, entry, "invocation-ci", entry.result.outer_moments,
                         ci, leader, leader_ci);
      }
    }
  }

  if (options_.trace) {
    // Exit records for everything that left the race this round, then the
    // round transition summary (sorted past every per-config ordinal).
    std::uint64_t finished = 0;
    std::uint64_t eliminated = 0;
    for (std::size_t i = 0; i < state.entries.size(); ++i) {
      const Entry& entry = state.entries[i];
      if (before[i] != Status::Racing || entry.status == Status::Racing) {
        continue;
      }
      if (entry.status == Status::Finished) ++finished;
      if (entry.status == Status::Eliminated) ++eliminated;
      TraceEvent done;
      done.kind = TraceEvent::Kind::ConfigDone;
      done.epoch = round;
      done.config_ordinal = i;
      done.invocation = round;
      done.rank = 4;
      done.config = entry.result.config;
      done.reason = entry.result.outer_stop;
      done.iterations = entry.result.total_iterations;
      done.kernel_s = entry.result.total_kernel_time.value;
      done.setup_s = entry.result.total_setup_time.value;
      done.value = entry.result.value();
      done.pruned = entry.result.pruned();
      options_.trace->emit(done);
    }
    TraceEvent summary;
    summary.kind = TraceEvent::Kind::Round;
    summary.epoch = round;
    summary.config_ordinal = state.entries.size();
    summary.invocation = round;
    summary.rank = 6;
    summary.survivors_before = racing_before;
    summary.survivors_after = racing_before - finished - eliminated;
    summary.eliminated = eliminated;
    summary.finished = finished;
    options_.trace->emit(summary);
  }
  return state.active();
}

bool RacingScheduler::step(State& state, Backend& backend) const {
  const auto blocks = round_blocks(state);
  if (blocks.empty()) return false;
  for (const auto& block : blocks) {
    const auto incumbent = frozen_incumbent(state);
    if (options_.trace && incumbent.has_value()) {
      // The incumbent frozen for this block (rank 0 sorts it ahead of the
      // block's first invocation in the merged journal).
      TraceEvent event;
      event.kind = TraceEvent::Kind::IncumbentUpdate;
      event.epoch = state.round;
      event.config_ordinal = block.front();
      event.invocation = state.round;
      event.rank = 0;
      event.value = *incumbent;
      options_.trace->emit(event);
    }
    apply_counter_skips(state, block, incumbent, backend);
    for (const std::size_t i : block) {
      if (state.entries[i].status != Status::Racing) continue;
      run_entry_invocation(backend, state.entries[i], incumbent, i);
    }
  }
  return conclude_round(state);
}

TuningRun RacingScheduler::finish(State state) {
  TuningRun run;
  run.results.reserve(state.entries.size());
  std::optional<double> best;
  for (std::size_t i = 0; i < state.entries.size(); ++i) {
    ConfigResult result = std::move(state.entries[i].result);
    run.total_iterations += result.total_iterations;
    run.total_invocations += result.invocations.size();
    if (result.pruned()) ++run.pruned_configs;
    run.total_time += result.total_time;
    run.total_setup_time += result.total_setup_time;
    run.total_kernel_time += result.total_kernel_time;
    const double value = result.value();
    if (!best.has_value() || value > *best) {
      best = value;
      run.best_index = i;
    }
    run.results.push_back(std::move(result));
  }
  return run;
}

TuningRun RacingScheduler::run(Backend& backend,
                               std::vector<Configuration> configs) const {
  State state = init(std::move(configs));
  while (step(state, backend)) {
  }
  TuningRun run = finish(std::move(state));
  run.arena = backend.arena_stats();
  return run;
}

}  // namespace rooftune::core
