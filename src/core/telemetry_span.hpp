#pragma once
// Machine state over one invocation span, as accounted by whoever can see
// it: the simulated backends derive it from their deterministic thermal /
// energy model (simhw::SimOptions::thermal_tau_s, pkg_power_w), and on real
// hardware the telemetry span probe reads cpufreq + powercap RAPL around
// the timed iteration loop.
//
// The span rides on TraceEvent::telemetry but is routed by the journal to
// the *.telemetry.jsonl sidecar, never serialized into the journal itself —
// host telemetry is wall-clock state, and the main journal's byte-identity
// guarantee must not depend on it (docs/observability.md, "Machine
// telemetry" section).

namespace rooftune::core {

/// Frequency, thermal and energy deltas over one invocation's timed span.
/// `valid` is false when nothing could be measured (no model configured, no
/// readable sysfs) — consumers must skip, not zero-fill, exactly like
/// trace::PerfSample.
struct TelemetrySpan {
  double freq_begin_mhz = 0.0;  ///< effective core frequency entering the span
  double freq_end_mhz = 0.0;    ///< frequency when the span closed
  double freq_mean_mhz = 0.0;   ///< time-weighted mean over the span
  double temp_c = 0.0;          ///< package temperature at span end (0 = unknown)
  double pkg_joules = 0.0;      ///< package energy consumed over the span
  double dram_joules = 0.0;     ///< DRAM energy consumed (0 = not measured)
  bool valid = false;
};

}  // namespace rooftune::core
