#pragma once
// Journal analysis: turns a parsed trace into the `rooftune trace` report —
// per-configuration elimination timeline, per-stop-condition iteration
// accounting, prune-savings summary, and operational-intensity columns
// (analytic next to counter-derived).

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "trace/reader.hpp"

namespace rooftune::trace {

/// How one configuration fared, reduced from its journal records.
struct ConfigTimeline {
  std::uint64_t ordinal = 0;
  std::string config;          ///< Configuration::to_string()
  std::string outcome;         ///< "finished", "pruned", "eliminated"
  std::string stop_reason;     ///< final outer stop reason
  std::uint64_t invocations = 0;
  std::uint64_t iterations = 0;
  double value = 0.0;
  double kernel_s = 0.0;
  double setup_s = 0.0;
  /// Racing only: the round the configuration left the race, and on what
  /// basis ("iteration-ci", "invocation-ci", "inner-prune").
  std::optional<std::uint64_t> eliminated_round;
  std::string elimination_basis;
  /// Operational intensity, FLOP/byte.  Analytic = journal flops/bytes
  /// fields (e.g. TRIAD 1/12, DGEMM 2nmk / 8(nk+km+nm)); measured = flops
  /// over 64 x LLC misses, present only when counters were sampled.
  std::optional<double> analytic_intensity;
  std::optional<double> measured_intensity;
};

/// Iterations accounted to one stop condition across the run.  Every
/// invocation ends with exactly one iteration-level stop decision, so the
/// per-reason iteration sums partition the run total — analyze() verifies
/// that invariant against the journal's summary line.
struct StopAccounting {
  std::uint64_t decisions = 0;   ///< invocations ended by this reason
  std::uint64_t iterations = 0;  ///< iterations those invocations consumed
};

/// Surrogate-strategy section of the analysis: model quality from the
/// "surrogate-fit" records and scan statistics from "prune-batch".
struct SurrogateAnalysis {
  std::uint64_t samples = 0;       ///< seed configurations the model trained on
  double r2 = 0.0;                 ///< training R² in fit scale
  bool log_scale = false;          ///< model fitted on log-transformed values
  std::uint64_t scanned = 0;       ///< unseeded configurations scored
  std::uint64_t kept = 0;          ///< candidates forwarded to the confirm race
  /// Per-seed |predicted − measured| / max(measured, ε), averaged — a quick
  /// in-journal read on how well the model reproduces its training set.
  std::optional<double> mean_seed_error;
  /// Kept candidates in prune order: (config string, predicted value).
  std::vector<std::pair<std::string, double>> candidates;
};

/// Counter-prune section of the analysis, reduced from "counter-prune"
/// records: which configurations the bottleneck classifier stopped, on what
/// class bound, and how many bounds were multiplex-widened.
struct CounterPruneAnalysis {
  std::uint64_t pruned = 0;   ///< configurations stopped by a counter bound
  /// Of those, configurations skipped before their first invocation (the
  /// calibrated analytic-intensity path; their records carry count = 0).
  std::uint64_t skipped = 0;
  std::uint64_t widened = 0;  ///< prunes whose bound was multiplex-widened
  double margin = 0.0;        ///< policy margin in effect
  /// Bottleneck class string ("dram", "compute", "latency") → prune count.
  std::map<std::string, std::uint64_t> by_class;
  struct Entry {
    std::string config;
    std::string cls;
    double bound = 0.0;             ///< class roofline bound, metric units
    std::optional<double> oi;       ///< measured OI (FLOP/byte), DRAM class
    std::optional<double> incumbent;
  };
  /// Pruned configurations in journal order.
  std::vector<Entry> entries;
};

struct TraceAnalysis {
  std::vector<ConfigTimeline> configs;
  /// Present only when the journal carries surrogate-fit/prune-batch records.
  std::optional<SurrogateAnalysis> surrogate;
  /// Present only when the journal carries counter-prune records.
  std::optional<CounterPruneAnalysis> counter_prune;
  /// Keyed by stop reason string, iteration level only.
  std::map<std::string, StopAccounting> by_reason;
  std::uint64_t total_invocations = 0;
  std::uint64_t total_iterations = 0;
  /// Iterations a fixed-budget schedule (every invocation running to the
  /// largest per-invocation iteration count seen in this journal) would
  /// have spent, minus what was actually spent.  The journal-level view of
  /// the paper's Tables VIII–XI savings.
  std::uint64_t saved_iterations = 0;
  std::uint64_t max_invocation_iterations = 0;
  /// Invocations whose perf counts were extrapolated from a partial PMU
  /// slice (counter multiplexing) — the report warns when nonzero, since
  /// scaled counts are estimates, not exact event counts.
  std::uint64_t scaled_perf_invocations = 0;
  /// Racing round summaries in order (empty for exhaustive runs).
  std::vector<core::TraceEvent> rounds;
  /// Cross-check failures (summary totals vs. per-record sums); empty when
  /// the journal is internally consistent.
  std::vector<std::string> inconsistencies;
};

/// Reduce a parsed journal.  Pure function of the journal contents.
[[nodiscard]] TraceAnalysis analyze(const Journal& journal);

/// Render the full `rooftune trace` report (timeline, stop accounting,
/// savings, intensity columns) as fixed-width text.
[[nodiscard]] std::string render_report(const Journal& journal,
                                        const TraceAnalysis& analysis);

/// The JSONL schema reference embedded in `rooftune trace --help`
/// (mirrors docs/observability.md).
[[nodiscard]] const char* schema_reference();

}  // namespace rooftune::trace
