#pragma once
// Chrome trace-event export and analysis for the self-profiler sidecar
// (`--profile FILE`, `rooftune profile FILE`).
//
// The sidecar is one JSON document in the Chrome trace-event format, so
// Perfetto (ui.perfetto.dev) and chrome://tracing load it directly:
// span records become `ph:"X"` complete events on pid 1 with tid = lane
// index (worker lanes), instants become `ph:"i"` thread-scoped events, and
// `ph:"M"` metadata events name the lanes.  ts/dur are microseconds per
// the format; every event additionally carries the exact nanosecond ticks
// in args ("s_ns"/"d_ns") so parse → analyze is lossless.
//
// A top-level "metadata" object (ignored by trace viewers) embeds the
// cross-check anchors: the report's backend-reported setup/kernel second
// sums and — when the run collected them — the SchedulerStats counters.
// `rooftune profile` verifies the profiler's own per-category totals
// against both, so the three accountings cannot silently drift apart:
// Setup/Kernel span *weights* (backend seconds) against the report sums,
// and TaskExec/PoolIdle/CommitWait *host durations* against the pool's
// busy/idle/commit-wait counters, which time the same physical intervals.
//
// Like the telemetry sidecar, everything here is wall-clock and lives
// outside the trace journal's byte-identity boundary (docs/observability.md
// §Determinism): profiling on or off never changes a journal byte.

#include <cstdint>
#include <optional>
#include <string>

#include "core/sched_stats.hpp"
#include "util/profiler.hpp"

namespace rooftune::trace {

/// Schema version written by this build and the newest it can read
/// (the "metadata.schema_version" field).
inline constexpr int kProfileSchemaVersion = 1;

/// Run-level context embedded in the sidecar's metadata object.
struct ProfileMetadata {
  int schema_version = kProfileSchemaVersion;
  std::string benchmark;
  std::string strategy;
  /// Report totals (backend-reported seconds) for the weight cross-check;
  /// have_sums distinguishes "no run context" (analysis-only documents).
  bool have_sums = false;
  double kernel_s_sum = 0.0;
  double setup_s_sum = 0.0;
  /// Pool counters, when the run was collected with --sched-stats.
  std::optional<core::SchedulerStats> sched;
  /// Copied from the snapshot at write time so the report can estimate
  /// self-overhead without the live profiler.
  double overhead_ns_per_record = 0.0;
  std::uint64_t dropped = 0;
};

/// Serialize a snapshot as Chrome trace-event JSON.  Pure function of its
/// inputs; `meta.overhead_ns_per_record` and `meta.dropped` are filled from
/// the snapshot.
std::string write_profile_json(const util::ProfileSnapshot& snapshot,
                               ProfileMetadata meta);

/// write_profile_json + write to `path` (throws std::runtime_error on I/O
/// failure).
void write_profile_file(const std::string& path,
                        const util::ProfileSnapshot& snapshot,
                        ProfileMetadata meta);

/// A parsed sidecar: the reconstructed lanes plus the embedded metadata.
struct ProfileDocument {
  util::ProfileSnapshot snapshot;
  ProfileMetadata meta;
};

/// Parse a sidecar produced by write_profile_json.  Throws
/// std::runtime_error with context on malformed input or a newer schema.
ProfileDocument parse_profile(const std::string& text);
ProfileDocument parse_profile_file(const std::string& path);

/// Rendering knobs for `rooftune profile`.
struct ProfileReportOptions {
  std::size_t top_spans = 10;    ///< rows in the longest-spans table
  std::size_t gantt_width = 72;  ///< characters per worker-lane timeline
};

/// The `rooftune profile` report: category hierarchy with self time,
/// per-lane ASCII Gantt, top-N longest spans, critical-path estimate,
/// profiler self-overhead, and the cross-check table.
std::string render_profile_report(const ProfileDocument& doc,
                                  const ProfileReportOptions& options = {});

}  // namespace rooftune::trace
