#include "trace/profile_export.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "util/json.hpp"
#include "util/json_parse.hpp"
#include "util/table.hpp"

namespace rooftune::trace {

namespace {

std::string fmt(const char* format, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), format, value);
  return buffer;
}

double ms(std::uint64_t ns) { return static_cast<double>(ns) / 1e6; }

std::uint64_t span_duration(const util::ProfileRecord& r) {
  return r.end_ns - r.start_ns;
}

/// Gantt glyph per span category (instants do not draw).
char category_glyph(util::ProfileCategory category) {
  using C = util::ProfileCategory;
  switch (category) {
    case C::TaskExec: return '#';
    case C::PoolIdle: return '.';
    case C::Setup: return 's';
    case C::Kernel: return 'k';
    case C::CommitWait: return 'c';
    case C::RacingRound: return 'r';
    case C::SurrogateSeed: return 'S';
    case C::SurrogateFit: return 'F';
    case C::SurrogateConfirm: return 'C';
    case C::JournalFlush: return 'j';
    case C::Checkpoint: return 'w';
    default: return '?';
  }
}

}  // namespace

std::string write_profile_json(const util::ProfileSnapshot& snapshot,
                               ProfileMetadata meta) {
  meta.overhead_ns_per_record = snapshot.overhead_ns_per_record;
  meta.dropped = snapshot.total_dropped();

  util::JsonWriter w;
  w.begin_object();
  w.key("traceEvents").begin_array();

  w.begin_object();
  w.key("name").value("process_name");
  w.key("ph").value("M");
  w.key("pid").value(1);
  w.key("tid").value(0);
  w.key("args").begin_object().key("name").value("rooftune").end_object();
  w.end_object();

  for (std::size_t tid = 0; tid < snapshot.lanes.size(); ++tid) {
    w.begin_object();
    w.key("name").value("thread_name");
    w.key("ph").value("M");
    w.key("pid").value(1);
    w.key("tid").value(tid);
    w.key("args").begin_object();
    w.key("name").value(snapshot.lanes[tid].thread_name);
    w.end_object();
    w.end_object();
  }

  for (std::size_t tid = 0; tid < snapshot.lanes.size(); ++tid) {
    for (const util::ProfileRecord& r : snapshot.lanes[tid].records) {
      const bool instant = util::profile_category_is_instant(r.category);
      w.begin_object();
      w.key("name").value(util::to_string(r.category));
      w.key("cat").value(util::to_string(r.category));
      w.key("ph").value(instant ? "i" : "X");
      if (instant) w.key("s").value("t");
      w.key("pid").value(1);
      w.key("tid").value(tid);
      // ts/dur are microseconds (the trace-event format); args carry the
      // exact nanosecond ticks so parsing loses nothing.
      w.key("ts").value(static_cast<double>(r.start_ns) / 1e3);
      if (!instant) {
        w.key("dur").value(static_cast<double>(span_duration(r)) / 1e3);
      }
      w.key("args").begin_object();
      w.key("s_ns").value(r.start_ns);
      if (!instant) w.key("d_ns").value(span_duration(r));
      if (r.arg != 0) w.key("arg").value(r.arg);
      if (r.weight != 0.0) w.key("weight_s").value_exact(r.weight);
      w.end_object();
      w.end_object();
    }
  }
  w.end_array();

  w.key("displayTimeUnit").value("ms");

  w.key("metadata").begin_object();
  w.key("tool").value("rooftune");
  w.key("schema_version").value(meta.schema_version);
  if (!meta.benchmark.empty()) w.key("benchmark").value(meta.benchmark);
  if (!meta.strategy.empty()) w.key("strategy").value(meta.strategy);
  if (meta.have_sums) {
    w.key("kernel_s_sum").value_exact(meta.kernel_s_sum);
    w.key("setup_s_sum").value_exact(meta.setup_s_sum);
  }
  if (meta.sched.has_value()) {
    const core::SchedulerStats& s = *meta.sched;
    w.key("sched").begin_object();
    w.key("mode").value(s.mode);
    w.key("workers").value(s.workers);
    w.key("lookahead").value(s.lookahead);
    w.key("tasks").value(s.tasks);
    w.key("steals").value(s.steals);
    w.key("parks").value(s.parks);
    w.key("idle_ns").value(s.idle_ns);
    w.key("busy_ns").value(s.busy_ns);
    w.key("commit_wait_ns").value(s.commit_wait_ns);
    w.key("span_ns").value(s.span_ns);
    w.end_object();
  }
  w.key("overhead_ns_per_record").value_exact(meta.overhead_ns_per_record);
  w.key("dropped").value(meta.dropped);
  // Lane roster (names and per-lane drop counts survive even for lanes
  // whose every record was dropped).
  w.key("lanes").begin_array();
  for (std::size_t tid = 0; tid < snapshot.lanes.size(); ++tid) {
    w.begin_object();
    w.key("tid").value(tid);
    w.key("name").value(snapshot.lanes[tid].thread_name);
    w.key("dropped").value(snapshot.lanes[tid].dropped);
    w.end_object();
  }
  w.end_array();
  w.end_object();

  w.end_object();
  return w.str();
}

void write_profile_file(const std::string& path,
                        const util::ProfileSnapshot& snapshot,
                        ProfileMetadata meta) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("profile: cannot write " + path);
  out << write_profile_json(snapshot, std::move(meta)) << "\n";
}

namespace {

std::uint64_t as_u64(const util::JsonValue& v) {
  return static_cast<std::uint64_t>(v.as_number());
}

}  // namespace

ProfileDocument parse_profile(const std::string& text) {
  const util::JsonValue root = [&] {
    try {
      return util::parse_json(text);
    } catch (const std::invalid_argument& e) {
      throw std::runtime_error("profile: malformed JSON" +
                               util::parse_error_location(text, e.what()) +
                               ": " + e.what());
    }
  }();
  if (!root.has("traceEvents") || !root.has("metadata")) {
    throw std::runtime_error(
        "profile: not a rooftune profile sidecar (missing traceEvents or "
        "metadata)");
  }

  ProfileDocument doc;
  const util::JsonValue& meta = root.at("metadata");
  doc.meta.schema_version = static_cast<int>(meta.at("schema_version").as_int());
  if (doc.meta.schema_version > kProfileSchemaVersion) {
    throw std::runtime_error(
        "profile: schema version " + std::to_string(doc.meta.schema_version) +
        " is newer than the newest this build reads (" +
        std::to_string(kProfileSchemaVersion) + ") — upgrade rooftune");
  }
  if (meta.has("benchmark")) doc.meta.benchmark = meta.at("benchmark").as_string();
  if (meta.has("strategy")) doc.meta.strategy = meta.at("strategy").as_string();
  if (meta.has("kernel_s_sum")) {
    doc.meta.have_sums = true;
    doc.meta.kernel_s_sum = meta.at("kernel_s_sum").as_number();
    doc.meta.setup_s_sum = meta.at("setup_s_sum").as_number();
  }
  if (meta.has("sched")) {
    const util::JsonValue& s = meta.at("sched");
    core::SchedulerStats stats;
    stats.mode = s.at("mode").as_string();
    stats.workers = as_u64(s.at("workers"));
    stats.lookahead = as_u64(s.at("lookahead"));
    stats.tasks = as_u64(s.at("tasks"));
    stats.steals = as_u64(s.at("steals"));
    stats.parks = as_u64(s.at("parks"));
    stats.idle_ns = as_u64(s.at("idle_ns"));
    stats.busy_ns = as_u64(s.at("busy_ns"));
    stats.commit_wait_ns = as_u64(s.at("commit_wait_ns"));
    stats.span_ns = as_u64(s.at("span_ns"));
    doc.meta.sched = std::move(stats);
  }
  if (meta.has("overhead_ns_per_record")) {
    doc.meta.overhead_ns_per_record =
        meta.at("overhead_ns_per_record").as_number();
  }
  if (meta.has("dropped")) doc.meta.dropped = as_u64(meta.at("dropped"));
  doc.snapshot.overhead_ns_per_record = doc.meta.overhead_ns_per_record;

  for (const util::JsonValue& lane : meta.at("lanes").as_array()) {
    const std::size_t tid = static_cast<std::size_t>(lane.at("tid").as_int());
    if (tid >= doc.snapshot.lanes.size()) doc.snapshot.lanes.resize(tid + 1);
    doc.snapshot.lanes[tid].thread_name = lane.at("name").as_string();
    doc.snapshot.lanes[tid].dropped = as_u64(lane.at("dropped"));
  }

  for (const util::JsonValue& event : root.at("traceEvents").as_array()) {
    const std::string& ph = event.at("ph").as_string();
    if (ph == "M") continue;
    if (ph != "X" && ph != "i") continue;  // foreign events: tolerate
    util::ProfileCategory category;
    if (!util::profile_category_from_string(event.at("cat").as_string(),
                                            category)) {
      throw std::runtime_error("profile: unknown span category '" +
                               event.at("cat").as_string() + "'");
    }
    const std::size_t tid = static_cast<std::size_t>(event.at("tid").as_int());
    if (tid >= doc.snapshot.lanes.size()) doc.snapshot.lanes.resize(tid + 1);
    const util::JsonValue& args = event.at("args");
    util::ProfileRecord record;
    record.category = category;
    record.start_ns = as_u64(args.at("s_ns"));
    record.end_ns =
        ph == "X" ? record.start_ns + as_u64(args.at("d_ns")) : record.start_ns;
    if (args.has("arg")) record.arg = as_u64(args.at("arg"));
    if (args.has("weight_s")) record.weight = args.at("weight_s").as_number();
    doc.snapshot.lanes[tid].records.push_back(record);
  }
  return doc;
}

ProfileDocument parse_profile_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("profile: cannot read " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return parse_profile(buffer.str());
}

namespace {

/// A span with its lane and nesting depth, after tree assignment.
struct FlatSpan {
  std::size_t lane = 0;
  std::size_t depth = 0;
  util::ProfileRecord record;
  std::uint64_t child_ns = 0;  ///< summed durations of direct children
  std::vector<std::size_t> category_path;  ///< ancestor categories + own
};

/// Leaf interval: a span's coverage minus its children (what the Gantt
/// paints and the critical-path union consumes).
struct LeafInterval {
  std::size_t lane = 0;
  util::ProfileCategory category{};
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
};

struct Analysis {
  std::vector<FlatSpan> spans;  ///< all spans, all lanes
  std::vector<LeafInterval> leaves;
  std::uint64_t wall_ns = 0;  ///< max end tick over every record
  std::uint64_t instant_counts[util::kProfileCategoryCount] = {};
};

/// Assign parents per lane with a start-sorted stack walk, accumulate
/// child time, and flatten self-coverage into leaf intervals.
Analysis analyze(const util::ProfileSnapshot& snapshot) {
  Analysis a;
  for (std::size_t lane = 0; lane < snapshot.lanes.size(); ++lane) {
    std::vector<util::ProfileRecord> spans;
    for (const util::ProfileRecord& r : snapshot.lanes[lane].records) {
      a.wall_ns = std::max(a.wall_ns, r.end_ns);
      if (util::profile_category_is_instant(r.category)) {
        ++a.instant_counts[static_cast<std::size_t>(r.category)];
      } else {
        spans.push_back(r);
      }
    }
    std::sort(spans.begin(), spans.end(),
              [](const util::ProfileRecord& x, const util::ProfileRecord& y) {
                if (x.start_ns != y.start_ns) return x.start_ns < y.start_ns;
                return x.end_ns > y.end_ns;  // enclosing span first
              });

    // stack holds indexes into a.spans of currently-open ancestors.
    std::vector<std::size_t> stack;
    for (const util::ProfileRecord& r : spans) {
      while (!stack.empty() && a.spans[stack.back()].record.end_ns <= r.start_ns) {
        stack.pop_back();
      }
      FlatSpan flat;
      flat.lane = lane;
      flat.record = r;
      if (!stack.empty()) {
        FlatSpan& parent = a.spans[stack.back()];
        flat.depth = parent.depth + 1;
        flat.category_path = parent.category_path;
        parent.child_ns += span_duration(r);
        // The parent's coverage between its last emitted leaf edge and this
        // child's start is parent self time; emitted in the second pass.
      }
      flat.category_path.push_back(static_cast<std::size_t>(r.category));
      a.spans.push_back(std::move(flat));
      stack.push_back(a.spans.size() - 1);
    }
  }

  // Leaf emission: per span, coverage minus direct children (children are
  // contiguous in start order and lie inside the parent by construction).
  // Rebuild child lists from the paths: a direct child is any later span in
  // the same lane nested exactly one deeper whose interval lies inside.
  for (std::size_t i = 0; i < a.spans.size(); ++i) {
    const FlatSpan& s = a.spans[i];
    std::uint64_t cursor = s.record.start_ns;
    for (std::size_t j = i + 1; j < a.spans.size(); ++j) {
      const FlatSpan& t = a.spans[j];
      if (t.lane != s.lane || t.record.start_ns >= s.record.end_ns) break;
      if (t.depth != s.depth + 1) continue;
      if (t.record.start_ns > cursor) {
        a.leaves.push_back({s.lane, s.record.category, cursor, t.record.start_ns});
      }
      cursor = std::max(cursor, t.record.end_ns);
    }
    if (cursor < s.record.end_ns) {
      a.leaves.push_back({s.lane, s.record.category, cursor, s.record.end_ns});
    }
  }
  return a;
}

/// Length of the union of [start, end) intervals.
std::uint64_t union_length(std::vector<std::pair<std::uint64_t, std::uint64_t>> v) {
  std::sort(v.begin(), v.end());
  std::uint64_t total = 0;
  std::uint64_t cursor = 0;
  bool open = false;
  std::uint64_t open_end = 0;
  for (const auto& [start, end] : v) {
    if (!open || start > open_end) {
      if (open) total += open_end - cursor;
      cursor = start;
      open_end = end;
      open = true;
    } else {
      open_end = std::max(open_end, end);
    }
  }
  if (open) total += open_end - cursor;
  return total;
}

std::string percent_of(std::uint64_t part, std::uint64_t whole) {
  if (whole == 0) return "-";
  return fmt("%.1f%%", 100.0 * static_cast<double>(part) /
                           static_cast<double>(whole));
}

/// One cross-check row: profiler total vs external total, 1% tolerance.
void check_row(util::TextTable& table, const std::string& what,
               double profiler_value, double external_value,
               const char* unit) {
  const double reference = std::max(std::abs(profiler_value), std::abs(external_value));
  const double delta =
      reference > 0.0 ? std::abs(profiler_value - external_value) / reference : 0.0;
  table.add_row({what, fmt("%.6g", profiler_value) + unit,
                 fmt("%.6g", external_value) + unit, fmt("%.2f%%", delta * 100.0),
                 delta <= 0.01 ? "ok" : "DRIFT"});
}

}  // namespace

std::string render_profile_report(const ProfileDocument& doc,
                                  const ProfileReportOptions& options) {
  const util::ProfileSnapshot& snapshot = doc.snapshot;
  const Analysis a = analyze(snapshot);
  std::ostringstream out;

  out << "self-profile";
  if (!doc.meta.benchmark.empty()) {
    out << ": " << doc.meta.benchmark << " / " << doc.meta.strategy;
  }
  out << "\n";
  out << "  lanes " << snapshot.lanes.size() << ", spans " << a.spans.size()
      << ", wall " << fmt("%.3f", ms(a.wall_ns)) << " ms\n\n";

  // --- Category hierarchy -------------------------------------------------
  struct Agg {
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t self_ns = 0;
  };
  std::map<std::vector<std::size_t>, Agg> hierarchy;
  for (const FlatSpan& s : a.spans) {
    Agg& agg = hierarchy[s.category_path];
    ++agg.count;
    agg.total_ns += span_duration(s.record);
    agg.self_ns += span_duration(s.record) - std::min(span_duration(s.record), s.child_ns);
  }
  out << "category hierarchy (host time; self = minus nested spans)\n";
  {
    util::TextTable table;
    table.columns({"category", "count", "total ms", "self ms", "% wall"},
                  {util::Align::Left, util::Align::Right, util::Align::Right,
                   util::Align::Right, util::Align::Right});
    for (const auto& [path, agg] : hierarchy) {
      std::string name(2 * (path.size() - 1), ' ');
      name += util::to_string(static_cast<util::ProfileCategory>(path.back()));
      table.add_row({name, std::to_string(agg.count), fmt("%.3f", ms(agg.total_ns)),
                     fmt("%.3f", ms(agg.self_ns)),
                     percent_of(agg.total_ns, a.wall_ns)});
    }
    out << table.render();
  }
  {
    bool any = false;
    std::ostringstream line;
    line << "instants:";
    for (std::size_t i = 0; i < util::kProfileCategoryCount; ++i) {
      if (a.instant_counts[i] == 0) continue;
      line << " " << util::to_string(static_cast<util::ProfileCategory>(i))
           << "=" << a.instant_counts[i];
      any = true;
    }
    if (any) out << line.str() << "\n";
  }
  out << "\n";

  // --- Worker-lane Gantt --------------------------------------------------
  out << "worker lanes (" << options.gantt_width << " cols, "
      << fmt("%.3f", ms(a.wall_ns / std::max<std::size_t>(1, options.gantt_width)))
      << " ms/col)\n";
  {
    std::size_t name_width = 0;
    for (const auto& lane : snapshot.lanes) {
      name_width = std::max(name_width, lane.thread_name.size());
    }
    for (std::size_t lane = 0; lane < snapshot.lanes.size(); ++lane) {
      const std::size_t width = std::max<std::size_t>(1, options.gantt_width);
      // coverage[col][category] in ns; the glyph is the best-covered
      // category of each column.
      std::vector<std::vector<std::uint64_t>> coverage(
          width, std::vector<std::uint64_t>(util::kProfileCategoryCount, 0));
      std::uint64_t busy_ns = 0;
      for (const LeafInterval& leaf : a.leaves) {
        if (leaf.lane != lane) continue;
        if (leaf.category != util::ProfileCategory::PoolIdle) {
          busy_ns += leaf.end_ns - leaf.start_ns;
        }
        if (a.wall_ns == 0) continue;
        const double scale = static_cast<double>(width) /
                             static_cast<double>(a.wall_ns);
        std::size_t first = static_cast<std::size_t>(
            static_cast<double>(leaf.start_ns) * scale);
        std::size_t last = static_cast<std::size_t>(
            static_cast<double>(leaf.end_ns) * scale);
        first = std::min(first, width - 1);
        last = std::min(last, width - 1);
        for (std::size_t col = first; col <= last; ++col) {
          const std::uint64_t col_lo = static_cast<std::uint64_t>(
              static_cast<double>(col) / scale);
          const std::uint64_t col_hi = static_cast<std::uint64_t>(
              static_cast<double>(col + 1) / scale);
          const std::uint64_t lo = std::max(leaf.start_ns, col_lo);
          const std::uint64_t hi = std::min(leaf.end_ns, col_hi);
          if (hi > lo) {
            coverage[col][static_cast<std::size_t>(leaf.category)] += hi - lo;
          }
        }
      }
      std::string row(width, ' ');
      for (std::size_t col = 0; col < width; ++col) {
        std::size_t best = util::kProfileCategoryCount;
        std::uint64_t best_ns = 0;
        for (std::size_t c = 0; c < util::kProfileCategoryCount; ++c) {
          if (coverage[col][c] > best_ns) {
            best_ns = coverage[col][c];
            best = c;
          }
        }
        if (best < util::kProfileCategoryCount) {
          row[col] = category_glyph(static_cast<util::ProfileCategory>(best));
        }
      }
      std::string name = snapshot.lanes[lane].thread_name;
      name.resize(name_width, ' ');
      out << "  " << name << " |" << row << "| busy "
          << percent_of(busy_ns, a.wall_ns) << "\n";
    }
    out << "  legend: #=task s=setup k=kernel .=idle c=commit-wait "
           "r=racing-round S=seed F=fit C=confirm j=journal w=checkpoint\n\n";
  }

  // --- Top-N longest spans ------------------------------------------------
  {
    std::vector<const FlatSpan*> sorted;
    sorted.reserve(a.spans.size());
    for (const FlatSpan& s : a.spans) sorted.push_back(&s);
    std::sort(sorted.begin(), sorted.end(),
              [](const FlatSpan* x, const FlatSpan* y) {
                const std::uint64_t dx = span_duration(x->record);
                const std::uint64_t dy = span_duration(y->record);
                if (dx != dy) return dx > dy;
                if (x->lane != y->lane) return x->lane < y->lane;
                return x->record.start_ns < y->record.start_ns;
              });
    const std::size_t n = std::min(options.top_spans, sorted.size());
    out << "top " << n << " longest spans\n";
    util::TextTable table;
    table.columns({"category", "lane", "start ms", "dur ms", "arg"},
                  {util::Align::Left, util::Align::Left, util::Align::Right,
                   util::Align::Right, util::Align::Right});
    for (std::size_t i = 0; i < n; ++i) {
      const FlatSpan& s = *sorted[i];
      table.add_row({util::to_string(s.record.category),
                     snapshot.lanes[s.lane].thread_name,
                     fmt("%.3f", ms(s.record.start_ns)),
                     fmt("%.3f", ms(span_duration(s.record))),
                     std::to_string(s.record.arg)});
    }
    out << table.render() << "\n";
  }

  // --- Critical path + overhead -------------------------------------------
  {
    std::vector<std::pair<std::uint64_t, std::uint64_t>> active;
    std::uint64_t active_total = 0;
    for (const LeafInterval& leaf : a.leaves) {
      if (leaf.category == util::ProfileCategory::PoolIdle ||
          leaf.category == util::ProfileCategory::CommitWait) {
        continue;
      }
      active.push_back({leaf.start_ns, leaf.end_ns});
      active_total += leaf.end_ns - leaf.start_ns;
    }
    const std::uint64_t critical = union_length(std::move(active));
    out << "critical-path estimate: " << fmt("%.3f", ms(critical))
        << " ms covered by work (wall " << fmt("%.3f", ms(a.wall_ns))
        << " ms, parallelism "
        << (critical > 0
                ? fmt("%.2f", static_cast<double>(active_total) /
                                  static_cast<double>(critical))
                : std::string("-"))
        << "x)\n";
    const double overhead_ns =
        doc.meta.overhead_ns_per_record *
        static_cast<double>(snapshot.total_records());
    out << "profiler self-overhead: ~" << fmt("%.3f", overhead_ns / 1e6)
        << " ms (" << snapshot.total_records() << " records x "
        << fmt("%.0f", doc.meta.overhead_ns_per_record) << " ns), dropped "
        << snapshot.total_dropped() << "\n\n";
  }

  // --- Cross-checks -------------------------------------------------------
  if (doc.meta.have_sums || doc.meta.sched.has_value()) {
    double kernel_weight = 0.0;
    double setup_weight = 0.0;
    std::uint64_t task_ns = 0;
    std::uint64_t idle_ns = 0;
    std::uint64_t commit_ns = 0;
    for (const FlatSpan& s : a.spans) {
      switch (s.record.category) {
        case util::ProfileCategory::Kernel: kernel_weight += s.record.weight; break;
        case util::ProfileCategory::Setup: setup_weight += s.record.weight; break;
        case util::ProfileCategory::TaskExec: task_ns += span_duration(s.record); break;
        case util::ProfileCategory::PoolIdle: idle_ns += span_duration(s.record); break;
        case util::ProfileCategory::CommitWait: commit_ns += span_duration(s.record); break;
        default: break;
      }
    }
    out << "cross-check (profiler vs report/scheduler accounting)\n";
    util::TextTable table;
    table.columns({"quantity", "profiler", "reference", "delta", ""},
                  {util::Align::Left, util::Align::Right, util::Align::Right,
                   util::Align::Right, util::Align::Left});
    if (doc.meta.have_sums) {
      check_row(table, "kernel time (backend s)", kernel_weight,
                doc.meta.kernel_s_sum, " s");
      check_row(table, "setup time (backend s)", setup_weight,
                doc.meta.setup_s_sum, " s");
    }
    if (doc.meta.sched.has_value()) {
      const core::SchedulerStats& s = *doc.meta.sched;
      check_row(table, "worker busy (host ms)", ms(task_ns), ms(s.busy_ns),
                " ms");
      check_row(table, "worker idle (host ms)", ms(idle_ns), ms(s.idle_ns),
                " ms");
      check_row(table, "commit wait (host ms)", ms(commit_ns),
                ms(s.commit_wait_ns), " ms");
      using C = util::ProfileCategory;
      check_row(table, "steals (count)",
                static_cast<double>(a.instant_counts[static_cast<std::size_t>(C::Steal)]),
                static_cast<double>(s.steals), "");
      check_row(table, "parks (count)",
                static_cast<double>(a.instant_counts[static_cast<std::size_t>(C::Park)]),
                static_cast<double>(s.parks), "");
    }
    out << table.render();
  }
  return out.str();
}

}  // namespace rooftune::trace
