#include "trace/perf_counters.hpp"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#endif

namespace rooftune::trace {

#if defined(__linux__)

namespace {

int open_counter(std::uint32_t type, std::uint64_t config, int group_fd) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof attr);
  attr.size = sizeof attr;
  attr.type = type;
  attr.config = config;
  attr.disabled = group_fd == -1 ? 1 : 0;
  attr.exclude_kernel = 1;  // keeps paranoid<=1 environments working
  attr.exclude_hv = 1;
  attr.inherit = 0;  // per-thread: each worker opens its own group
  // Read the enabled/running times with every count so multiplexed slices
  // are detected and the counts scaled (see PerfSample::scaled).
  attr.read_format =
      PERF_FORMAT_TOTAL_TIME_ENABLED | PERF_FORMAT_TOTAL_TIME_RUNNING;
  return static_cast<int>(syscall(SYS_perf_event_open, &attr, /*pid=*/0,
                                  /*cpu=*/-1, group_fd, /*flags=*/0UL));
}

struct CounterReading {
  std::uint64_t value = 0;
  std::uint64_t enabled_ns = 0;
  std::uint64_t running_ns = 0;
};

CounterReading read_counter(int fd) {
  CounterReading r;
  std::uint64_t buf[3] = {0, 0, 0};
  if (fd >= 0 && read(fd, buf, sizeof buf) == sizeof buf) {
    r.value = buf[0];
    r.enabled_ns = buf[1];
    r.running_ns = buf[2];
  }
  return r;
}

/// perf(1) extrapolation: a counter that ran for only part of the phase
/// estimates the full-phase count as value * enabled/running.  A counter
/// that never got PMU time has no information — the caller invalidates the
/// sample.
std::uint64_t scale_count(const CounterReading& r, bool& scaled, bool& starved) {
  if (r.running_ns == r.enabled_ns || r.enabled_ns == 0) return r.value;
  if (r.running_ns == 0) {
    starved = true;
    return 0;
  }
  scaled = true;
  const double factor = static_cast<double>(r.enabled_ns) /
                        static_cast<double>(r.running_ns);
  return static_cast<std::uint64_t>(static_cast<double>(r.value) * factor);
}

}  // namespace

PerfCounterSampler::PerfCounterSampler() {
  fd_cycles_ = open_counter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES, -1);
  if (fd_cycles_ < 0) {
    reason_ = errno == EACCES || errno == EPERM
                  ? "perf_event_open denied (kernel.perf_event_paranoid?)"
                  : "perf_event_open failed (no PMU?)";
    return;
  }
  // Grouped under cycles so all three counters are scheduled (and therefore
  // read) atomically for the same slice of the kernel phase.
  fd_instructions_ =
      open_counter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS, fd_cycles_);
  fd_llc_misses_ =
      open_counter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES, fd_cycles_);
  if (fd_instructions_ < 0 || fd_llc_misses_ < 0) {
    reason_ = "PMU lacks an instructions or LLC-miss counter";
    close(fd_cycles_);
    if (fd_instructions_ >= 0) close(fd_instructions_);
    if (fd_llc_misses_ >= 0) close(fd_llc_misses_);
    fd_cycles_ = fd_instructions_ = fd_llc_misses_ = -1;
    return;
  }
  available_ = true;
}

PerfCounterSampler::~PerfCounterSampler() {
  if (fd_cycles_ >= 0) close(fd_cycles_);
  if (fd_instructions_ >= 0) close(fd_instructions_);
  if (fd_llc_misses_ >= 0) close(fd_llc_misses_);
}

void PerfCounterSampler::begin() {
  if (!available_) return;
  ioctl(fd_cycles_, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
  ioctl(fd_cycles_, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
}

PerfSample PerfCounterSampler::end() {
  PerfSample sample;
  if (!available_) return sample;
  ioctl(fd_cycles_, PERF_EVENT_IOC_DISABLE, PERF_IOC_FLAG_GROUP);
  const CounterReading cycles = read_counter(fd_cycles_);
  const CounterReading instructions = read_counter(fd_instructions_);
  const CounterReading llc = read_counter(fd_llc_misses_);
  bool scaled = false;
  bool starved = false;
  sample.cycles = scale_count(cycles, scaled, starved);
  sample.instructions = scale_count(instructions, scaled, starved);
  sample.llc_misses = scale_count(llc, scaled, starved);
  sample.time_enabled_ns = cycles.enabled_ns;
  sample.time_running_ns = cycles.running_ns;
  sample.scaled = scaled;
  // A group starved of PMU time carries no information; the whole group is
  // scheduled atomically, so cycles==0 (the leader) covers that case too.
  sample.valid = !starved && sample.cycles != 0;
  return sample;
}

#else  // !__linux__

PerfCounterSampler::PerfCounterSampler() {
  reason_ = "perf_event_open is Linux-only";
}

PerfCounterSampler::~PerfCounterSampler() = default;

void PerfCounterSampler::begin() {}

PerfSample PerfCounterSampler::end() { return {}; }

#endif

}  // namespace rooftune::trace
