#include "trace/perf_counters.hpp"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#endif

namespace rooftune::trace {

#if defined(__linux__)

namespace {

int open_counter(std::uint32_t type, std::uint64_t config, int group_fd) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof attr);
  attr.size = sizeof attr;
  attr.type = type;
  attr.config = config;
  attr.disabled = group_fd == -1 ? 1 : 0;
  attr.exclude_kernel = 1;  // keeps paranoid<=1 environments working
  attr.exclude_hv = 1;
  attr.inherit = 0;  // per-thread: each worker opens its own group
  return static_cast<int>(syscall(SYS_perf_event_open, &attr, /*pid=*/0,
                                  /*cpu=*/-1, group_fd, /*flags=*/0UL));
}

std::uint64_t read_counter(int fd) {
  std::uint64_t value = 0;
  if (fd >= 0 && read(fd, &value, sizeof value) != sizeof value) value = 0;
  return value;
}

}  // namespace

PerfCounterSampler::PerfCounterSampler() {
  fd_cycles_ = open_counter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES, -1);
  if (fd_cycles_ < 0) {
    reason_ = errno == EACCES || errno == EPERM
                  ? "perf_event_open denied (kernel.perf_event_paranoid?)"
                  : "perf_event_open failed (no PMU?)";
    return;
  }
  // Grouped under cycles so all three counters are scheduled (and therefore
  // read) atomically for the same slice of the kernel phase.
  fd_instructions_ =
      open_counter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS, fd_cycles_);
  fd_llc_misses_ =
      open_counter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES, fd_cycles_);
  if (fd_instructions_ < 0 || fd_llc_misses_ < 0) {
    reason_ = "PMU lacks an instructions or LLC-miss counter";
    close(fd_cycles_);
    if (fd_instructions_ >= 0) close(fd_instructions_);
    if (fd_llc_misses_ >= 0) close(fd_llc_misses_);
    fd_cycles_ = fd_instructions_ = fd_llc_misses_ = -1;
    return;
  }
  available_ = true;
}

PerfCounterSampler::~PerfCounterSampler() {
  if (fd_cycles_ >= 0) close(fd_cycles_);
  if (fd_instructions_ >= 0) close(fd_instructions_);
  if (fd_llc_misses_ >= 0) close(fd_llc_misses_);
}

void PerfCounterSampler::begin() {
  if (!available_) return;
  ioctl(fd_cycles_, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
  ioctl(fd_cycles_, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
}

PerfSample PerfCounterSampler::end() {
  PerfSample sample;
  if (!available_) return sample;
  ioctl(fd_cycles_, PERF_EVENT_IOC_DISABLE, PERF_IOC_FLAG_GROUP);
  sample.cycles = read_counter(fd_cycles_);
  sample.instructions = read_counter(fd_instructions_);
  sample.llc_misses = read_counter(fd_llc_misses_);
  sample.valid = sample.cycles != 0;
  return sample;
}

#else  // !__linux__

PerfCounterSampler::PerfCounterSampler() {
  reason_ = "perf_event_open is Linux-only";
}

PerfCounterSampler::~PerfCounterSampler() = default;

void PerfCounterSampler::begin() {}

PerfSample PerfCounterSampler::end() { return {}; }

#endif

}  // namespace rooftune::trace
