#pragma once
// TraceJournal — the concrete core::TraceSink: per-worker buffering,
// deterministic merge, JSONL serialization, optional per-invocation
// hardware counters.
//
// Concurrency model: emit() appends to a buffer owned by the calling
// thread (one lock acquisition per thread's *first* event, none after), so
// ParallelEvaluator workers never contend on the hot path.  flush()/str()
// merge the buffers by the logical sort key (epoch, config ordinal,
// invocation, rank) with emission order as the tie-break — on the simulated
// backends the result is byte-identical run-to-run and across 1/2/8
// workers, because nothing position-dependent (timestamps, sequence
// numbers, worker ids) is ever serialized.  docs/observability.md is the
// schema reference.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/sched_stats.hpp"
#include "core/trace_events.hpp"
#include "telemetry/environment.hpp"
#include "telemetry/sidecar.hpp"
#include "telemetry/span_probe.hpp"
#include "trace/perf_counters.hpp"

namespace rooftune::trace {

struct JournalOptions {
  /// JSONL output path for flush(); empty keeps the journal in memory only
  /// (tests and embedders read str() instead).
  std::string path;
  /// Attach perf_event counter deltas (cycles, instructions, LLC misses)
  /// to every invocation record.  Degrades to a no-op when the kernel
  /// refuses perf_event_open — see PerfCounterSampler.
  bool perf_counters = false;
  /// Machine-environment fingerprint serialized as the journal's first
  /// line ({"t":"provenance"}), ahead of the run header.  The fields are
  /// stable on a fixed machine (no timestamps/hostnames), so the record
  /// participates in the bit-identity guarantee there.
  std::optional<telemetry::EnvironmentFingerprint> provenance;
  /// Destination for per-invocation telemetry spans.  Telemetry NEVER
  /// enters the journal body — events carrying a TelemetrySpan have it
  /// forwarded here and stripped from serialization, so attaching
  /// telemetry cannot change the journal's bytes.  Non-owning; may be null.
  telemetry::TelemetrySidecar* sidecar = nullptr;
  /// Probe sysfs frequency/RAPL at kernel-phase boundaries for backends
  /// that report no telemetry of their own (native/pipe runs).  Degrades
  /// per capability; see telemetry::SpanProbe.
  bool span_probe = false;
};

/// JSONL schema version this build writes ({"t":"run","v":N,...}) and the
/// newest the reader accepts.  Bump on any change a v1 reader would
/// misinterpret; readers reject newer journals with a version-specific
/// error instead of failing on whatever field changed.
inline constexpr int kJournalSchemaVersion = 1;

/// First line of the journal: what was tuned, with what schedule.
/// Deliberately excludes worker counts, hostnames, and timestamps — the
/// header participates in the bit-identity guarantee.
struct RunHeader {
  std::string benchmark;  ///< "dgemm", "triad", "pipe", ...
  std::string metric;     ///< Backend::metric_name()
  std::string strategy;   ///< to_string(TunerOptions::strategy)
};

/// Last line of the journal: run totals, written by finish_run.  The
/// analyzer cross-checks these against the per-record sums (every
/// iteration must be accounted to exactly one stop decision).
struct RunSummary {
  std::uint64_t configs = 0;
  std::uint64_t pruned = 0;
  std::uint64_t invocations = 0;
  std::uint64_t iterations = 0;
  std::optional<double> best;
  /// Parallel-scheduler accounting (TuningRun::sched), serialized as its
  /// own {"t":"scheduler"} record just before the summary.  Absent by
  /// default: its counters are wall-clock measurements, so a journal that
  /// carries them is NOT expected to be byte-identical across reruns —
  /// callers opt in (--sched-stats) knowing they trade that away.
  std::optional<core::SchedulerStats> scheduler;
};

class TraceJournal final : public core::TraceSink {
 public:
  explicit TraceJournal(JournalOptions options = {});
  ~TraceJournal() override;

  /// Record run metadata (serialized as the first line).
  void begin_run(RunHeader header);

  /// Record run totals (serialized as the last line).
  void finish_run(RunSummary summary);

  void emit(const core::TraceEvent& event) override;
  void kernel_phase_begin() override;
  void kernel_phase_end() override;
  /// The calling thread's last kernel-phase counter deltas, converted to
  /// the core seam type — how sampled hardware counters reach the
  /// counter-prune policy (core/bottleneck.hpp) on real backends.
  [[nodiscard]] std::optional<core::CounterSample> kernel_phase_counters()
      const override;

  /// Merge all worker buffers into deterministic order and serialize as
  /// JSONL.  Safe to call while no worker is concurrently emitting.
  [[nodiscard]] std::string str() const;

  /// str() written to JournalOptions::path (no-op when the path is empty).
  void flush() const;

  [[nodiscard]] std::size_t event_count() const;

  /// Run-level counter degradation: the first unavailability reason any
  /// worker's sampler reported ("" when every sampler opened).  One string
  /// per run regardless of worker count or invocation count — the CLI
  /// prints it once, and the run header records it as "perf_degraded" so
  /// `rooftune trace` can explain missing measured-OI columns.  Meaningful
  /// only with JournalOptions::perf_counters.
  [[nodiscard]] const char* perf_unavailable_reason();

 private:
  struct Record {
    core::TraceEvent event;
    PerfSample perf;       ///< valid only for Invocation records
    std::uint64_t seq = 0; ///< emission order; merge tie-break, never serialized
  };
  struct WorkerBuffer {
    std::vector<Record> records;
    std::unique_ptr<PerfCounterSampler> sampler;
    PerfSample pending;  ///< last kernel phase's deltas, not yet attached
    std::unique_ptr<telemetry::SpanProbe> probe;
    core::TelemetrySpan pending_telemetry;  ///< last phase's probe span
  };

  WorkerBuffer& local_buffer();
  /// Thread-local journal-id → buffer map shared by local_buffer() (which
  /// creates entries) and kernel_phase_counters() (lookup only).
  static std::unordered_map<std::uint64_t, WorkerBuffer*>& thread_registry();

  JournalOptions options_;
  const std::uint64_t id_;  ///< keys the thread-local buffer registry
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<WorkerBuffer>> buffers_;
  std::atomic<std::uint64_t> seq_{0};
  std::optional<RunHeader> header_;
  std::optional<RunSummary> summary_;
  /// First sampler-unavailability reason seen across all workers (guarded
  /// by mutex_; set where samplers are created, in local_buffer).
  std::string degraded_reason_;
};

}  // namespace rooftune::trace
