#include "trace/export.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "core/stop_condition.hpp"
#include "stats/welford.hpp"
#include "util/clock.hpp"
#include "util/json.hpp"
#include "util/json_parse.hpp"

namespace rooftune::trace {

namespace {

std::string fmt17(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

/// ConfigResult::value() over export records: Welford mean of invocation
/// means excluding pruned-by-best invocations, falling back to the mean
/// over all of them when every invocation was pruned.
double recompute_value(const std::vector<ExportInvocation>& invocations) {
  stats::OnlineMoments completed;
  stats::OnlineMoments all;
  for (const auto& inv : invocations) {
    all.add(inv.mean);
    if (inv.stop != core::to_string(core::StopReason::PrunedByBest)) {
      completed.add(inv.mean);
    }
  }
  return completed.count() > 0 ? completed.mean() : all.mean();
}

void write_config(util::JsonWriter& w, const core::Configuration& config) {
  w.begin_object();
  for (const auto& p : config.parameters()) {
    w.key(p.name).value(static_cast<long long>(p.value));
  }
  w.end_object();
}

void write_environment(util::JsonWriter& w,
                       const telemetry::EnvironmentFingerprint& env) {
  // Same keys as the journal's provenance record (docs/observability.md),
  // minus the record framing.
  w.begin_object();
  w.key("cpu").value(env.cpu_model);
  w.key("uarch").value(env.uarch);
  w.key("logical_cpus").value(env.logical_cpus);
  w.key("cores").value(env.physical_cores);
  w.key("smt").value(env.smt);
  w.key("numa").value(env.numa_nodes);
  w.key("governor").value(env.governor);
  w.key("freq_min_khz").value(static_cast<long long>(env.freq_min_khz));
  w.key("freq_max_khz").value(static_cast<long long>(env.freq_max_khz));
  w.key("turbo").value(env.turbo);
  w.key("thp").value(env.thp);
  w.key("aslr").value(env.aslr);
  w.key("compiler").value(env.compiler);
  w.key("build").value(env.build);
  w.end_object();
}

telemetry::EnvironmentFingerprint parse_environment(
    const util::JsonValue& doc) {
  telemetry::EnvironmentFingerprint env;
  env.cpu_model = doc.at("cpu").as_string();
  env.uarch = doc.at("uarch").as_string();
  env.logical_cpus = static_cast<int>(doc.at("logical_cpus").as_int());
  env.physical_cores = static_cast<int>(doc.at("cores").as_int());
  env.smt = static_cast<int>(doc.at("smt").as_int());
  env.numa_nodes = static_cast<int>(doc.at("numa").as_int());
  env.governor = doc.at("governor").as_string();
  env.freq_min_khz = doc.at("freq_min_khz").as_int();
  env.freq_max_khz = doc.at("freq_max_khz").as_int();
  env.turbo = doc.at("turbo").as_string();
  env.thp = doc.at("thp").as_string();
  env.aslr = doc.at("aslr").as_string();
  env.compiler = doc.at("compiler").as_string();
  env.build = doc.at("build").as_string();
  return env;
}

std::string validated_stop(const util::JsonValue& v, const char* where) {
  const std::string& text = v.as_string();
  if (!core::stop_reason_from_string(text).has_value()) {
    throw std::runtime_error(std::string("export: unknown stop reason '") +
                             text + "' in " + where);
  }
  return text;
}

/// Rebuild a Configuration with parameters in search-space range order —
/// the order write_export emits, which is what makes a parse → re-export
/// cycle byte-identical (util::parse_json sorts object keys).
core::Configuration config_from(const util::JsonValue& obj,
                                const core::SearchSpace& space) {
  std::vector<core::Parameter> params;
  params.reserve(space.ranges().size());
  for (const auto& range : space.ranges()) {
    if (!obj.has(range.name())) {
      throw std::runtime_error("export: config record is missing parameter '" +
                               range.name() + "'");
    }
    params.push_back({range.name(), obj.at(range.name()).as_int()});
  }
  if (obj.as_object().size() != params.size()) {
    throw std::runtime_error(
        "export: config record has parameters outside the space definition");
  }
  return core::Configuration(std::move(params));
}

/// Reorder a configuration's parameters into search-space range order — the
/// order write_export emits.  Journal configs arrive alphabetized (the
/// reader walks a JSON object), so without this a journal-sourced document
/// would not re-export byte-identically after a parse.
core::Configuration normalized_config(const core::Configuration& config,
                                      const core::SearchSpace& space) {
  std::vector<core::Parameter> params;
  params.reserve(space.ranges().size());
  for (const auto& range : space.ranges()) {
    if (!config.has(range.name())) {
      throw std::runtime_error(
          "export: journal configuration " + config.to_string() +
          " is missing space parameter '" + range.name() + "'");
    }
    params.push_back({range.name(), config.at(range.name())});
  }
  if (config.parameters().size() != params.size()) {
    throw std::runtime_error("export: journal configuration " +
                             config.to_string() +
                             " has parameters outside the space definition");
  }
  return core::Configuration(std::move(params));
}

/// The autotuner's incumbent rule: first configuration (in visit order)
/// whose value strictly exceeds every earlier one.
std::optional<std::size_t> best_of(
    const std::vector<ExportConfigResult>& results) {
  std::optional<std::size_t> best;
  std::optional<double> incumbent;
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (!incumbent.has_value() || results[i].value > *incumbent) {
      incumbent = results[i].value;
      best = i;
    }
  }
  return best;
}

/// Mock backend replaying recorded per-invocation means: every iteration of
/// invocation j returns that invocation's recorded mean, so the evaluator's
/// Welford pass recovers the mean exactly (constant-input Welford is exact).
class ReplayBackend final : public core::Backend {
 public:
  explicit ReplayBackend(const ExportDocument& doc) : doc_(doc) {
    for (const auto& r : doc.results) by_config_.emplace(r.config, &r);
  }

  void begin_invocation(const core::Configuration& config,
                        std::uint64_t invocation_index) override {
    const auto it = by_config_.find(config);
    if (it == by_config_.end()) {
      throw std::runtime_error("replay: unknown configuration " +
                               config.to_string());
    }
    const auto& invocations = it->second->invocations;
    if (invocation_index >= invocations.size()) {
      throw std::runtime_error("replay: invocation index out of range for " +
                               config.to_string());
    }
    const ExportInvocation& inv = invocations[invocation_index];
    mean_ = inv.mean;
    iteration_s_ = inv.iterations > 0
                       ? inv.kernel_s / static_cast<double>(inv.iterations)
                       : 0.0;
  }

  core::Sample run_iteration() override {
    clock_.advance(util::Seconds{iteration_s_});
    return {mean_, util::Seconds{iteration_s_}};
  }

  void end_invocation() override {}
  [[nodiscard]] const util::Clock& clock() const override { return clock_; }
  [[nodiscard]] bool reentrant() const override { return true; }
  [[nodiscard]] std::string metric_name() const override { return doc_.metric; }

 private:
  const ExportDocument& doc_;
  std::map<core::Configuration, const ExportConfigResult*> by_config_;
  util::VirtualClock clock_;
  double mean_ = 0.0;
  double iteration_s_ = 0.0;
};

}  // namespace

ExportDocument make_export(
    const core::TuningRun& run, const core::SearchSpace& space,
    const std::string& benchmark, const std::string& metric,
    const core::TunerOptions& options,
    std::optional<telemetry::EnvironmentFingerprint> environment) {
  ExportDocument doc;
  doc.benchmark = benchmark;
  doc.metric = metric;
  doc.environment = std::move(environment);
  doc.space = space;
  doc.technique.strategy = core::to_string(options.strategy);
  doc.technique.order = core::to_string(options.order);
  doc.technique.invocations = options.invocations;
  doc.technique.iterations = options.iterations;
  doc.technique.timeout_s = options.timeout.value;
  doc.technique.confidence = options.confidence;
  doc.technique.tolerance = options.tolerance;
  doc.technique.confidence_stop = options.confidence_stop;
  doc.technique.inner_prune = options.inner_prune;
  doc.technique.outer_prune = options.outer_prune;
  doc.technique.counter_prune = options.counter_prune;
  doc.results.reserve(run.results.size());
  for (const auto& result : run.results) {
    ExportConfigResult r;
    r.config = result.config;
    r.value = result.value();
    r.pruned = result.pruned();
    r.stop = core::to_string(result.outer_stop);
    r.iterations = result.total_iterations;
    r.kernel_s = result.total_kernel_time.value;
    r.setup_s = result.total_setup_time.value;
    r.invocations.reserve(result.invocations.size());
    for (const auto& inv : result.invocations) {
      ExportInvocation e;
      e.mean = inv.mean();
      const double sd = inv.moments.stddev();
      e.stddev = std::isfinite(sd) ? sd : 0.0;
      e.iterations = inv.iterations;
      e.stop = core::to_string(inv.stop_reason);
      e.kernel_s = inv.kernel_time.value;
      e.setup_s = inv.setup_time.value;
      e.wall_s = inv.wall_time.value;
      r.invocations.push_back(std::move(e));
    }
    doc.results.push_back(std::move(r));
  }
  doc.best_index = run.best_index;
  return doc;
}

ExportDocument export_from_journal(const Journal& journal,
                                   core::SearchSpace space) {
  ExportDocument doc;
  doc.benchmark = journal.header.benchmark;
  doc.metric = journal.header.metric;
  doc.technique.strategy = journal.header.strategy;
  doc.environment = journal.provenance;
  doc.space = std::move(space);

  // Invocation records grouped per config ordinal; a ConfigDone record
  // closes the group.  Records arrive in (epoch, ordinal, invocation, rank)
  // order, so within one ordinal invocations are already ascending — but
  // interleaving strategies (racing) spread one config across epochs, so
  // membership is keyed by ordinal, not position.
  std::map<std::uint64_t, std::vector<const core::TraceEvent*>> invocations;
  for (const auto& record : journal.records) {
    const core::TraceEvent& e = record.event;
    if (e.kind == core::TraceEvent::Kind::Invocation) {
      invocations[e.config_ordinal].push_back(&e);
    } else if (e.kind == core::TraceEvent::Kind::ConfigDone) {
      ExportConfigResult r;
      r.config = normalized_config(e.config, doc.space);
      r.pruned = e.pruned;
      r.stop = core::to_string(e.reason);
      r.iterations = e.iterations;
      r.kernel_s = e.kernel_s;
      r.setup_s = e.setup_s;
      const auto group = invocations.find(e.config_ordinal);
      if (group == invocations.end() || group->second.empty()) {
        throw std::runtime_error(
            "export: journal has a config-done record with no invocation "
            "records (ordinal " +
            std::to_string(e.config_ordinal) + ")");
      }
      for (const core::TraceEvent* inv : group->second) {
        ExportInvocation x;
        x.mean = inv->mean;
        x.stddev = inv->stddev;
        x.iterations = inv->iterations;
        x.stop = core::to_string(inv->reason);
        x.kernel_s = inv->kernel_s;
        x.setup_s = inv->setup_s;
        x.wall_s = inv->wall_s;
        r.invocations.push_back(std::move(x));
      }
      invocations.erase(group);
      // The journal rounds doubles to 12 significant digits, so the
      // aggregate is recomputed from the stored invocation means — keeping
      // the document internally consistent (bit-identical replay against
      // itself).  The recorded value bounds the rounding drift.
      r.value = recompute_value(r.invocations);
      const double tolerance = 1e-6 * std::max(1.0, std::fabs(e.value));
      if (std::fabs(r.value - e.value) > tolerance) {
        throw std::runtime_error(
            "export: recomputed value " + fmt17(r.value) + " for " +
            r.config.to_string() + " disagrees with the journal's " +
            fmt17(e.value) + " beyond rounding error");
      }
      doc.results.push_back(std::move(r));
    }
  }
  doc.best_index = best_of(doc.results);
  return doc;
}

std::string write_export(const ExportDocument& doc) {
  util::JsonWriter w;
  w.begin_object();
  w.key("format").value("rooftune-export");
  w.key("version").value(doc.version);
  w.key("benchmark").value(doc.benchmark);
  w.key("metric").value(doc.metric);

  w.key("technique").begin_object();
  w.key("strategy").value(doc.technique.strategy);
  if (doc.technique.order) w.key("order").value(*doc.technique.order);
  if (doc.technique.invocations) {
    w.key("invocations").value(*doc.technique.invocations);
  }
  if (doc.technique.iterations) {
    w.key("iterations").value(*doc.technique.iterations);
  }
  if (doc.technique.timeout_s) {
    w.key("timeout_s").value_exact(*doc.technique.timeout_s);
  }
  if (doc.technique.confidence) {
    w.key("confidence").value_exact(*doc.technique.confidence);
  }
  if (doc.technique.tolerance) {
    w.key("tolerance").value_exact(*doc.technique.tolerance);
  }
  if (doc.technique.confidence_stop) {
    w.key("confidence_stop").value(*doc.technique.confidence_stop);
  }
  if (doc.technique.inner_prune) {
    w.key("inner_prune").value(*doc.technique.inner_prune);
  }
  if (doc.technique.outer_prune) {
    w.key("outer_prune").value(*doc.technique.outer_prune);
  }
  if (doc.technique.counter_prune) {
    w.key("counter_prune").value(*doc.technique.counter_prune);
  }
  w.end_object();

  w.key("environment");
  if (doc.environment.has_value()) {
    write_environment(w, *doc.environment);
  } else {
    w.null();
  }

  w.key("space").raw_value(doc.space.to_json());

  w.key("results").begin_array();
  for (const auto& r : doc.results) {
    w.begin_object();
    w.key("config");
    write_config(w, r.config);
    w.key("value").value_exact(r.value);
    w.key("pruned").value(r.pruned);
    w.key("stop").value(r.stop);
    w.key("iterations").value(r.iterations);
    w.key("kernel_s").value_exact(r.kernel_s);
    w.key("setup_s").value_exact(r.setup_s);
    w.key("invocations").begin_array();
    for (const auto& inv : r.invocations) {
      w.begin_object();
      w.key("mean").value_exact(inv.mean);
      w.key("stddev").value_exact(inv.stddev);
      w.key("iterations").value(inv.iterations);
      w.key("stop").value(inv.stop);
      w.key("kernel_s").value_exact(inv.kernel_s);
      w.key("setup_s").value_exact(inv.setup_s);
      w.key("wall_s").value_exact(inv.wall_s);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();

  w.key("best");
  if (doc.best_index.has_value()) {
    const ExportConfigResult& best = doc.results.at(*doc.best_index);
    w.begin_object();
    w.key("index").value(static_cast<unsigned long long>(*doc.best_index));
    w.key("config");
    write_config(w, best.config);
    w.key("value").value_exact(best.value);
    w.end_object();
  } else {
    w.null();
  }
  w.end_object();
  return w.str();
}

ExportDocument parse_export(const std::string& text) {
  const util::JsonValue root = [&] {
    try {
      return util::parse_json(text);
    } catch (const std::invalid_argument& e) {
      throw std::runtime_error("export: malformed JSON" +
                               util::parse_error_location(text, e.what()) +
                               ": " + e.what());
    }
  }();
  if (!root.has("format") || root.at("format").as_string() != "rooftune-export") {
    throw std::runtime_error(
        "export: not a rooftune export document (missing "
        "\"format\":\"rooftune-export\")");
  }
  const int version = static_cast<int>(root.at("version").as_int());
  if (version > kExportSchemaVersion) {
    throw std::runtime_error(
        "export: schema version " + std::to_string(version) +
        " is newer than the newest this build reads (" +
        std::to_string(kExportSchemaVersion) +
        ") — re-export with a matching rooftune or upgrade this one");
  }
  if (version < 1) {
    throw std::runtime_error("export: invalid schema version " +
                             std::to_string(version));
  }

  ExportDocument doc;
  doc.version = version;
  doc.benchmark = root.at("benchmark").as_string();
  doc.metric = root.at("metric").as_string();

  const util::JsonValue& technique = root.at("technique");
  doc.technique.strategy = technique.at("strategy").as_string();
  if (technique.has("order")) {
    doc.technique.order = technique.at("order").as_string();
  }
  if (technique.has("invocations")) {
    doc.technique.invocations =
        static_cast<std::uint64_t>(technique.at("invocations").as_int());
  }
  if (technique.has("iterations")) {
    doc.technique.iterations =
        static_cast<std::uint64_t>(technique.at("iterations").as_int());
  }
  if (technique.has("timeout_s")) {
    doc.technique.timeout_s = technique.at("timeout_s").as_number();
  }
  if (technique.has("confidence")) {
    doc.technique.confidence = technique.at("confidence").as_number();
  }
  if (technique.has("tolerance")) {
    doc.technique.tolerance = technique.at("tolerance").as_number();
  }
  if (technique.has("confidence_stop")) {
    doc.technique.confidence_stop = technique.at("confidence_stop").as_bool();
  }
  if (technique.has("inner_prune")) {
    doc.technique.inner_prune = technique.at("inner_prune").as_bool();
  }
  if (technique.has("outer_prune")) {
    doc.technique.outer_prune = technique.at("outer_prune").as_bool();
  }
  if (technique.has("counter_prune")) {
    doc.technique.counter_prune = technique.at("counter_prune").as_bool();
  }

  if (root.has("environment") && !root.at("environment").is_null()) {
    doc.environment = parse_environment(root.at("environment"));
  }

  doc.space = core::SearchSpace::from_json(root.at("space"));

  for (const util::JsonValue& rv : root.at("results").as_array()) {
    ExportConfigResult r;
    r.config = config_from(rv.at("config"), doc.space);
    r.value = rv.at("value").as_number();
    r.pruned = rv.at("pruned").as_bool();
    r.stop = validated_stop(rv.at("stop"), "a result record");
    r.iterations = static_cast<std::uint64_t>(rv.at("iterations").as_int());
    r.kernel_s = rv.at("kernel_s").as_number();
    r.setup_s = rv.at("setup_s").as_number();
    for (const util::JsonValue& iv : rv.at("invocations").as_array()) {
      ExportInvocation inv;
      inv.mean = iv.at("mean").as_number();
      inv.stddev = iv.at("stddev").as_number();
      inv.iterations = static_cast<std::uint64_t>(iv.at("iterations").as_int());
      inv.stop = validated_stop(iv.at("stop"), "an invocation record");
      inv.kernel_s = iv.at("kernel_s").as_number();
      inv.setup_s = iv.at("setup_s").as_number();
      inv.wall_s = iv.at("wall_s").as_number();
      r.invocations.push_back(std::move(inv));
    }
    doc.results.push_back(std::move(r));
  }

  if (root.has("best") && !root.at("best").is_null()) {
    const util::JsonValue& best = root.at("best");
    const auto index = static_cast<std::size_t>(best.at("index").as_int());
    if (index >= doc.results.size()) {
      throw std::runtime_error("export: best.index " + std::to_string(index) +
                               " is out of range");
    }
    if (config_from(best.at("config"), doc.space) != doc.results[index].config) {
      throw std::runtime_error(
          "export: best.config does not match results[best.index].config");
    }
    doc.best_index = index;
  }
  return doc;
}

void write_export_file(const std::string& path, const ExportDocument& doc) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("export: cannot open '" + path + "' for writing");
  }
  out << write_export(doc) << '\n';
  if (!out) throw std::runtime_error("export: write to '" + path + "' failed");
}

ExportDocument parse_export_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("export: cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_export(buffer.str());
}

ReplayOutcome replay_export(const ExportDocument& doc) {
  ReplayOutcome outcome;
  ReplayBackend backend(doc);
  std::optional<double> incumbent;
  std::optional<std::size_t> best;

  for (std::size_t i = 0; i < doc.results.size(); ++i) {
    const ExportConfigResult& r = doc.results[i];
    core::ConfigResult replayed;
    replayed.config = r.config;
    bool usable = true;
    for (std::size_t j = 0; j < r.invocations.size(); ++j) {
      const ExportInvocation& inv = r.invocations[j];
      if (inv.iterations == 0) {
        usable = false;
        if (outcome.first_mismatch.empty()) {
          outcome.first_mismatch = r.config.to_string() + " invocation " +
                                   std::to_string(j) +
                                   " records zero iterations";
        }
        break;
      }
      core::TunerOptions options;  // defaults: no CI stop, no pruning
      options.invocations = r.invocations.size();
      options.iterations = inv.iterations;
      options.timeout = util::Seconds{1e18};
      core::InvocationResult result = core::run_invocation(
          backend, r.config, j, options, /*incumbent=*/std::nullopt);
      // The recorded stop reason decides the pruned-invocation exclusion in
      // ConfigResult::value(); the replay itself always stops at MaxCount.
      result.stop_reason = *core::stop_reason_from_string(inv.stop);
      replayed.outer_moments.add(result.mean());
      replayed.invocations.push_back(std::move(result));
    }
    if (!usable) {
      ++outcome.value_mismatches;
      continue;
    }
    ++outcome.configs;
    const double value = replayed.value();
    if (value != r.value) {
      ++outcome.value_mismatches;
      if (outcome.first_mismatch.empty()) {
        outcome.first_mismatch = r.config.to_string() + ": replayed " +
                                 fmt17(value) + " != recorded " +
                                 fmt17(r.value);
      }
    }
    if (!incumbent.has_value() || value > *incumbent) {
      incumbent = value;
      best = i;
    }
  }

  outcome.replayed_best_index = best;
  outcome.replayed_best_value = incumbent.value_or(0.0);
  outcome.best_index_matches = best == doc.best_index;
  if (best.has_value() && doc.best_index.has_value()) {
    outcome.best_value_matches =
        outcome.replayed_best_value == doc.results[*doc.best_index].value;
  } else {
    outcome.best_value_matches = best == doc.best_index;
  }
  if (outcome.first_mismatch.empty() && !outcome.best_index_matches) {
    outcome.first_mismatch =
        "replayed optimum index " +
        (best ? std::to_string(*best) : std::string("none")) +
        " != recorded " +
        (doc.best_index ? std::to_string(*doc.best_index)
                        : std::string("none"));
  }
  return outcome;
}

}  // namespace rooftune::trace
