#pragma once
// Read side of the trace journal: parses JSONL back into TraceEvents.
//
// The reader is strict where it matters for analysis correctness — unknown
// record types, unknown stop reasons, and malformed sort keys are errors,
// not silently misfiled records — and lenient about fields it does not
// consume, so a newer writer with additional fields stays readable.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/sched_stats.hpp"
#include "core/trace_events.hpp"
#include "telemetry/environment.hpp"
#include "trace/perf_counters.hpp"

namespace rooftune::trace {

/// Parsed journal header (the "run" line).
struct JournalHeader {
  int version = 0;
  std::string benchmark;
  std::string metric;
  std::string strategy;
  /// Counter-degradation reason recorded by the writer ("" when counters
  /// were healthy or not requested) — explains missing measured-OI columns.
  std::string perf_degraded;
};

/// Parsed journal footer (the "summary" line).
struct JournalSummary {
  std::uint64_t configs = 0;
  std::uint64_t pruned = 0;
  std::uint64_t invocations = 0;
  std::uint64_t iterations = 0;
  std::optional<double> best;
};

/// One event line plus the counter sample, when the journal carried one.
struct JournalRecord {
  core::TraceEvent event;
  std::optional<PerfSample> perf;
};

struct Journal {
  JournalHeader header;
  /// Machine-environment provenance when the writer recorded one (journals
  /// predating the provenance record simply have none).
  std::optional<telemetry::EnvironmentFingerprint> provenance;
  std::vector<JournalRecord> records;
  std::optional<JournalSummary> summary;
  /// Parallel-scheduler accounting ({"t":"scheduler"}), present only when
  /// the run collected it (--sched-stats).  Wall-clock numbers: the one
  /// record exempt from the journal's bit-identity guarantee.
  std::optional<core::SchedulerStats> scheduler;
};

/// Parse a whole journal from JSONL text.  Throws std::runtime_error with
/// the offending line number on malformed input, unknown record types, or
/// stop-reason strings that do not round-trip through
/// core::stop_reason_from_string.
[[nodiscard]] Journal read_journal(const std::string& text);

/// read_journal over a file's contents.
[[nodiscard]] Journal read_journal_file(const std::string& path);

}  // namespace rooftune::trace
