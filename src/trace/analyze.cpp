#include "trace/analyze.hpp"

#include <algorithm>
#include <cmath>

#include "util/strings.hpp"

namespace rooftune::trace {

namespace {

struct IntensityAccumulator {
  double flops = 0.0;
  double bytes = 0.0;
  std::uint64_t llc_misses = 0;
  bool have_perf = false;
};

}  // namespace

TraceAnalysis analyze(const Journal& journal) {
  TraceAnalysis analysis;
  std::map<std::uint64_t, ConfigTimeline> configs;
  std::map<std::uint64_t, IntensityAccumulator> intensity;
  std::uint64_t seed_errors = 0;
  double seed_error_sum = 0.0;

  using Kind = core::TraceEvent::Kind;
  for (const JournalRecord& record : journal.records) {
    const core::TraceEvent& e = record.event;
    switch (e.kind) {
      case Kind::Invocation: {
        ConfigTimeline& config = configs[e.config_ordinal];
        config.ordinal = e.config_ordinal;
        if (config.config.empty()) config.config = e.config.to_string();
        ++config.invocations;
        config.iterations += e.iterations;
        config.kernel_s += e.kernel_s;
        config.setup_s += e.setup_s;

        StopAccounting& accounting =
            analysis.by_reason[core::to_string(e.reason)];
        ++accounting.decisions;
        accounting.iterations += e.iterations;
        ++analysis.total_invocations;
        analysis.total_iterations += e.iterations;
        analysis.max_invocation_iterations =
            std::max(analysis.max_invocation_iterations, e.iterations);

        IntensityAccumulator& acc = intensity[e.config_ordinal];
        if (e.flops.has_value()) acc.flops += *e.flops;
        if (e.bytes.has_value()) acc.bytes += *e.bytes;
        if (record.perf.has_value() && record.perf->valid) {
          acc.llc_misses += record.perf->llc_misses;
          acc.have_perf = true;
          if (record.perf->scaled) ++analysis.scaled_perf_invocations;
        }
        break;
      }
      case Kind::ConfigDone: {
        ConfigTimeline& config = configs[e.config_ordinal];
        config.ordinal = e.config_ordinal;
        if (config.config.empty()) config.config = e.config.to_string();
        config.stop_reason = core::to_string(e.reason);
        config.value = e.value;
        if (config.outcome.empty()) {
          config.outcome = e.pruned ? "pruned" : "finished";
        }
        break;
      }
      case Kind::Elimination: {
        ConfigTimeline& config = configs[e.config_ordinal];
        config.ordinal = e.config_ordinal;
        if (config.config.empty()) config.config = e.config.to_string();
        config.eliminated_round = e.epoch;
        config.elimination_basis = e.basis;
        config.outcome = "eliminated";
        break;
      }
      case Kind::Round:
        analysis.rounds.push_back(e);
        break;
      case Kind::SurrogateFit:
        if (!analysis.surrogate.has_value()) analysis.surrogate.emplace();
        if (e.config.parameters().empty()) {
          analysis.surrogate->samples = e.count;
          analysis.surrogate->r2 = e.r2;
          analysis.surrogate->log_scale = e.model_log_scale;
        } else if (e.predicted.has_value()) {
          ++seed_errors;
          seed_error_sum += std::abs(*e.predicted - e.value) /
                            std::max(std::abs(e.value), 1e-12);
        }
        break;
      case Kind::PruneBatch:
        if (!analysis.surrogate.has_value()) analysis.surrogate.emplace();
        if (e.config.parameters().empty()) {
          analysis.surrogate->scanned = e.scanned;
          analysis.surrogate->kept = e.kept;
        } else {
          analysis.surrogate->candidates.emplace_back(
              e.config.to_string(), e.predicted.value_or(0.0));
        }
        break;
      case Kind::CounterPrune: {
        ConfigTimeline& config = configs[e.config_ordinal];
        config.ordinal = e.config_ordinal;
        if (config.config.empty()) config.config = e.config.to_string();
        config.outcome = "eliminated";
        config.elimination_basis = "counter-bound";
        // Rank 5 records come from racing's round conclusion and rank 1
        // records from the pre-invocation skip (both epoch = the round);
        // rank 3 records come from the per-config invocation loop, where
        // the epoch is not a round number.
        if (e.rank == 5 || e.rank == 1) config.eliminated_round = e.epoch;

        if (!analysis.counter_prune.has_value()) {
          analysis.counter_prune.emplace();
        }
        CounterPruneAnalysis& cp = *analysis.counter_prune;
        ++cp.pruned;
        if (e.count == 0) ++cp.skipped;
        ++cp.by_class[e.basis];
        if (e.widened) ++cp.widened;
        cp.margin = e.margin;
        cp.entries.push_back(
            {e.config.to_string(), e.basis, e.bound, e.oi, e.incumbent});
        break;
      }
      case Kind::IncumbentUpdate:
      case Kind::StopDecision:
      case Kind::Resume:
        break;
    }
  }
  if (analysis.surrogate.has_value() && seed_errors > 0) {
    analysis.surrogate->mean_seed_error =
        seed_error_sum / static_cast<double>(seed_errors);
  }

  for (auto& [ordinal, config] : configs) {
    const IntensityAccumulator& acc = intensity[ordinal];
    if (acc.flops > 0.0 && acc.bytes > 0.0) {
      config.analytic_intensity = acc.flops / acc.bytes;
    }
    if (acc.flops > 0.0 && acc.have_perf && acc.llc_misses > 0) {
      // LLC misses x 64-byte lines = measured DRAM traffic.
      config.measured_intensity =
          acc.flops / (64.0 * static_cast<double>(acc.llc_misses));
    }
    analysis.configs.push_back(std::move(config));
  }

  // Savings against the fixed-iteration schedule this journal implies:
  // every invocation running to the largest observed iteration count.
  analysis.saved_iterations =
      analysis.max_invocation_iterations * analysis.total_invocations -
      analysis.total_iterations;

  if (journal.summary.has_value()) {
    const JournalSummary& summary = *journal.summary;
    const auto check = [&](const char* what, std::uint64_t recorded,
                           std::uint64_t derived) {
      if (recorded != derived) {
        analysis.inconsistencies.push_back(util::format(
            "%s: summary records %llu but records sum to %llu", what,
            static_cast<unsigned long long>(recorded),
            static_cast<unsigned long long>(derived)));
      }
    };
    check("iterations", summary.iterations, analysis.total_iterations);
    check("invocations", summary.invocations, analysis.total_invocations);
    check("configs", summary.configs, analysis.configs.size());
    std::uint64_t pruned = 0;
    for (const auto& config : analysis.configs) {
      if (config.outcome != "finished") ++pruned;
    }
    check("pruned", summary.pruned, pruned);
  }
  return analysis;
}

namespace {

std::string intensity_cell(const std::optional<double>& value) {
  return value.has_value() ? util::format("%10.4f", *value)
                           : std::string("         -");
}

}  // namespace

std::string render_report(const Journal& journal,
                          const TraceAnalysis& analysis) {
  std::string out;
  out += util::format("trace: %s (%s), strategy %s, schema v%d\n",
                      journal.header.benchmark.c_str(),
                      journal.header.metric.c_str(),
                      journal.header.strategy.c_str(), journal.header.version);
  if (!journal.header.perf_degraded.empty()) {
    out += util::format(
        "note: perf counters degraded (%s) — OI-meas column unavailable\n",
        journal.header.perf_degraded.c_str());
  }
  if (journal.provenance.has_value()) {
    const telemetry::EnvironmentFingerprint& env = *journal.provenance;
    out += util::format("env: %s, %d cores x %d SMT, %d NUMA node%s\n",
                        env.cpu_model.c_str(), env.physical_cores, env.smt,
                        env.numa_nodes, env.numa_nodes == 1 ? "" : "s");
    out += util::format(
        "env: governor %s, turbo %s, thp %s, aslr %s\n", env.governor.c_str(),
        env.turbo.c_str(), env.thp.c_str(), env.aslr.c_str());
    out += util::format("env: %s, build %s\n", env.compiler.c_str(),
                        env.build.c_str());
  }
  if (journal.summary.has_value()) {
    const JournalSummary& s = *journal.summary;
    out += util::format(
        "run: %llu configs (%llu pruned), %llu invocations, %llu iterations",
        static_cast<unsigned long long>(s.configs),
        static_cast<unsigned long long>(s.pruned),
        static_cast<unsigned long long>(s.invocations),
        static_cast<unsigned long long>(s.iterations));
    if (s.best.has_value()) {
      out += util::format(", best %.2f %s", *s.best,
                          journal.header.metric.c_str());
    }
    out += '\n';
  }
  out += '\n';

  out += "configuration timeline\n";
  out += util::format("  %-4s %-28s %-10s %-14s %5s %8s %12s %10s %10s\n",
                      "ord", "config", "outcome", "stop", "inv", "iters",
                      "value", "OI-calc", "OI-meas");
  for (const auto& config : analysis.configs) {
    std::string outcome = config.outcome;
    if (config.eliminated_round.has_value()) {
      outcome += util::format(
          "@r%llu", static_cast<unsigned long long>(*config.eliminated_round));
    }
    out += util::format(
        "  %-4llu %-28s %-10s %-14s %5llu %8llu %12.2f %s %s\n",
        static_cast<unsigned long long>(config.ordinal),
        config.config.c_str(), outcome.c_str(), config.stop_reason.c_str(),
        static_cast<unsigned long long>(config.invocations),
        static_cast<unsigned long long>(config.iterations), config.value,
        intensity_cell(config.analytic_intensity).c_str(),
        intensity_cell(config.measured_intensity).c_str());
  }
  out += '\n';

  if (analysis.surrogate.has_value()) {
    const SurrogateAnalysis& s = *analysis.surrogate;
    out += "surrogate model\n";
    out += util::format("  fit: %llu samples, R^2 %.4f (%s scale)",
                        static_cast<unsigned long long>(s.samples), s.r2,
                        s.log_scale ? "log" : "raw");
    if (s.mean_seed_error.has_value()) {
      out += util::format(", mean seed error %.1f%%", 100.0 * *s.mean_seed_error);
    }
    out += '\n';
    const std::uint64_t pruned = s.scanned - s.kept;
    out += util::format(
        "  prune: %llu configurations scanned, %llu kept, %llu pruned "
        "(%.1f%%)\n",
        static_cast<unsigned long long>(s.scanned),
        static_cast<unsigned long long>(s.kept),
        static_cast<unsigned long long>(pruned),
        s.scanned > 0
            ? 100.0 * static_cast<double>(pruned) / static_cast<double>(s.scanned)
            : 0.0);
    if (!s.candidates.empty()) {
      out += util::format("  %-28s %12s\n", "candidate", "predicted");
      for (const auto& [config, predicted] : s.candidates) {
        out += util::format("  %-28s %12.2f\n", config.c_str(), predicted);
      }
    }
    out += '\n';
  }

  if (analysis.counter_prune.has_value()) {
    const CounterPruneAnalysis& cp = *analysis.counter_prune;
    out += util::format("bottleneck accounting (counter-prune, margin %.2f)\n",
                        cp.margin);
    if (cp.skipped > 0) {
      out += util::format(
          "  %llu of %llu pruned before their first invocation "
          "(calibrated analytic bound)\n",
          static_cast<unsigned long long>(cp.skipped),
          static_cast<unsigned long long>(cp.pruned));
    }
    for (const auto& [cls, count] : cp.by_class) {
      out += util::format("  %-10s %6llu pruned\n", cls.c_str(),
                          static_cast<unsigned long long>(count));
    }
    if (cp.widened > 0) {
      out += util::format(
          "  %llu bound%s multiplex-widened (scaled counters)\n",
          static_cast<unsigned long long>(cp.widened),
          cp.widened == 1 ? "" : "s");
    }
    out += util::format("  %-28s %-10s %12s %10s %12s\n", "config", "class",
                        "bound", "OI-meas", "incumbent");
    for (const auto& entry : cp.entries) {
      out += util::format("  %-28s %-10s %12.2f %s %s\n", entry.config.c_str(),
                          entry.cls.c_str(), entry.bound,
                          intensity_cell(entry.oi).c_str(),
                          entry.incumbent.has_value()
                              ? util::format("%12.2f", *entry.incumbent).c_str()
                              : "           -");
    }
    out += '\n';
  }

  if (!analysis.rounds.empty()) {
    out += "racing rounds\n";
    for (const auto& round : analysis.rounds) {
      out += util::format(
          "  round %-3llu survivors %llu -> %llu (%llu eliminated, %llu "
          "finished)\n",
          static_cast<unsigned long long>(round.epoch),
          static_cast<unsigned long long>(round.survivors_before),
          static_cast<unsigned long long>(round.survivors_after),
          static_cast<unsigned long long>(round.eliminated),
          static_cast<unsigned long long>(round.finished));
    }
    out += '\n';
  }

  if (journal.scheduler.has_value()) {
    const core::SchedulerStats& sched = *journal.scheduler;
    out += util::format("scheduler (%s, %llu workers, lookahead %llu)\n",
                        sched.mode.c_str(),
                        static_cast<unsigned long long>(sched.workers),
                        static_cast<unsigned long long>(sched.lookahead));
    out += util::format(
        "  %llu tasks, %llu steals, %llu parks, idle fraction %.3f\n",
        static_cast<unsigned long long>(sched.tasks),
        static_cast<unsigned long long>(sched.steals),
        static_cast<unsigned long long>(sched.parks), sched.idle_fraction());
    out += util::format(
        "  span %.3f ms, busy %.3f ms, commit wait %.3f ms\n",
        static_cast<double>(sched.span_ns) * 1e-6,
        static_cast<double>(sched.busy_ns) * 1e-6,
        static_cast<double>(sched.commit_wait_ns) * 1e-6);
    out += '\n';
  }

  out += "stop-condition accounting (iteration level)\n";
  for (const auto& [reason, accounting] : analysis.by_reason) {
    out += util::format("  %-14s %6llu invocations %10llu iterations\n",
                        reason.c_str(),
                        static_cast<unsigned long long>(accounting.decisions),
                        static_cast<unsigned long long>(accounting.iterations));
  }
  out += util::format("  %-14s %6llu invocations %10llu iterations\n", "total",
                      static_cast<unsigned long long>(analysis.total_invocations),
                      static_cast<unsigned long long>(analysis.total_iterations));

  const std::uint64_t budget =
      analysis.max_invocation_iterations * analysis.total_invocations;
  if (budget > 0) {
    out += util::format(
        "\nprune savings vs fixed %llu-iteration invocations: %llu of %llu "
        "iterations not run (%.1f%%)\n",
        static_cast<unsigned long long>(analysis.max_invocation_iterations),
        static_cast<unsigned long long>(analysis.saved_iterations),
        static_cast<unsigned long long>(budget),
        100.0 * static_cast<double>(analysis.saved_iterations) /
            static_cast<double>(budget));
  }

  if (analysis.scaled_perf_invocations > 0) {
    out += util::format(
        "\nWARNING: counters were multiplexed in %llu invocation%s — counts "
        "are scaled estimates (value x enabled/running), not exact; close "
        "other perf users or drop counters to avoid multiplexing\n",
        static_cast<unsigned long long>(analysis.scaled_perf_invocations),
        analysis.scaled_perf_invocations == 1 ? "" : "s");
  }

  if (!analysis.inconsistencies.empty()) {
    out += "\nWARNING: journal is internally inconsistent\n";
    for (const auto& line : analysis.inconsistencies) {
      out += "  " + line + '\n';
    }
  }
  return out;
}

const char* schema_reference() {
  return R"(journal schema (JSONL, one record per line; docs/observability.md)

Every event carries the logical sort key {"epoch","ord","inv","rank"} —
no timestamps, so simulator journals are bit-identical run-to-run and
across worker counts.  Record types ("t" field):

  provenance  optional first line, before even the run header: machine
              environment the run executed under ("cpu","uarch",
              "logical_cpus","cores","smt","numa","governor",
              "freq_min_khz","freq_max_khz","turbo","thp","aslr",
              "compiler","build") and its stable hash "env" — the value
              checkpoints record to refuse cross-environment resume
  run         header: {"v":1,"benchmark","metric","strategy"}; carries
              "perf_degraded" (the sampler's unavailability reason, once
              per run) when counters were requested but could not be
              opened — the reason OI-meas columns are missing
  incumbent   a value became the schedule's best ("value"; "cfg" when a
              specific configuration produced it; rank 0 = frozen at a
              racing/wave block boundary, rank 7 = after a config finished)
  stop        a stop condition ended a loop: "level" iteration|invocation,
              "reason" (max-time|max-count|converged|pruned-by-best|
              counter-bound|none),
              "count","mean","ci":[lo,hi]|null at that instant,
              "kernel_s" consumed (iteration level), "incumbent" in effect
  invocation  one completed invocation span: "iterations","kernel_s",
              "setup_s","wall_s","det" (backend-accounted, deterministic),
              "mean","stddev","rising", analytic "flops"/"bytes", optional
              "perf" {cycles,instructions,llc_misses; plus "scaled" with
              "time_enabled_ns"/"time_running_ns" when the PMU multiplexed
              the group and the counts are extrapolated} and "arena" delta
  config-done a configuration left the schedule: final "reason","value",
              "pruned", lifetime "iterations","kernel_s","setup_s"
  elimination racing removed a survivor: "basis" iteration-ci|
              invocation-ci|inner-prune, its "mean"/"ci", the "leader"
              ordinal and "leader_ci" it lost to
  round       racing round summary: "before","after","eliminated","finished"
  resume      a checkpointed session restored "restored" configurations
  surrogate-fit
              surrogate model trained on the seed batch.  The summary
              record (no "cfg") carries "samples","r2","scale" (log|raw);
              per-seed records carry "cfg","predicted","measured" — the
              model's own training-set reproduction, pinned in the journal
  prune-batch model-guided pruning of the unvisited space.  The summary
              record (no "cfg") carries "scanned","kept","pruned"; one
              record per kept candidate carries "cfg","predicted"
  counter-prune
              the bottleneck classifier stopped a configuration early:
              "cfg", "class" (compute|dram|latency), the class roofline
              "bound" in metric units, the policy "margin", measured "oi"
              (FLOP/byte, null for compute-bound), "widened" (bound
              inflated by the multiplex scaling factor), the "incumbent"
              it could not beat, and the invocation "count"/"mean" so far
  scheduler   parallel-pipeline accounting, written just before the summary
              and only on request (--sched-stats): "mode" (wave|pipeline|
              inline), "workers","lookahead","tasks","steals","parks",
              "idle_ns","busy_ns","commit_wait_ns","span_ns",
              "idle_fraction".  The one record carrying wall-clock numbers —
              journals that include it are exempt from the bit-identity
              guarantee
  summary     footer totals: "configs","pruned","invocations","iterations",
              "best" — rooftune trace cross-checks these against the
              per-record sums and flags any mismatch

Telemetry never enters the journal: --telemetry writes a sidecar
(<trace>.telemetry.jsonl) with per-invocation "span" records (frequency,
temperature, RAPL energy; deterministic on simulated backends), wall-clock
"host" samples from the background sampler (native runs only), and a
"sampler" footer — so the journal's bytes are identical with or without
telemetry attached.
)";
}

}  // namespace rooftune::trace
