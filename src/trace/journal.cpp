#include "trace/journal.hpp"

#include <algorithm>
#include <fstream>
#include <stdexcept>
#include <unordered_map>

#include "util/json.hpp"
#include "util/profiler.hpp"

namespace rooftune::trace {

namespace {

std::uint64_t next_journal_id() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

const char* kind_tag(core::TraceEvent::Kind kind) {
  using Kind = core::TraceEvent::Kind;
  switch (kind) {
    case Kind::IncumbentUpdate: return "incumbent";
    case Kind::StopDecision: return "stop";
    case Kind::Invocation: return "invocation";
    case Kind::ConfigDone: return "config-done";
    case Kind::Elimination: return "elimination";
    case Kind::Round: return "round";
    case Kind::Resume: return "resume";
    case Kind::SurrogateFit: return "surrogate-fit";
    case Kind::PruneBatch: return "prune-batch";
    case Kind::CounterPrune: return "counter-prune";
  }
  return "?";
}

void write_sort_key(util::JsonWriter& w, const core::TraceEvent& e) {
  w.key("epoch").value(e.epoch);
  w.key("ord").value(e.config_ordinal);
  w.key("inv").value(e.invocation);
  w.key("rank").value(e.rank);
}

void write_config(util::JsonWriter& w, const core::Configuration& config) {
  if (config.parameters().empty()) return;
  w.key("cfg").begin_object();
  for (const auto& p : config.parameters()) {
    w.key(p.name).value(static_cast<long long>(p.value));
  }
  w.end_object();
}

void write_ci(util::JsonWriter& w, const char* key, bool have, double lower,
              double upper) {
  if (have) {
    w.key(key).begin_array().value(lower).value(upper).end_array();
  } else {
    w.key(key).null();
  }
}

void write_optional(util::JsonWriter& w, const char* key,
                    const std::optional<double>& value) {
  if (value.has_value()) {
    w.key(key).value(*value);
  } else {
    w.key(key).null();
  }
}

}  // namespace

TraceJournal::TraceJournal(JournalOptions options)
    : options_(std::move(options)), id_(next_journal_id()) {}

TraceJournal::~TraceJournal() = default;

void TraceJournal::begin_run(RunHeader header) {
  const std::scoped_lock lock(mutex_);
  header_ = std::move(header);
}

void TraceJournal::finish_run(RunSummary summary) {
  const std::scoped_lock lock(mutex_);
  summary_ = summary;
}

std::unordered_map<std::uint64_t, TraceJournal::WorkerBuffer*>&
TraceJournal::thread_registry() {
  // Keyed by journal id, not address: ids are never reused, so a stale
  // entry from a destroyed journal can never alias a live one.  Entries
  // for dead journals linger until the thread exits — a few pointers.
  thread_local std::unordered_map<std::uint64_t, WorkerBuffer*> registry;
  return registry;
}

TraceJournal::WorkerBuffer& TraceJournal::local_buffer() {
  auto& registry = thread_registry();
  if (const auto it = registry.find(id_); it != registry.end()) {
    return *it->second;
  }
  const std::scoped_lock lock(mutex_);
  buffers_.push_back(std::make_unique<WorkerBuffer>());
  WorkerBuffer& buffer = *buffers_.back();
  if (options_.perf_counters) {
    buffer.sampler = std::make_unique<PerfCounterSampler>();
    if (!buffer.sampler->available() && degraded_reason_.empty()) {
      // Run-level aggregation (first reason wins): the CLI notice and the
      // run header's "perf_degraded" key come from here, once per run, no
      // matter how many workers open degraded samplers.
      degraded_reason_ = buffer.sampler->unavailable_reason();
    }
  }
  if (options_.span_probe) {
    buffer.probe = std::make_unique<telemetry::SpanProbe>();
  }
  registry.emplace(id_, &buffer);
  return buffer;
}

std::optional<core::CounterSample> TraceJournal::kernel_phase_counters() const {
  const auto& registry = thread_registry();
  const auto it = registry.find(id_);
  if (it == registry.end()) return std::nullopt;
  const PerfSample& perf = it->second->pending;
  if (!perf.valid) return std::nullopt;
  core::CounterSample sample;
  sample.cycles = perf.cycles;
  sample.instructions = perf.instructions;
  sample.llc_misses = perf.llc_misses;
  sample.time_enabled_ns = perf.time_enabled_ns;
  sample.time_running_ns = perf.time_running_ns;
  sample.scaled = perf.scaled;
  sample.valid = true;
  return sample;
}

void TraceJournal::emit(const core::TraceEvent& event) {
  WorkerBuffer& buffer = local_buffer();
  Record record;
  record.event = event;
  record.seq = seq_.fetch_add(1, std::memory_order_relaxed);
  if (event.kind == core::TraceEvent::Kind::Invocation) {
    if (buffer.pending.valid) {
      // The counters read at the last kernel_phase_end belong to the span
      // being recorded now (the evaluator emits the span right after the
      // phase closes, on the same thread).
      record.perf = buffer.pending;
      buffer.pending = PerfSample{};
    }
    if (options_.sidecar != nullptr) {
      // Telemetry routes to the sidecar and never into the journal body;
      // backend-modelled spans win over the host span probe (the sim model
      // is deterministic, the probe is wall-clock).
      if (event.telemetry.has_value() && event.telemetry->valid) {
        options_.sidecar->record_span(event);
      } else if (buffer.pending_telemetry.valid) {
        core::TraceEvent probed = event;
        probed.telemetry = buffer.pending_telemetry;
        options_.sidecar->record_span(probed);
      }
    }
    buffer.pending_telemetry = core::TelemetrySpan{};
  }
  buffer.records.push_back(std::move(record));
}

void TraceJournal::kernel_phase_begin() {
  WorkerBuffer& buffer = local_buffer();
  if (buffer.sampler) buffer.sampler->begin();
  if (buffer.probe) buffer.probe->begin();
}

void TraceJournal::kernel_phase_end() {
  WorkerBuffer& buffer = local_buffer();
  if (buffer.sampler) buffer.pending = buffer.sampler->end();
  if (buffer.probe) buffer.pending_telemetry = buffer.probe->end();
}

std::size_t TraceJournal::event_count() const {
  const std::scoped_lock lock(mutex_);
  std::size_t n = 0;
  for (const auto& buffer : buffers_) n += buffer->records.size();
  return n;
}

const char* TraceJournal::perf_unavailable_reason() {
  if (!options_.perf_counters) return "";
  {
    const std::scoped_lock lock(mutex_);
    if (!buffers_.empty()) return degraded_reason_.c_str();
  }
  // No worker ever sampled (a run with zero invocations): probe this
  // thread once so the notice still reflects the environment.
  local_buffer();
  const std::scoped_lock lock(mutex_);
  return degraded_reason_.c_str();
}

std::string TraceJournal::str() const {
  std::vector<const Record*> merged;
  std::string degraded;
  {
    const std::scoped_lock lock(mutex_);
    for (const auto& buffer : buffers_) {
      for (const auto& record : buffer->records) merged.push_back(&record);
    }
    degraded = degraded_reason_;
  }
  // Logical order first; emission order breaks the (rare) ties — e.g. a
  // Resume record and the first block's frozen incumbent share a cell, and
  // both are emitted by the coordinating thread in a fixed order.
  std::sort(merged.begin(), merged.end(), [](const Record* a, const Record* b) {
    const auto key = [](const core::TraceEvent& e) {
      return std::make_tuple(e.epoch, e.config_ordinal, e.invocation, e.rank);
    };
    const auto ka = key(a->event);
    const auto kb = key(b->event);
    if (ka != kb) return ka < kb;
    return a->seq < b->seq;
  });

  std::string out;
  const auto append_line = [&out](const util::JsonWriter& w) {
    out += w.str();
    out += '\n';
  };

  if (options_.provenance.has_value()) {
    // Environment provenance precedes even the run header: whatever else a
    // reader does with a journal, the machine state it was recorded under
    // comes first.
    out += options_.provenance->provenance_json();
    out += '\n';
  }

  {
    util::JsonWriter w;
    w.begin_object();
    w.key("t").value("run");
    w.key("v").value(kJournalSchemaVersion);  // docs/observability.md
    w.key("benchmark").value(header_ ? header_->benchmark : "");
    w.key("metric").value(header_ ? header_->metric : "");
    w.key("strategy").value(header_ ? header_->strategy : "");
    // Written only when a sampler degraded, so journals from healthy runs
    // keep their historical bytes.
    if (!degraded.empty()) w.key("perf_degraded").value(degraded);
    w.end_object();
    append_line(w);
  }

  using Kind = core::TraceEvent::Kind;
  for (const Record* record : merged) {
    const core::TraceEvent& e = record->event;
    util::JsonWriter w;
    w.begin_object();
    w.key("t").value(kind_tag(e.kind));
    write_sort_key(w, e);
    switch (e.kind) {
      case Kind::IncumbentUpdate:
        write_config(w, e.config);
        w.key("value").value(e.value);
        break;
      case Kind::StopDecision:
        write_config(w, e.config);
        w.key("level").value(e.outer_level ? "invocation" : "iteration");
        w.key("reason").value(core::to_string(e.reason));
        w.key("count").value(e.count);
        w.key("mean").value(e.mean);
        write_ci(w, "ci", e.have_ci, e.ci_lower, e.ci_upper);
        if (!e.outer_level) w.key("kernel_s").value(e.accumulated_s);
        write_optional(w, "incumbent", e.incumbent);
        break;
      case Kind::Invocation:
        write_config(w, e.config);
        w.key("reason").value(core::to_string(e.reason));
        w.key("iterations").value(e.iterations);
        w.key("kernel_s").value(e.kernel_s);
        w.key("setup_s").value(e.setup_s);
        w.key("wall_s").value(e.wall_s);
        w.key("det").value(e.deterministic_timing);
        w.key("mean").value(e.mean);
        w.key("stddev").value(e.stddev);
        w.key("rising").value(e.trend_rising);
        if (e.flops.has_value()) w.key("flops").value(*e.flops);
        if (e.bytes.has_value()) w.key("bytes").value(*e.bytes);
        if (record->perf.valid || (e.counters.has_value() && e.counters->valid)) {
          // Sampled counters (attached at kernel_phase_end) win; otherwise
          // the event's own counters — the sim backend's synthetic model —
          // serialize through the same key layout, so the reader and the
          // analyzer's measured-OI column are backend-agnostic.
          const bool sampled = record->perf.valid;
          const auto cycles = sampled ? record->perf.cycles : e.counters->cycles;
          const auto instructions =
              sampled ? record->perf.instructions : e.counters->instructions;
          const auto llc_misses =
              sampled ? record->perf.llc_misses : e.counters->llc_misses;
          const bool scaled = sampled ? record->perf.scaled : e.counters->scaled;
          const auto enabled_ns =
              sampled ? record->perf.time_enabled_ns : e.counters->time_enabled_ns;
          const auto running_ns =
              sampled ? record->perf.time_running_ns : e.counters->time_running_ns;
          w.key("perf").begin_object();
          w.key("cycles").value(cycles);
          w.key("instructions").value(instructions);
          w.key("llc_misses").value(llc_misses);
          // Counts extrapolated from a partial PMU slice (multiplexing):
          // record the slice so the analyzer can warn and quantify.
          if (scaled) {
            w.key("scaled").value(true);
            w.key("time_enabled_ns").value(enabled_ns);
            w.key("time_running_ns").value(running_ns);
          }
          w.end_object();
        }
        if (e.arena_delta.has_value()) {
          const util::ArenaStats& a = *e.arena_delta;
          w.key("arena").begin_object();
          w.key("leases").value(a.leases);
          w.key("slab_hits").value(a.slab_hits);
          w.key("slab_misses").value(a.slab_misses);
          w.key("allocations").value(a.allocations);
          w.key("bytes_leased").value(a.bytes_leased);
          w.key("bytes_reserved").value(a.bytes_reserved);
          w.key("pages_touched").value(a.pages_touched);
          w.end_object();
        }
        break;
      case Kind::ConfigDone:
        write_config(w, e.config);
        w.key("reason").value(core::to_string(e.reason));
        w.key("value").value(e.value);
        w.key("pruned").value(e.pruned);
        w.key("iterations").value(e.iterations);
        w.key("kernel_s").value(e.kernel_s);
        w.key("setup_s").value(e.setup_s);
        break;
      case Kind::Elimination:
        write_config(w, e.config);
        w.key("basis").value(e.basis);
        w.key("count").value(e.count);
        w.key("mean").value(e.mean);
        write_ci(w, "ci", e.have_ci, e.ci_lower, e.ci_upper);
        if (e.basis != "inner-prune") {
          w.key("leader").value(e.leader_ordinal);
          w.key("leader_ci")
              .begin_array()
              .value(e.leader_ci_lower)
              .value(e.leader_ci_upper)
              .end_array();
        }
        break;
      case Kind::Round:
        w.key("before").value(e.survivors_before);
        w.key("after").value(e.survivors_after);
        w.key("eliminated").value(e.eliminated);
        w.key("finished").value(e.finished);
        break;
      case Kind::Resume:
        w.key("restored").value(e.restored_configs);
        break;
      case Kind::SurrogateFit:
        // Two shapes: the phase summary (no cfg) carries the model quality;
        // per-seed records carry predicted vs measured for one config.
        if (e.config.parameters().empty()) {
          w.key("samples").value(e.count);
          w.key("r2").value(e.r2);
          w.key("scale").value(e.model_log_scale ? "log" : "raw");
        } else {
          write_config(w, e.config);
          write_optional(w, "predicted", e.predicted);
          w.key("measured").value(e.value);
        }
        break;
      case Kind::CounterPrune:
        write_config(w, e.config);
        w.key("class").value(e.basis);
        w.key("bound").value(e.bound);
        w.key("margin").value(e.margin);
        write_optional(w, "oi", e.oi);
        w.key("widened").value(e.widened);
        write_optional(w, "incumbent", e.incumbent);
        w.key("count").value(e.count);
        w.key("mean").value(e.mean);
        break;
      case Kind::PruneBatch:
        // Summary (no cfg): scan statistics; per-config records: the kept
        // candidates with their predicted values.
        if (e.config.parameters().empty()) {
          w.key("scanned").value(e.scanned);
          w.key("kept").value(e.kept);
          w.key("pruned").value(e.scanned - e.kept);
        } else {
          write_config(w, e.config);
          write_optional(w, "predicted", e.predicted);
        }
        break;
    }
    w.end_object();
    append_line(w);
  }

  if (summary_.has_value() && summary_->scheduler.has_value()) {
    // Scheduler accounting rides between the events and the summary as its
    // own record so the summary line's bytes never depend on whether stats
    // were collected.  Everything here is wall-clock — the one record in a
    // journal that is EXPECTED to differ across reruns.
    const core::SchedulerStats& s = *summary_->scheduler;
    util::JsonWriter w;
    w.begin_object();
    w.key("t").value("scheduler");
    w.key("mode").value(s.mode);
    w.key("workers").value(s.workers);
    w.key("lookahead").value(s.lookahead);
    w.key("tasks").value(s.tasks);
    w.key("steals").value(s.steals);
    w.key("parks").value(s.parks);
    w.key("idle_ns").value(s.idle_ns);
    w.key("busy_ns").value(s.busy_ns);
    w.key("commit_wait_ns").value(s.commit_wait_ns);
    w.key("span_ns").value(s.span_ns);
    w.key("idle_fraction").value(s.idle_fraction());
    w.end_object();
    append_line(w);
  }

  if (summary_.has_value()) {
    util::JsonWriter w;
    w.begin_object();
    w.key("t").value("summary");
    w.key("configs").value(summary_->configs);
    w.key("pruned").value(summary_->pruned);
    w.key("invocations").value(summary_->invocations);
    w.key("iterations").value(summary_->iterations);
    write_optional(w, "best", summary_->best);
    w.end_object();
    append_line(w);
  }
  return out;
}

void TraceJournal::flush() const {
  if (options_.path.empty()) return;
  const util::ProfileSpan span(util::ProfileCategory::JournalFlush);
  std::ofstream out(options_.path, std::ios::trunc);
  if (!out) {
    throw std::runtime_error("TraceJournal: cannot write " + options_.path);
  }
  out << str();
}

}  // namespace rooftune::trace
