#pragma once
// Portable tuning-benchmark export (schema v1) — the interchange layer
// external tuners can consume, and the replay layer that verifies it.
//
// An export is one self-describing JSON document holding everything needed
// to reproduce a tuning comparison without this repository's code: the
// search-space definition (SearchSpace::to_json — declarative, including
// ConstraintSpec constraints), the environment fingerprint the measurements
// were taken under, the per-configuration sample sets at invocation
// granularity, the recorded optimum, and the benchmarking-technique
// metadata that explains *how* the samples were gathered (strategy, stop
// conditions — the paper's point being that this changes the outcome).
// docs/formats.md is the field-for-field specification.
//
// Two writers share the format: make_export() serializes a live TuningRun;
// export_from_journal() reconstructs the same document from a trace
// journal (the journal's invocation records carry every field the export
// needs).  parse_export() + replay_export() close the loop: a mock backend
// replays the recorded per-invocation means through the real evaluator
// machinery and checks that every configuration's aggregate value — and
// the optimum — reproduce bit-identically (Welford over the same sample
// sequence is exact; doubles are serialized round-trip-exactly at %.17g).
//
// Determinism guarantees (docs/formats.md §Determinism):
//   * write_export is a pure function of its inputs — no timestamps,
//     hostnames, or iteration-order dependence;
//   * parse_export(write_export(doc)) → write_export is byte-identical
//     (config keys are written in search-space parameter order, which the
//     parser restores; doubles round-trip exactly);
//   * replay_export re-derives every config value and the optimum from the
//     per-invocation records alone and verifies them by exact comparison.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/autotuner.hpp"
#include "core/config.hpp"
#include "core/evaluator.hpp"
#include "core/search_space.hpp"
#include "telemetry/environment.hpp"
#include "trace/reader.hpp"

namespace rooftune::trace {

/// Schema version written by this build and the newest it can read.
inline constexpr int kExportSchemaVersion = 1;

/// One invocation's sample set (the moments of its iteration samples).
struct ExportInvocation {
  double mean = 0.0;
  double stddev = 0.0;  ///< 0 when fewer than two iterations
  std::uint64_t iterations = 0;
  std::string stop;     ///< core stop-reason string ("max-count", ...)
  double kernel_s = 0.0;
  double setup_s = 0.0;
  double wall_s = 0.0;
};

/// One configuration's complete evaluation record.
struct ExportConfigResult {
  core::Configuration config;
  double value = 0.0;   ///< ConfigResult::value() — the reported metric
  bool pruned = false;
  std::string stop;     ///< outer stop reason
  std::uint64_t iterations = 0;  ///< total across invocations
  double kernel_s = 0.0;
  double setup_s = 0.0;
  std::vector<ExportInvocation> invocations;
};

/// How the samples were gathered.  Only `strategy` is always known (it is
/// in every journal header); the rest is recorded when exporting from a
/// live run and omitted when reconstructing from a journal.
struct ExportTechnique {
  std::string strategy;
  std::optional<std::string> order;
  std::optional<std::uint64_t> invocations;
  std::optional<std::uint64_t> iterations;
  std::optional<double> timeout_s;
  std::optional<double> confidence;
  std::optional<double> tolerance;
  std::optional<bool> confidence_stop;
  std::optional<bool> inner_prune;
  std::optional<bool> outer_prune;
  std::optional<bool> counter_prune;
};

/// The parsed/produced document, 1:1 with the JSON schema.
struct ExportDocument {
  int version = kExportSchemaVersion;
  std::string benchmark;
  std::string metric;
  ExportTechnique technique;
  std::optional<telemetry::EnvironmentFingerprint> environment;
  core::SearchSpace space;
  std::vector<ExportConfigResult> results;  ///< in visit order
  std::optional<std::size_t> best_index;    ///< into results
};

/// Build an export from a live tuning run.
[[nodiscard]] ExportDocument make_export(
    const core::TuningRun& run, const core::SearchSpace& space,
    const std::string& benchmark, const std::string& metric,
    const core::TunerOptions& options,
    std::optional<telemetry::EnvironmentFingerprint> environment);

/// Reconstruct an export from a parsed trace journal.  The journal does not
/// carry the space definition, so the caller supplies it (the CLI resolves
/// the standard space from the journal's benchmark name).  Configuration
/// values and the optimum are recomputed from the per-invocation records —
/// the journal rounds doubles to 12 significant digits, so recomputing
/// keeps the document internally consistent (replayable bit-identically
/// against itself).  Throws std::runtime_error when a recomputed value
/// strays from the journal's recorded one by more than rounding error, or
/// when invocation records are missing.
[[nodiscard]] ExportDocument export_from_journal(const Journal& journal,
                                                 core::SearchSpace space);

/// Serialize (see determinism guarantees above).
[[nodiscard]] std::string write_export(const ExportDocument& doc);

/// Parse an export document.  Throws std::runtime_error — with a distinct
/// "schema version N ... newer than ... M" message when the document comes
/// from a newer writer — on malformed or unsupported input.
[[nodiscard]] ExportDocument parse_export(const std::string& text);

/// write_export to / parse_export from a file.  Throws std::runtime_error
/// on I/O failure.
void write_export_file(const std::string& path, const ExportDocument& doc);
[[nodiscard]] ExportDocument parse_export_file(const std::string& path);

/// Outcome of replaying an export against the mock backend.
struct ReplayOutcome {
  std::size_t configs = 0;            ///< configurations replayed
  std::size_t value_mismatches = 0;   ///< re-scored value != recorded (exact)
  std::optional<std::size_t> replayed_best_index;
  double replayed_best_value = 0.0;
  bool best_index_matches = false;
  bool best_value_matches = false;
  std::string first_mismatch;         ///< human-readable detail, "" when ok

  [[nodiscard]] bool ok() const {
    return value_mismatches == 0 && best_index_matches && best_value_matches;
  }
};

/// Re-score the exported space against a mock backend that replays the
/// recorded per-invocation means through core::run_invocation, re-deriving
/// every configuration's aggregate (including the pruned-invocation
/// exclusion of ConfigResult::value()) and the optimum under the
/// autotuner's first-strictly-greater incumbent rule.  All comparisons are
/// exact (bitwise) double equality.
[[nodiscard]] ReplayOutcome replay_export(const ExportDocument& doc);

}  // namespace rooftune::trace
