#pragma once
// Per-thread hardware performance counters via perf_event_open(2).
//
// The journal brackets every timed iteration loop with kernel_phase_begin /
// kernel_phase_end; this sampler turns those brackets into per-invocation
// counter deltas (cycles, retired instructions, LLC misses).  LLC misses
// x 64 bytes is the measured DRAM traffic, which gives a *measured*
// operational intensity to print next to the analytic TRIAD 1/12 and DGEMM
// 2nmk/8(nk+km+nm) — the cross-check §I of the paper motivates.
//
// Availability is never assumed: perf_event_open can fail for dozens of
// environment reasons (kernel.perf_event_paranoid too high, containers
// without CAP_PERFMON, missing PMU virtualization, non-Linux hosts).  Every
// failure degrades to a no-op sampler whose samples report invalid; the
// journal then simply omits counter fields.  docs/observability.md lists
// the knobs to turn counters on.

#include <cstdint>

namespace rooftune::trace {

/// Counter deltas over one kernel phase.  `valid` is false when the
/// counters could not be read (sampler unavailable or a multiplexed group
/// that never got PMU time) — consumers must skip, not zero-fill.
///
/// When more counter groups are open than the PMU has slots, the kernel
/// time-multiplexes them: the group counts only for `time_running` of the
/// `time_enabled` nanoseconds the phase lasted.  The sampler scales counts
/// by enabled/running (the standard perf(1) extrapolation) and sets
/// `scaled` so the journal and analyzer can flag the estimate — scaled
/// counts are statistically sound for long phases but are no longer exact
/// event counts.
struct PerfSample {
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t llc_misses = 0;
  std::uint64_t time_enabled_ns = 0;  ///< phase duration the group was enabled
  std::uint64_t time_running_ns = 0;  ///< slice the group actually counted
  bool scaled = false;  ///< counts extrapolated from a partial slice
  bool valid = false;
};

/// One thread's counter group.  Not thread-safe: each evaluation worker
/// owns its own instance (counters attach to the calling thread, matching
/// the journal's per-worker buffers).
class PerfCounterSampler {
 public:
  /// Opens the counter group for the calling thread.  Never throws for
  /// environment reasons; check available().
  PerfCounterSampler();
  ~PerfCounterSampler();

  PerfCounterSampler(const PerfCounterSampler&) = delete;
  PerfCounterSampler& operator=(const PerfCounterSampler&) = delete;

  /// True when all three counters opened; false puts the sampler in
  /// permanent no-op mode (begin/end still safe to call).
  [[nodiscard]] bool available() const { return available_; }

  /// Reset and start counting (kernel phase entry).
  void begin();

  /// Stop counting and return the deltas since begin().
  PerfSample end();

  /// Human-readable reason the sampler is unavailable ("" when available) —
  /// surfaced once by the CLI so a silent all-zeros run is impossible.
  [[nodiscard]] const char* unavailable_reason() const { return reason_; }

 private:
  int fd_cycles_ = -1;
  int fd_instructions_ = -1;
  int fd_llc_misses_ = -1;
  bool available_ = false;
  const char* reason_ = "";
};

}  // namespace rooftune::trace
