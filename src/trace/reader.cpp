#include "trace/reader.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "trace/journal.hpp"
#include "util/json_parse.hpp"

namespace rooftune::trace {

namespace {

// Helpers throw bare messages; the per-line catch in read_journal adds the
// line number and a prefix of the offending line, so every parse error —
// including missing-key / wrong-type throws from JsonValue accessors — tells
// the user where to look in the journal.
[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error(what);
}

std::string line_prefix(const std::string& line) {
  constexpr std::size_t kMaxShown = 60;
  if (line.size() <= kMaxShown) return line;
  return line.substr(0, kMaxShown) + "...";
}

[[noreturn]] void fail_line(std::size_t line_number, const std::string& line,
                            const std::string& what) {
  throw std::runtime_error("trace journal line " + std::to_string(line_number) +
                           ": " + what + "\n  offending line: " +
                           line_prefix(line));
}

std::uint64_t as_u64(const util::JsonValue& v) {
  return static_cast<std::uint64_t>(v.as_number());
}

core::Configuration read_config(const util::JsonValue& doc) {
  if (!doc.has("cfg")) return {};
  std::vector<core::Parameter> params;
  for (const auto& [name, value] : doc.at("cfg").as_object()) {
    params.push_back({name, value.as_int()});
  }
  return core::Configuration(std::move(params));
}

core::StopReason read_reason(const util::JsonValue& doc) {
  const std::string& text = doc.at("reason").as_string();
  const auto reason = core::stop_reason_from_string(text);
  if (!reason.has_value()) fail("unknown stop reason '" + text + "'");
  return *reason;
}

void read_ci(const util::JsonValue& doc, const char* key, bool& have,
             double& lower, double& upper) {
  if (!doc.has(key) || doc.at(key).is_null()) return;
  const auto& ci = doc.at(key).as_array();
  have = true;
  lower = ci.at(0).as_number();
  upper = ci.at(1).as_number();
}

}  // namespace

Journal read_journal(const std::string& text) {
  Journal journal;
  bool saw_header = false;

  std::istringstream in(text);
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    try {
    util::JsonValue doc = util::parse_json(line);
    const std::string& tag = doc.at("t").as_string();

    if (tag == "provenance") {
      if (saw_header || !journal.records.empty()) {
        fail("provenance record must precede every other line");
      }
      journal.provenance = telemetry::parse_provenance(doc);
      continue;
    }
    if (tag == "run") {
      journal.header.version = static_cast<int>(doc.at("v").as_number());
      if (journal.header.version > kJournalSchemaVersion) {
        fail("journal schema version " + std::to_string(journal.header.version) +
             " is newer than the newest this build reads (" +
             std::to_string(kJournalSchemaVersion) +
             ") — upgrade rooftune to read this trace");
      }
      journal.header.benchmark = doc.at("benchmark").as_string();
      journal.header.metric = doc.at("metric").as_string();
      journal.header.strategy = doc.at("strategy").as_string();
      if (doc.has("perf_degraded")) {
        journal.header.perf_degraded = doc.at("perf_degraded").as_string();
      }
      saw_header = true;
      continue;
    }
    if (tag == "scheduler") {
      core::SchedulerStats stats;
      stats.mode = doc.at("mode").as_string();
      stats.workers = as_u64(doc.at("workers"));
      stats.lookahead = as_u64(doc.at("lookahead"));
      stats.tasks = as_u64(doc.at("tasks"));
      stats.steals = as_u64(doc.at("steals"));
      stats.parks = as_u64(doc.at("parks"));
      stats.idle_ns = as_u64(doc.at("idle_ns"));
      stats.busy_ns = as_u64(doc.at("busy_ns"));
      stats.commit_wait_ns = as_u64(doc.at("commit_wait_ns"));
      stats.span_ns = as_u64(doc.at("span_ns"));
      journal.scheduler = std::move(stats);
      continue;
    }
    if (tag == "summary") {
      JournalSummary summary;
      summary.configs = as_u64(doc.at("configs"));
      summary.pruned = as_u64(doc.at("pruned"));
      summary.invocations = as_u64(doc.at("invocations"));
      summary.iterations = as_u64(doc.at("iterations"));
      if (!doc.at("best").is_null()) summary.best = doc.at("best").as_number();
      journal.summary = summary;
      continue;
    }

    JournalRecord record;
    core::TraceEvent& e = record.event;
    e.epoch = as_u64(doc.at("epoch"));
    e.config_ordinal = as_u64(doc.at("ord"));
    e.invocation = as_u64(doc.at("inv"));
    e.rank = static_cast<int>(doc.at("rank").as_number());
    e.config = read_config(doc);

    using Kind = core::TraceEvent::Kind;
    if (tag == "incumbent") {
      e.kind = Kind::IncumbentUpdate;
      e.value = doc.at("value").as_number();
    } else if (tag == "stop") {
      e.kind = Kind::StopDecision;
      e.outer_level = doc.at("level").as_string() == "invocation";
      e.reason = read_reason(doc);
      e.count = as_u64(doc.at("count"));
      e.mean = doc.at("mean").as_number();
      read_ci(doc, "ci", e.have_ci, e.ci_lower, e.ci_upper);
      if (doc.has("kernel_s")) e.accumulated_s = doc.at("kernel_s").as_number();
      if (!doc.at("incumbent").is_null()) {
        e.incumbent = doc.at("incumbent").as_number();
      }
    } else if (tag == "invocation") {
      e.kind = Kind::Invocation;
      e.reason = read_reason(doc);
      e.iterations = as_u64(doc.at("iterations"));
      e.kernel_s = doc.at("kernel_s").as_number();
      e.setup_s = doc.at("setup_s").as_number();
      e.wall_s = doc.at("wall_s").as_number();
      e.deterministic_timing = doc.at("det").as_bool();
      e.mean = doc.at("mean").as_number();
      e.stddev = doc.at("stddev").as_number();
      e.trend_rising = doc.at("rising").as_bool();
      if (doc.has("flops")) e.flops = doc.at("flops").as_number();
      if (doc.has("bytes")) e.bytes = doc.at("bytes").as_number();
      if (doc.has("perf")) {
        const auto& perf = doc.at("perf");
        PerfSample sample;
        sample.cycles = as_u64(perf.at("cycles"));
        sample.instructions = as_u64(perf.at("instructions"));
        sample.llc_misses = as_u64(perf.at("llc_misses"));
        if (perf.has("scaled")) {
          sample.scaled = perf.at("scaled").as_bool();
          if (perf.has("time_enabled_ns")) {
            sample.time_enabled_ns = as_u64(perf.at("time_enabled_ns"));
          }
          if (perf.has("time_running_ns")) {
            sample.time_running_ns = as_u64(perf.at("time_running_ns"));
          }
        }
        sample.valid = true;
        record.perf = sample;
      }
      if (doc.has("arena")) {
        const auto& arena = doc.at("arena");
        util::ArenaStats stats;
        stats.leases = as_u64(arena.at("leases"));
        stats.slab_hits = as_u64(arena.at("slab_hits"));
        stats.slab_misses = as_u64(arena.at("slab_misses"));
        stats.allocations = as_u64(arena.at("allocations"));
        stats.bytes_leased = as_u64(arena.at("bytes_leased"));
        stats.bytes_reserved = as_u64(arena.at("bytes_reserved"));
        stats.pages_touched = as_u64(arena.at("pages_touched"));
        e.arena_delta = stats;
      }
    } else if (tag == "config-done") {
      e.kind = Kind::ConfigDone;
      e.reason = read_reason(doc);
      e.value = doc.at("value").as_number();
      e.pruned = doc.at("pruned").as_bool();
      e.iterations = as_u64(doc.at("iterations"));
      e.kernel_s = doc.at("kernel_s").as_number();
      e.setup_s = doc.at("setup_s").as_number();
    } else if (tag == "elimination") {
      e.kind = Kind::Elimination;
      e.basis = doc.at("basis").as_string();
      e.count = as_u64(doc.at("count"));
      e.mean = doc.at("mean").as_number();
      read_ci(doc, "ci", e.have_ci, e.ci_lower, e.ci_upper);
      if (doc.has("leader")) {
        e.leader_ordinal = as_u64(doc.at("leader"));
        const auto& ci = doc.at("leader_ci").as_array();
        e.leader_ci_lower = ci.at(0).as_number();
        e.leader_ci_upper = ci.at(1).as_number();
      }
    } else if (tag == "round") {
      e.kind = Kind::Round;
      e.survivors_before = as_u64(doc.at("before"));
      e.survivors_after = as_u64(doc.at("after"));
      e.eliminated = as_u64(doc.at("eliminated"));
      e.finished = as_u64(doc.at("finished"));
    } else if (tag == "resume") {
      e.kind = Kind::Resume;
      e.restored_configs = as_u64(doc.at("restored"));
    } else if (tag == "surrogate-fit") {
      e.kind = Kind::SurrogateFit;
      if (e.config.parameters().empty()) {
        e.count = as_u64(doc.at("samples"));
        e.r2 = doc.at("r2").as_number();
        e.model_log_scale = doc.at("scale").as_string() == "log";
      } else {
        if (!doc.at("predicted").is_null()) {
          e.predicted = doc.at("predicted").as_number();
        }
        e.value = doc.at("measured").as_number();
      }
    } else if (tag == "counter-prune") {
      e.kind = Kind::CounterPrune;
      e.basis = doc.at("class").as_string();
      e.bound = doc.at("bound").as_number();
      e.margin = doc.at("margin").as_number();
      if (!doc.at("oi").is_null()) e.oi = doc.at("oi").as_number();
      e.widened = doc.at("widened").as_bool();
      if (!doc.at("incumbent").is_null()) {
        e.incumbent = doc.at("incumbent").as_number();
      }
      e.count = as_u64(doc.at("count"));
      e.mean = doc.at("mean").as_number();
    } else if (tag == "prune-batch") {
      e.kind = Kind::PruneBatch;
      if (e.config.parameters().empty()) {
        e.scanned = as_u64(doc.at("scanned"));
        e.kept = as_u64(doc.at("kept"));
      } else if (!doc.at("predicted").is_null()) {
        e.predicted = doc.at("predicted").as_number();
      }
    } else {
      fail("unknown record type '" + tag + "'");
    }
    journal.records.push_back(std::move(record));
    } catch (const std::exception& e) {
      fail_line(line_number, line, e.what());
    }
  }

  if (!saw_header) {
    throw std::runtime_error("trace journal: missing 'run' header line");
  }
  return journal;
}

Journal read_journal_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("trace journal: cannot read " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return read_journal(buffer.str());
}

}  // namespace rooftune::trace
