#pragma once
// Deterministic random number generation.
//
// Every stochastic element of the reproduction (noise model, matrix fill,
// random search) derives its stream from explicit seeds via SplitMix64
// hashing, so a table regenerated twice is bit-identical.  The core
// generator is xoshiro256**, which is small, fast and of high quality.

#include <array>
#include <cstdint>

namespace rooftune::util {

/// SplitMix64 step: used both as a standalone stream and to expand seeds.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// Mix an arbitrary number of integer components into one 64-bit seed.
/// Used to derive per-(machine, configuration, invocation) noise streams.
template <typename... Parts>
constexpr std::uint64_t hash_seed(std::uint64_t first, Parts... rest) {
  std::uint64_t s = first;
  std::uint64_t h = splitmix64(s);
  ((s ^= static_cast<std::uint64_t>(rest) + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2),
    h = splitmix64(s)),
   ...);
  return h;
}

/// xoshiro256** by Blackman & Vigna.  Satisfies UniformRandomBitGenerator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x853C49E6748FEA9Bull) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // Expand the single seed through SplitMix64 per the authors' guidance.
    for (auto& word : state_) word = splitmix64(seed);
    if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
      state_[0] = 1;  // all-zero state is the one forbidden state
    }
    // Drop any cached Box–Muller deviate: a reseeded stream must be a pure
    // function of the seed, not of what the generator produced before.
    has_cached_normal_ = false;
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Standard normal deviate (polar Box–Muller, cached pair).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Lognormal: exp(N(mu, sigma)).
  double lognormal(double mu, double sigma);

  /// Uniform integer in [0, n).
  std::uint64_t below(std::uint64_t n);

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double cached_normal_{0.0};
  bool has_cached_normal_{false};
};

}  // namespace rooftune::util
