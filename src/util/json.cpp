#include "util/json.hpp"

#include <cmath>
#include <cstdio>

namespace rooftune::util {

void JsonWriter::before_value() {
  if (after_key_) {
    after_key_ = false;
    return;  // value directly follows "key":
  }
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) out_ << ',';
    needs_comma_.back() = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ << '{';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  out_ << '}';
  needs_comma_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ << '[';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  out_ << ']';
  needs_comma_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) out_ << ',';
    needs_comma_.back() = true;
  }
  out_ << '"' << escape(name) << "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  before_value();
  out_ << '"' << escape(v) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  if (std::isfinite(v)) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.12g", v);
    out_ << buf;
  } else {
    out_ << "null";  // JSON has no Inf/NaN
  }
  return *this;
}

JsonWriter& JsonWriter::value_exact(double v) {
  before_value();
  if (std::isfinite(v)) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    out_ << buf;
  } else {
    out_ << "null";  // JSON has no Inf/NaN
  }
  return *this;
}

JsonWriter& JsonWriter::raw_value(const std::string& json) {
  before_value();
  out_ << json;
  return *this;
}

JsonWriter& JsonWriter::value(long long v) {
  before_value();
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(unsigned long long v) {
  before_value();
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  out_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  out_ << "null";
  return *this;
}

std::string JsonWriter::escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (unsigned char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

}  // namespace rooftune::util
