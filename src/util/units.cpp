#include "util/units.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace rooftune::util {

Bytes parse_bytes(const std::string& text) {
  if (text.empty()) throw std::invalid_argument("parse_bytes: empty string");

  std::size_t pos = 0;
  double magnitude = 0.0;
  try {
    magnitude = std::stod(text, &pos);
  } catch (const std::exception&) {
    throw std::invalid_argument("parse_bytes: no leading number in '" + text + "'");
  }
  if (magnitude < 0.0) throw std::invalid_argument("parse_bytes: negative size '" + text + "'");

  while (pos < text.size() && std::isspace(static_cast<unsigned char>(text[pos]))) ++pos;
  std::string suffix = text.substr(pos);

  double scale = 1.0;
  if (suffix.empty() || suffix == "B" || suffix == "b") {
    scale = 1.0;
  } else if (suffix == "K" || suffix == "KiB" || suffix == "kiB" || suffix == "k") {
    scale = 1024.0;
  } else if (suffix == "M" || suffix == "MiB" || suffix == "m") {
    scale = 1024.0 * 1024.0;
  } else if (suffix == "G" || suffix == "GiB" || suffix == "g") {
    scale = 1024.0 * 1024.0 * 1024.0;
  } else {
    throw std::invalid_argument("parse_bytes: unknown suffix '" + suffix + "'");
  }
  return Bytes{static_cast<std::uint64_t>(std::llround(magnitude * scale))};
}

std::string format_bytes(Bytes b) {
  const double v = static_cast<double>(b.value);
  char buf[64];
  if (b.value >= Bytes::GiB(1).value) {
    std::snprintf(buf, sizeof buf, "%.1f GiB", v / (1024.0 * 1024.0 * 1024.0));
  } else if (b.value >= Bytes::MiB(1).value) {
    std::snprintf(buf, sizeof buf, "%.1f MiB", v / (1024.0 * 1024.0));
  } else if (b.value >= Bytes::KiB(1).value) {
    std::snprintf(buf, sizeof buf, "%.1f KiB", v / 1024.0);
  } else {
    std::snprintf(buf, sizeof buf, "%llu B", static_cast<unsigned long long>(b.value));
  }
  return buf;
}

std::string format_seconds(Seconds s) {
  char buf[64];
  const double v = s.value;
  if (v < 0.0) {
    return "-" + format_seconds(Seconds{-v});
  }
  if (v < 1e-3) {
    std::snprintf(buf, sizeof buf, "%.1fus", v * 1e6);
  } else if (v < 1.0) {
    std::snprintf(buf, sizeof buf, "%.2fms", v * 1e3);
  } else if (v < 120.0) {
    std::snprintf(buf, sizeof buf, "%.2fs", v);
  } else {
    const auto whole = static_cast<long>(v);
    std::snprintf(buf, sizeof buf, "%ldm%02lds", whole / 60, whole % 60);
  }
  return buf;
}

}  // namespace rooftune::util
