#include "util/rng.hpp"

#include <cmath>

namespace rooftune::util {

double Xoshiro256::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Polar (Marsaglia) method: rejection-sample a point in the unit disc.
  double u = 0.0, v = 0.0, s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  has_cached_normal_ = true;
  return u * factor;
}

double Xoshiro256::lognormal(double mu, double sigma) {
  return std::exp(mu + sigma * normal());
}

std::uint64_t Xoshiro256::below(std::uint64_t n) {
  if (n == 0) return 0;
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = (~n + 1) % n;  // 2^64 mod n
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return r % n;
  }
}

}  // namespace rooftune::util
