#include "util/table.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace rooftune::util {

void TextTable::columns(const std::vector<std::string>& names,
                        const std::vector<Align>& aligns) {
  if (!rows_.empty()) throw std::logic_error("TextTable: columns() after rows added");
  names_ = names;
  aligns_ = aligns;
  aligns_.resize(names.size(), Align::Right);
  if (!aligns_.empty()) aligns_[0] = aligns.empty() ? Align::Left : aligns_[0];
}

void TextTable::add_row(const std::vector<std::string>& cells) {
  if (cells.size() != names_.size()) {
    throw std::invalid_argument("TextTable: row has " + std::to_string(cells.size()) +
                                " cells, expected " + std::to_string(names_.size()));
  }
  rows_.push_back(Row{false, cells});
  ++body_rows_;
}

void TextTable::add_separator() { rows_.push_back(Row{true, {}}); }

std::string TextTable::render() const {
  std::vector<std::size_t> widths(names_.size());
  for (std::size_t c = 0; c < names_.size(); ++c) widths[c] = names_[c].size();
  for (const auto& row : rows_) {
    if (row.separator) continue;
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  std::ostringstream out;
  const auto rule = [&] {
    out << '+';
    for (std::size_t w : widths) out << std::string(w + 2, '-') << '+';
    out << '\n';
  };
  const auto line = [&](const std::vector<std::string>& cells) {
    out << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      const std::string& text = cells[c];
      const std::size_t pad = widths[c] - text.size();
      if (aligns_[c] == Align::Left) {
        out << ' ' << text << std::string(pad, ' ') << " |";
      } else {
        out << ' ' << std::string(pad, ' ') << text << " |";
      }
    }
    out << '\n';
  };

  rule();
  line(names_);
  rule();
  for (const auto& row : rows_) {
    if (row.separator) {
      rule();
    } else {
      line(row.cells);
    }
  }
  rule();
  return out.str();
}

}  // namespace rooftune::util
