#pragma once
// Clock abstraction: the autotuner measures elapsed time through a Clock so
// that the same code path runs against real hardware (WallClock) and against
// the simulated machines (VirtualClock, advanced by the simulator backend).
//
// The paper's tool records per-kernel elapsed time with gettimeofday and
// accumulates it for the max-time stop condition; total tuner runtime is the
// "Time" column of Tables VIII–XI.  Keeping both behind one interface lets
// the reproduction regenerate those columns deterministically.
//
// Every Clock also reports the estimated cost of one now() call.  Timing a
// kernel takes two such calls, so for kernels whose runtime is within a
// couple of orders of magnitude of that overhead the measured time is
// biased upward and the reported rate downward (Google Benchmark solves the
// same problem by timing geometrically growing iteration batches).  The
// evaluator consults overhead() to decide when to switch to batched timing.

#include "util/units.hpp"

namespace rooftune::util {

/// Monotonic time source.  now() only moves forward.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Current time since an arbitrary epoch.
  [[nodiscard]] virtual Seconds now() const = 0;

  /// Estimated cost of a single now() call.  Zero means "free" (pure
  /// virtual clocks) and disables batched timing in the evaluator.
  [[nodiscard]] virtual Seconds overhead() const { return Seconds{0.0}; }
};

/// Measure the per-call cost of `clock.now()`: `repeats` rounds of
/// `batch`+1 back-to-back calls, taking the cheapest round (minimum is the
/// right estimator for a cost that only ever gains additive noise).  For a
/// deterministic clock that advances a fixed delta per call this recovers
/// the delta exactly.
[[nodiscard]] Seconds calibrate_clock_overhead(const Clock& clock,
                                               std::size_t batch = 256,
                                               std::size_t repeats = 8);

/// Real monotonic wall time (steady_clock).
class WallClock final : public Clock {
 public:
  [[nodiscard]] Seconds now() const override;

  /// Calibrated once per process (lazily, thread-safe) and cached: the
  /// overhead is a property of the host, not of the WallClock instance.
  [[nodiscard]] Seconds overhead() const override;
};

/// Simulated time: starts at zero, advanced explicitly by whoever owns it
/// (the simulator backend charges kernel/init/startup costs here).
class VirtualClock final : public Clock {
 public:
  [[nodiscard]] Seconds now() const override { return now_; }

  /// Advance the clock by a non-negative amount; negative deltas are clamped
  /// to zero so a buggy cost model can never make time run backwards.
  void advance(Seconds delta) {
    if (delta.value > 0.0) now_ += delta;
  }

  void reset() { now_ = Seconds{0.0}; }

  /// Simulated timer-call cost.  now() itself stays free (reading the
  /// virtual clock is not part of the simulated experiment); the owning
  /// backend charges this per modelled timer pair and the evaluator reads
  /// it to trigger the same batching it would use on real hardware.
  void set_overhead(Seconds overhead) { overhead_ = overhead; }
  [[nodiscard]] Seconds overhead() const override { return overhead_; }

 private:
  Seconds now_{0.0};
  Seconds overhead_{0.0};
};

/// RAII stopwatch over any Clock.
class Stopwatch {
 public:
  explicit Stopwatch(const Clock& clock) : clock_(&clock), start_(clock.now()) {}

  [[nodiscard]] Seconds elapsed() const { return clock_->now() - start_; }
  void restart() { start_ = clock_->now(); }

 private:
  const Clock* clock_;
  Seconds start_;
};

}  // namespace rooftune::util
