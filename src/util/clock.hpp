#pragma once
// Clock abstraction: the autotuner measures elapsed time through a Clock so
// that the same code path runs against real hardware (WallClock) and against
// the simulated machines (VirtualClock, advanced by the simulator backend).
//
// The paper's tool records per-kernel elapsed time with gettimeofday and
// accumulates it for the max-time stop condition; total tuner runtime is the
// "Time" column of Tables VIII–XI.  Keeping both behind one interface lets
// the reproduction regenerate those columns deterministically.

#include "util/units.hpp"

namespace rooftune::util {

/// Monotonic time source.  now() only moves forward.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Current time since an arbitrary epoch.
  [[nodiscard]] virtual Seconds now() const = 0;
};

/// Real monotonic wall time (steady_clock).
class WallClock final : public Clock {
 public:
  [[nodiscard]] Seconds now() const override;
};

/// Simulated time: starts at zero, advanced explicitly by whoever owns it
/// (the simulator backend charges kernel/init/startup costs here).
class VirtualClock final : public Clock {
 public:
  [[nodiscard]] Seconds now() const override { return now_; }

  /// Advance the clock by a non-negative amount; negative deltas are clamped
  /// to zero so a buggy cost model can never make time run backwards.
  void advance(Seconds delta) {
    if (delta.value > 0.0) now_ += delta;
  }

  void reset() { now_ = Seconds{0.0}; }

 private:
  Seconds now_{0.0};
};

/// RAII stopwatch over any Clock.
class Stopwatch {
 public:
  explicit Stopwatch(const Clock& clock) : clock_(&clock), start_(clock.now()) {}

  [[nodiscard]] Seconds elapsed() const { return clock_->now() - start_; }
  void restart() { start_ = clock_->now(); }

 private:
  const Clock* clock_;
  Seconds start_;
};

}  // namespace rooftune::util
