#include "util/affinity.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>

#include "util/strings.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

#if defined(__linux__)
#include <sched.h>
#endif

namespace rooftune::util {

const char* to_string(AffinityPolicy policy) {
  switch (policy) {
    case AffinityPolicy::Close: return "close";
    case AffinityPolicy::Spread: return "spread";
  }
  return "?";
}

AffinityPolicy parse_affinity(const std::string& text) {
  const std::string lower = to_lower(trim(text));
  if (lower == "close") return AffinityPolicy::Close;
  if (lower == "spread") return AffinityPolicy::Spread;
  throw std::invalid_argument("unknown affinity policy '" + text + "' (close|spread)");
}

int native_thread_count() {
#ifdef _OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

void apply_native_affinity(AffinityPolicy policy) {
#ifdef _OPENMP
  // OMP_PROC_BIND can only be set before runtime startup; at run time the
  // best portable approximation is to keep dynamic adjustment off so the
  // measured region uses a stable thread team.
  omp_set_dynamic(0);
  (void)policy;
#else
  (void)policy;
#endif
}

bool pin_current_thread(std::size_t cpu) {
#if defined(__linux__)
  const unsigned online = std::max(1u, std::thread::hardware_concurrency());
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<int>(cpu % online), &set);
  return sched_setaffinity(0, sizeof(set), &set) == 0;
#else
  (void)cpu;
  return false;
#endif
}

}  // namespace rooftune::util
