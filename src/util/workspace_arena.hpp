#pragma once
// Workspace arena: high-water-mark slab allocator for kernel operands.
//
// The native backends rebuild their operands on every benchmark invocation
// — three fresh DGEMM matrices, three fresh STREAM vectors — which costs an
// mmap, a page-fault storm and a first-touch pass per invocation.  Over a
// 96-configuration sweep with 10 invocations each, that setup dominates the
// non-kernel share of tuning time (the paper's whole point is minimizing
// that share).  The arena removes it: buffers are leased by (role, bytes)
// key from per-role slabs that only ever grow, so after the first
// invocation of the largest working set the steady-state loop performs
// zero allocations and zero page faults — every lease is a slab hit.
//
// Design points:
//  * Slabs are page-aligned (a superset of the 64-byte SIMD alignment the
//    kernels need) so the whole slab can be madvise(MADV_HUGEPAGE)d when
//    ArenaOptions::huge_pages is set — fewer TLB misses on multi-hundred-MiB
//    STREAM vectors.
//  * New slabs are first-touched inside an OpenMP `schedule(static)` loop
//    over their elements — the same static partition the STREAM/DGEMM
//    kernels use — so with OMP_PLACES/PROC_BIND configured, pages land on
//    the NUMA node of the thread that will stream them.
//  * Growth is monotone per role: a lease never shrinks a slab, so equal or
//    smaller working sets (later configurations in a sweep) reuse memory
//    across invocations *and* configurations.
//  * Not thread-safe by design: ParallelEvaluator workers each own a
//    backend and therefore an arena, which avoids lease contention
//    entirely.  The internal first-touch loop may still fan out over
//    OpenMP threads.
//
// Every lease and slab event is counted in ArenaStats, which backends
// surface through Backend::arena_stats() into reports — the instrumented
// proof that the steady-state inner loop allocates nothing.

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace rooftune::util {

struct ArenaOptions {
  /// Request transparent-huge-page backing for slabs (Linux
  /// madvise(MADV_HUGEPAGE); silently a no-op elsewhere or when THP is
  /// disabled system-wide — see docs/performance.md for prerequisites).
  bool huge_pages = false;
  /// First-touch new slabs with an OpenMP static loop (see file comment).
  /// Disable for tiny test arenas where spawning a team costs more than
  /// the faults it places.
  bool first_touch = true;
};

/// Monotone counters; aggregate across arenas with operator+=.
struct ArenaStats {
  std::uint64_t leases = 0;          ///< lease() calls served
  std::uint64_t slab_hits = 0;       ///< served from an existing slab
  std::uint64_t slab_misses = 0;     ///< slab had to be created or grown
  std::uint64_t allocations = 0;     ///< slab (re)allocations performed
  std::uint64_t bytes_leased = 0;    ///< sum of requested bytes over leases
  std::uint64_t bytes_reserved = 0;  ///< current high-water capacity
  std::uint64_t pages_touched = 0;   ///< pages first-touched at allocation

  ArenaStats& operator+=(const ArenaStats& other) {
    leases += other.leases;
    slab_hits += other.slab_hits;
    slab_misses += other.slab_misses;
    allocations += other.allocations;
    bytes_leased += other.bytes_leased;
    bytes_reserved += other.bytes_reserved;
    pages_touched += other.pages_touched;
    return *this;
  }
};

class WorkspaceArena {
 public:
  /// Kernel operands want 64-byte (cache-line / AVX-512) alignment; slabs
  /// are page-aligned, which implies it.
  static constexpr std::size_t alignment = 64;

  explicit WorkspaceArena(ArenaOptions options = {});
  ~WorkspaceArena();

  WorkspaceArena(const WorkspaceArena&) = delete;
  WorkspaceArena& operator=(const WorkspaceArena&) = delete;
  WorkspaceArena(WorkspaceArena&&) = delete;
  WorkspaceArena& operator=(WorkspaceArena&&) = delete;

  /// Lease at least `bytes` of page-aligned storage for `role`.  The
  /// pointer stays valid (and its contents intact) until a *larger* lease
  /// of the same role or release_all(); contents are unspecified after a
  /// slab grows.  bytes == 0 returns the slab as-is (nullptr when the role
  /// has never leased).
  void* lease(std::string_view role, std::size_t bytes);

  /// Typed convenience: lease `count` elements of T.
  template <typename T>
  T* lease_array(std::string_view role, std::size_t count) {
    if (count > ~std::size_t{0} / sizeof(T)) throw std::bad_alloc();
    return static_cast<T*>(lease(role, count * sizeof(T)));
  }

  /// Free every slab.  Stats keep accumulating across releases (a release
  /// does not erase history; bytes_reserved drops to zero).
  void release_all();

  [[nodiscard]] const ArenaStats& stats() const { return stats_; }
  void reset_stats() { stats_ = ArenaStats{}; stats_.bytes_reserved = reserved_; }

  [[nodiscard]] std::size_t slab_count() const { return slabs_.size(); }
  [[nodiscard]] const ArenaOptions& options() const { return options_; }

  /// System page size (cached); the slab alignment/rounding unit.
  [[nodiscard]] static std::size_t page_size();

 private:
  struct Slab {
    void* data = nullptr;
    std::size_t capacity = 0;  ///< bytes, page-rounded
  };

  void grow(Slab& slab, std::size_t bytes);
  void first_touch(void* data, std::size_t bytes) const;

  ArenaOptions options_;
  std::map<std::string, Slab, std::less<>> slabs_;
  std::uint64_t reserved_ = 0;
  ArenaStats stats_;
};

}  // namespace rooftune::util
