#include "util/csv.hpp"

#include <cstdio>
#include <ostream>

namespace rooftune::util {

void CsvWriter::header(const std::vector<std::string>& names) { row(names); }

CsvWriter& CsvWriter::cell(const std::string& value) {
  raw_cell(escape(value));
  return *this;
}

CsvWriter& CsvWriter::cell(double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.10g", value);
  raw_cell(buf);
  return *this;
}

CsvWriter& CsvWriter::cell(long long value) {
  raw_cell(std::to_string(value));
  return *this;
}

CsvWriter& CsvWriter::cell(unsigned long long value) {
  raw_cell(std::to_string(value));
  return *this;
}

void CsvWriter::end_row() {
  *out_ << '\n';
  row_open_ = false;
  ++rows_;
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  for (const auto& c : cells) cell(c);
  end_row();
}

void CsvWriter::raw_cell(const std::string& escaped) {
  if (row_open_) *out_ << ',';
  *out_ << escaped;
  row_open_ = true;
}

std::string CsvWriter::escape(const std::string& value) {
  const bool needs_quotes =
      value.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return value;
  std::string out = "\"";
  for (char c : value) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::vector<std::vector<std::string>> parse_csv(const std::string& text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string cell;
  bool in_quotes = false;
  bool cell_started = false;

  const auto flush_cell = [&] {
    row.push_back(cell);
    cell.clear();
    cell_started = false;
  };
  const auto flush_row = [&] {
    flush_cell();
    rows.push_back(row);
    row.clear();
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          cell += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cell += c;
      }
    } else if (c == '"' && !cell_started) {
      in_quotes = true;
      cell_started = true;
    } else if (c == ',') {
      flush_cell();
    } else if (c == '\n') {
      flush_row();
    } else if (c == '\r') {
      // swallow; \r\n handled by the \n branch
    } else {
      cell += c;
      cell_started = true;
    }
  }
  if (cell_started || !cell.empty() || !row.empty()) flush_row();
  return rows;
}

}  // namespace rooftune::util
