#include "util/profiler.hpp"

#include <cstring>

namespace rooftune::util {

namespace {

struct CategoryInfo {
  const char* name;
  bool instant;
};

constexpr CategoryInfo kCategories[kProfileCategoryCount] = {
    {"task-exec", false},      {"pool-idle", false},
    {"setup", false},          {"kernel", false},
    {"commit-wait", false},    {"racing-round", false},
    {"surrogate-seed", false}, {"surrogate-fit", false},
    {"surrogate-confirm", false}, {"journal-flush", false},
    {"checkpoint", false},     {"steal", true},
    {"park", true},            {"incumbent", true},
    {"counter-prune", true},   {"epoch", true},
};

}  // namespace

const char* to_string(ProfileCategory category) {
  const auto index = static_cast<std::size_t>(category);
  if (index >= kProfileCategoryCount) return "?";
  return kCategories[index].name;
}

bool profile_category_is_instant(ProfileCategory category) {
  const auto index = static_cast<std::size_t>(category);
  if (index >= kProfileCategoryCount) return false;
  return kCategories[index].instant;
}

bool profile_category_from_string(const std::string& name,
                                  ProfileCategory& out) {
  for (std::size_t i = 0; i < kProfileCategoryCount; ++i) {
    if (name == kCategories[i].name) {
      out = static_cast<ProfileCategory>(i);
      return true;
    }
  }
  return false;
}

std::uint64_t ProfileSnapshot::total_records() const {
  std::uint64_t total = 0;
  for (const auto& lane : lanes) total += lane.records.size();
  return total;
}

std::uint64_t ProfileSnapshot::total_dropped() const {
  std::uint64_t total = 0;
  for (const auto& lane : lanes) total += lane.dropped;
  return total;
}

/// One thread's ring: a preallocated vector the owning thread appends to
/// without synchronization (registration is the only locked step).  A full
/// lane drops instead of growing — the hot path never allocates.
struct Profiler::Lane {
  std::string thread_name;
  std::vector<ProfileRecord> records;
  std::uint64_t dropped = 0;
  std::size_t capacity = 0;

  void push(const ProfileRecord& record) {
    if (records.size() >= capacity) {
      ++dropped;
      return;
    }
    records.push_back(record);
  }
};

namespace {

/// Thread-local lane cache.  The generation stamp invalidates it across
/// enable() cycles, so a re-enabled profiler never writes into lanes that
/// snapshot() already handed out.
struct LaneCache {
  std::uint64_t generation = 0;
  Profiler::Lane* lane = nullptr;
};

thread_local LaneCache t_lane_cache;

}  // namespace

Profiler& Profiler::instance() {
  static Profiler profiler;
  return profiler;
}

void Profiler::enable(std::size_t lane_capacity) {
  const std::scoped_lock lock(lanes_mutex_);
  lanes_.clear();
  lane_capacity_ = lane_capacity > 0 ? lane_capacity : 1;
  epoch_ = std::chrono::steady_clock::now();
  generation_.fetch_add(1, std::memory_order_release);

  // Calibrate the per-record cost on a scratch lane: the self-overhead
  // figure in the report is total records × this.
  {
    Lane scratch;
    scratch.capacity = 4096;
    scratch.records.reserve(scratch.capacity);
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < scratch.capacity; ++i) {
      ProfileRecord record;
      record.start_ns = now_ns();
      record.end_ns = now_ns();
      record.category = ProfileCategory::Kernel;
      scratch.push(record);
    }
    const auto t1 = std::chrono::steady_clock::now();
    overhead_ns_per_record_ =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                .count()) /
        static_cast<double>(scratch.capacity);
  }

  enabled_.store(true, std::memory_order_release);
}

void Profiler::disable() { enabled_.store(false, std::memory_order_release); }

std::uint64_t Profiler::now_ns() const {
  return to_ticks(std::chrono::steady_clock::now());
}

std::uint64_t Profiler::to_ticks(
    std::chrono::steady_clock::time_point tp) const {
  if (tp <= epoch_) return 0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(tp - epoch_)
          .count());
}

Profiler::Lane* Profiler::lane_for_this_thread() {
  const std::uint64_t generation = generation_.load(std::memory_order_acquire);
  if (t_lane_cache.lane != nullptr &&
      t_lane_cache.generation == generation) {
    return t_lane_cache.lane;
  }
  const std::scoped_lock lock(lanes_mutex_);
  auto lane = std::make_unique<Lane>();
  lane->capacity = lane_capacity_;
  lane->records.reserve(lane->capacity);
  lane->thread_name = "thread-" + std::to_string(lanes_.size());
  t_lane_cache.lane = lane.get();
  t_lane_cache.generation = generation;
  lanes_.push_back(std::move(lane));
  return t_lane_cache.lane;
}

void Profiler::record(ProfileCategory category, std::uint64_t start_ns,
                      std::uint64_t end_ns, double weight, std::uint64_t arg) {
  if (!enabled()) return;
  ProfileRecord record;
  record.start_ns = start_ns;
  record.end_ns = end_ns < start_ns ? start_ns : end_ns;
  record.arg = arg;
  record.weight = weight;
  record.category = category;
  lane_for_this_thread()->push(record);
}

void Profiler::instant(ProfileCategory category, std::uint64_t arg) {
  if (!enabled()) return;
  const std::uint64_t now = now_ns();
  record(category, now, now, 0.0, arg);
}

void Profiler::set_thread_name(const std::string& name) {
  if (!enabled()) return;
  lane_for_this_thread()->thread_name = name;
}

ProfileSnapshot Profiler::snapshot() const {
  ProfileSnapshot snapshot;
  snapshot.overhead_ns_per_record = overhead_ns_per_record_;
  const std::scoped_lock lock(lanes_mutex_);
  snapshot.lanes.reserve(lanes_.size());
  for (const auto& lane : lanes_) {
    ProfileLane copy;
    copy.thread_name = lane->thread_name;
    copy.dropped = lane->dropped;
    copy.records = lane->records;
    snapshot.lanes.push_back(std::move(copy));
  }
  return snapshot;
}

ProfileSpan::ProfileSpan(ProfileCategory category, std::uint64_t arg) {
  Profiler& profiler = Profiler::instance();
  if (!profiler.enabled()) return;
  category_ = category;
  arg_ = arg;
  start_ns_ = profiler.now_ns();
  active_ = true;
}

void ProfileSpan::finish(double weight) {
  if (!active_) return;
  active_ = false;
  Profiler& profiler = Profiler::instance();
  profiler.record(category_, start_ns_, profiler.now_ns(), weight, arg_);
}

}  // namespace rooftune::util
