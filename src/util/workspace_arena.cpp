#include "util/workspace_arena.hpp"

#include <cstdlib>
#include <new>
#include <stdexcept>

#if defined(__linux__)
#include <sys/mman.h>
#include <unistd.h>
#endif

namespace rooftune::util {

namespace {

std::size_t round_up(std::size_t bytes, std::size_t unit) {
  if (bytes > ~std::size_t{0} - (unit - 1)) throw std::bad_alloc();
  return (bytes + unit - 1) / unit * unit;
}

}  // namespace

std::size_t WorkspaceArena::page_size() {
#if defined(__linux__)
  static const std::size_t page = [] {
    const long p = ::sysconf(_SC_PAGESIZE);
    return p > 0 ? static_cast<std::size_t>(p) : std::size_t{4096};
  }();
  return page;
#else
  return 4096;
#endif
}

WorkspaceArena::WorkspaceArena(ArenaOptions options) : options_(options) {}

WorkspaceArena::~WorkspaceArena() { release_all(); }

void WorkspaceArena::release_all() {
  for (auto& [role, slab] : slabs_) std::free(slab.data);
  slabs_.clear();
  reserved_ = 0;
  stats_.bytes_reserved = 0;
}

void WorkspaceArena::first_touch(void* data, std::size_t bytes) const {
  // Static partition over 8-byte elements — the same schedule(static) split
  // the STREAM and first-touch-init loops use over their doubles, so the
  // thread that faults a page in is the thread that later streams it.
  // Slabs are page-rounded, hence divisible by 8.
  auto* words = static_cast<std::uint64_t*>(data);
  const auto count = static_cast<std::int64_t>(bytes / sizeof(std::uint64_t));
#pragma omp parallel for schedule(static)
  for (std::int64_t i = 0; i < count; ++i) words[i] = 0;
}

void WorkspaceArena::grow(Slab& slab, std::size_t bytes) {
  const std::size_t page = page_size();
  const std::size_t capacity = round_up(bytes, page);
  // Page alignment is a superset of the 64-byte kernel requirement and what
  // madvise needs to cover the slab exactly.
  void* data = std::aligned_alloc(page, capacity);
  if (data == nullptr) throw std::bad_alloc();
#if defined(__linux__)
  if (options_.huge_pages) {
    // Advisory only: fails silently when THP is disabled ("never") or the
    // kernel lacks support — the benchmark still runs, just without the
    // TLB win.
    (void)::madvise(data, capacity, MADV_HUGEPAGE);
  }
#endif
  if (options_.first_touch) first_touch(data, capacity);

  std::free(slab.data);
  reserved_ -= slab.capacity;
  slab.data = data;
  slab.capacity = capacity;
  reserved_ += capacity;

  ++stats_.allocations;
  stats_.pages_touched += capacity / page;
  stats_.bytes_reserved = reserved_;
}

void* WorkspaceArena::lease(std::string_view role, std::size_t bytes) {
  auto it = slabs_.find(role);
  if (it == slabs_.end()) {
    it = slabs_.emplace(std::string(role), Slab{}).first;
  }
  Slab& slab = it->second;

  ++stats_.leases;
  stats_.bytes_leased += bytes;
  if (bytes <= slab.capacity && slab.data != nullptr) {
    ++stats_.slab_hits;
  } else if (bytes > 0) {
    ++stats_.slab_misses;
    grow(slab, bytes);
  }
  return slab.data;
}

}  // namespace rooftune::util
