#pragma once
// Chase–Lev work-stealing deque: the per-worker task queue behind
// core::EvalPool.
//
// One thread (the owner) pushes and pops at the bottom; any number of
// thieves steal from the top.  The implementation follows the classic
// Chase–Lev algorithm ("Dynamic Circular Work-Stealing Deque", SPAA'05)
// but deliberately uses sequentially-consistent operations on top_/bottom_
// and atomic slots instead of the fence-based weak-memory formulation
// (Lê et al., PPoPP'13): standalone fences are invisible to
// ThreadSanitizer and would make the pool's stress tests report false
// races.  Task granularity in the evaluator is a whole benchmark
// invocation (microseconds to milliseconds), so the extra ordering cost
// is unmeasurable here.
//
// Growth never frees in-use storage: grow() installs a larger ring and
// retires the old one to an owner-only list freed at destruction, so a
// thief holding a stale ring pointer still reads valid (atomic) slots.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <type_traits>
#include <vector>

namespace rooftune::util {

template <typename T>
class WorkStealDeque {
  static_assert(std::is_trivially_copyable_v<T>,
                "slots are std::atomic<T>; T must be trivially copyable");

 public:
  explicit WorkStealDeque(std::size_t capacity = 64) {
    rings_.push_back(std::make_unique<Ring>(round_up(capacity)));
    ring_.store(rings_.back().get(), std::memory_order_relaxed);
  }

  WorkStealDeque(const WorkStealDeque&) = delete;
  WorkStealDeque& operator=(const WorkStealDeque&) = delete;

  /// Owner only: append at the bottom.
  void push(T value) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    Ring* ring = ring_.load(std::memory_order_relaxed);
    if (b - t >= ring->capacity) ring = grow(ring, t, b);
    ring->put(b, value);
    bottom_.store(b + 1, std::memory_order_seq_cst);
  }

  /// Owner only: take the most recently pushed element (LIFO).
  std::optional<T> pop() {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Ring* ring = ring_.load(std::memory_order_relaxed);
    bottom_.store(b, std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    if (t > b) {  // empty: restore the canonical empty state
      bottom_.store(b + 1, std::memory_order_seq_cst);
      return std::nullopt;
    }
    T value = ring->get(b);
    if (t == b) {
      // Last element: race against thieves for it via top_.
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_seq_cst)) {
        bottom_.store(b + 1, std::memory_order_seq_cst);
        return std::nullopt;  // a thief won
      }
      bottom_.store(b + 1, std::memory_order_seq_cst);
    }
    return value;
  }

  /// Any thread: take the oldest element (FIFO).
  std::optional<T> steal() {
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) return std::nullopt;
    Ring* ring = ring_.load(std::memory_order_acquire);
    T value = ring->get(t);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_seq_cst)) {
      return std::nullopt;  // lost the race; caller retries or moves on
    }
    return value;
  }

  /// Racy size estimate — scheduling heuristics only.
  [[nodiscard]] std::size_t size_estimate() const {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }

 private:
  struct Ring {
    explicit Ring(std::int64_t cap)
        : capacity(cap), mask(cap - 1),
          slots(std::make_unique<std::atomic<T>[]>(
              static_cast<std::size_t>(cap))) {}
    const std::int64_t capacity;
    const std::int64_t mask;
    std::unique_ptr<std::atomic<T>[]> slots;

    void put(std::int64_t i, T value) {
      slots[static_cast<std::size_t>(i & mask)].store(
          value, std::memory_order_relaxed);
    }
    T get(std::int64_t i) const {
      return slots[static_cast<std::size_t>(i & mask)].load(
          std::memory_order_relaxed);
    }
  };

  static std::int64_t round_up(std::size_t requested) {
    std::int64_t cap = 8;
    while (cap < static_cast<std::int64_t>(requested)) cap *= 2;
    return cap;
  }

  /// Owner only, from push(): install a ring twice the size.  The old ring
  /// stays alive (thieves may still hold its pointer) until destruction.
  Ring* grow(Ring* old, std::int64_t t, std::int64_t b) {
    auto bigger = std::make_unique<Ring>(old->capacity * 2);
    for (std::int64_t i = t; i < b; ++i) bigger->put(i, old->get(i));
    Ring* raw = bigger.get();
    rings_.push_back(std::move(bigger));
    ring_.store(raw, std::memory_order_release);
    return raw;
  }

  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};
  std::atomic<Ring*> ring_{nullptr};
  std::vector<std::unique_ptr<Ring>> rings_;  ///< owner-only; frees at ~
};

}  // namespace rooftune::util
