#include "util/clock.hpp"

#include <algorithm>
#include <chrono>
#include <mutex>

namespace rooftune::util {

Seconds WallClock::now() const {
  const auto t = std::chrono::steady_clock::now().time_since_epoch();
  return Seconds{std::chrono::duration<double>(t).count()};
}

Seconds calibrate_clock_overhead(const Clock& clock, std::size_t batch,
                                 std::size_t repeats) {
  if (batch == 0) batch = 1;
  if (repeats == 0) repeats = 1;
  Seconds best{0.0};
  bool have = false;
  for (std::size_t r = 0; r < repeats; ++r) {
    const Seconds start = clock.now();
    Seconds end = start;
    for (std::size_t i = 0; i < batch; ++i) end = clock.now();
    // `batch` calls elapsed between the readings of `start` and `end`
    // (the final call *is* the end reading).
    const Seconds estimate = (end - start) / static_cast<double>(batch);
    if (!have || estimate < best) {
      best = estimate;
      have = true;
    }
  }
  return std::max(best, Seconds{0.0});
}

Seconds WallClock::overhead() const {
  static const Seconds calibrated = [] {
    const WallClock probe;
    return calibrate_clock_overhead(probe);
  }();
  return calibrated;
}

}  // namespace rooftune::util
