#include "util/clock.hpp"

#include <chrono>

namespace rooftune::util {

Seconds WallClock::now() const {
  const auto t = std::chrono::steady_clock::now().time_since_epoch();
  return Seconds{std::chrono::duration<double>(t).count()};
}

}  // namespace rooftune::util
