#include "util/env.hpp"

#include <cstdlib>

#include "util/strings.hpp"

namespace rooftune::util {

std::optional<std::string> env_string(const std::string& name) {
  const char* value = std::getenv(name.c_str());
  if (value == nullptr || *value == '\0') return std::nullopt;
  return std::string(value);
}

std::optional<AffinityPolicy> affinity_from_environment() {
  if (const auto kmp = env_string("KMP_AFFINITY")) {
    const std::string lower = to_lower(*kmp);
    // KMP_AFFINITY is a comma-separated list of modifiers + a type; the
    // types "compact" and "close" keep threads together, "scatter" and
    // "spread" distribute them.
    if (lower.find("spread") != std::string::npos ||
        lower.find("scatter") != std::string::npos) {
      return AffinityPolicy::Spread;
    }
    if (lower.find("close") != std::string::npos ||
        lower.find("compact") != std::string::npos) {
      return AffinityPolicy::Close;
    }
  }
  if (const auto omp = env_string("OMP_PROC_BIND")) {
    const std::string lower = to_lower(trim(*omp));
    if (lower == "spread") return AffinityPolicy::Spread;
    if (lower == "close" || lower == "master" || lower == "primary") {
      return AffinityPolicy::Close;
    }
  }
  return std::nullopt;
}

std::optional<int> threads_from_environment() {
  const auto value = env_string("OMP_NUM_THREADS");
  if (!value) return std::nullopt;
  try {
    const int threads = std::stoi(trim(*value));
    if (threads >= 1) return threads;
  } catch (const std::exception&) {
    // fall through: unparsable counts are treated as unset
  }
  return std::nullopt;
}

}  // namespace rooftune::util
