#pragma once
// Environment-variable integration for native runs.
//
// The paper controls thread placement with KMP_AFFINITY=close/spread (§III).
// The native backends honour the same convention: the default affinity
// policy is read from KMP_AFFINITY (Intel runtime spelling) or
// OMP_PROC_BIND (the standard OpenMP spelling), so `rooftune --native`
// behaves like the paper's tool under the same job scripts.

#include <optional>
#include <string>

#include "util/affinity.hpp"

namespace rooftune::util {

/// Value of an environment variable, or nullopt when unset/empty.
std::optional<std::string> env_string(const std::string& name);

/// Affinity policy implied by the environment:
///  * KMP_AFFINITY containing "close" or "spread" (possibly with modifiers,
///    e.g. "granularity=fine,compact" maps close-like "compact" to Close);
///  * otherwise OMP_PROC_BIND = close|spread|master (master -> Close);
///  * nullopt when neither is set or recognized.
std::optional<AffinityPolicy> affinity_from_environment();

/// OMP_NUM_THREADS as an integer, when set and valid.
std::optional<int> threads_from_environment();

}  // namespace rooftune::util
