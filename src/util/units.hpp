#pragma once
// Strong unit types used throughout rooftune.
//
// The benchmarking pipeline mixes quantities that are all "double" at the
// machine level — seconds, bytes, FLOP counts, GFLOP/s, GB/s — and mixing
// them up silently is a classic source of wrong speedup tables.  Each
// quantity gets a tiny strong type with only the arithmetic that makes
// dimensional sense.  The types are aggregates of one double and compile to
// nothing.

#include <cstdint>
#include <string>

namespace rooftune::util {

/// A span of time in seconds.  Virtual and wall clocks both report Seconds.
struct Seconds {
  double value{0.0};

  constexpr Seconds() = default;
  constexpr explicit Seconds(double s) : value(s) {}

  constexpr Seconds operator+(Seconds o) const { return Seconds{value + o.value}; }
  constexpr Seconds operator-(Seconds o) const { return Seconds{value - o.value}; }
  constexpr Seconds& operator+=(Seconds o) { value += o.value; return *this; }
  constexpr Seconds operator*(double f) const { return Seconds{value * f}; }
  constexpr Seconds operator/(double f) const { return Seconds{value / f}; }
  constexpr double operator/(Seconds o) const { return value / o.value; }
  constexpr auto operator<=>(const Seconds&) const = default;
};

/// A byte count (memory traffic, working-set size, buffer size).
struct Bytes {
  std::uint64_t value{0};

  constexpr Bytes() = default;
  constexpr explicit Bytes(std::uint64_t b) : value(b) {}

  constexpr Bytes operator+(Bytes o) const { return Bytes{value + o.value}; }
  constexpr Bytes operator*(std::uint64_t f) const { return Bytes{value * f}; }
  constexpr auto operator<=>(const Bytes&) const = default;

  static constexpr Bytes KiB(std::uint64_t n) { return Bytes{n * 1024ull}; }
  static constexpr Bytes MiB(std::uint64_t n) { return Bytes{n * 1024ull * 1024ull}; }
  static constexpr Bytes GiB(std::uint64_t n) { return Bytes{n * 1024ull * 1024ull * 1024ull}; }
};

/// A count of double-precision floating-point operations.
struct Flops {
  double value{0.0};

  constexpr Flops() = default;
  constexpr explicit Flops(double f) : value(f) {}

  constexpr Flops operator+(Flops o) const { return Flops{value + o.value}; }
  constexpr auto operator<=>(const Flops&) const = default;
};

/// Compute rate in GFLOP/s — the Y axis of the roofline graph.
struct GFlops {
  double value{0.0};

  constexpr GFlops() = default;
  constexpr explicit GFlops(double g) : value(g) {}
  constexpr auto operator<=>(const GFlops&) const = default;
};

/// Memory bandwidth in GB/s (decimal GB, as STREAM and vendors report it).
struct GBps {
  double value{0.0};

  constexpr GBps() = default;
  constexpr explicit GBps(double g) : value(g) {}
  constexpr auto operator<=>(const GBps&) const = default;
};

/// Operational intensity in FLOP/byte — the X axis of the roofline graph.
struct Intensity {
  double value{0.0};

  constexpr Intensity() = default;
  constexpr explicit Intensity(double i) : value(i) {}
  constexpr auto operator<=>(const Intensity&) const = default;
};

/// GFLOP/s achieved when `flops` of work took `elapsed` time.
constexpr GFlops rate(Flops flops, Seconds elapsed) {
  return GFlops{flops.value / 1e9 / elapsed.value};
}

/// GB/s achieved when `traffic` bytes moved in `elapsed` time.
constexpr GBps bandwidth(Bytes traffic, Seconds elapsed) {
  return GBps{static_cast<double>(traffic.value) / 1e9 / elapsed.value};
}

/// Operational intensity of a kernel: work over memory traffic (Eq. 1).
constexpr Intensity intensity(Flops work, Bytes traffic) {
  return Intensity{work.value / static_cast<double>(traffic.value)};
}

/// "3KiB", "768MiB", "1.5GiB", "4096" → Bytes.  Throws std::invalid_argument
/// on malformed input.  Accepted suffixes: B, KiB/K, MiB/M, GiB/G (binary).
Bytes parse_bytes(const std::string& text);

/// Human-readable byte count, e.g. "768.0 MiB".
std::string format_bytes(Bytes b);

/// "12.5ms" / "3.42s" / "2m07s" style duration formatting.
std::string format_seconds(Seconds s);

}  // namespace rooftune::util
