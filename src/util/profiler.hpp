#pragma once
// util/profiler.hpp — the span-based self-profiler behind `--profile`.
//
// The tuner's own accounting (setup/kernel sums, SchedulerStats counters)
// says *how much* time went where; this profiler says *when*: RAII scopes
// write (start, end) steady-clock tick pairs into per-thread fixed-capacity
// lanes, which the CLI merges into a Chrome trace-event JSON sidecar at run
// end (src/trace/profile_export.hpp).  Like the telemetry sidecar, profile
// data is wall-clock and lives strictly outside the trace journal's
// byte-identity boundary — enabling the profiler never changes a journal
// byte.
//
// Cost model: disabled (the default), every hot-path call is one relaxed
// atomic load and a branch — no allocation, no clock read.  Enabled, a span
// is two steady_clock reads plus one bounds-checked append into a lane the
// thread owns exclusively; a full lane counts drops instead of reallocating.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace rooftune::util {

/// Where a profile record came from.  Span categories cover an interval;
/// instant categories mark a point (end_ns == start_ns).  The names feed
/// the Chrome trace "name"/"cat" fields and the `rooftune profile` report,
/// so they are part of the sidecar schema (docs/observability.md).
enum class ProfileCategory : std::uint8_t {
  // Spans.
  TaskExec = 0,      ///< pool task body (one config / racing invocation)
  PoolIdle,          ///< worker failed-acquire + park interval
  Setup,             ///< backend begin_invocation / end_invocation
  Kernel,            ///< the timed kernel iteration loop
  CommitWait,        ///< coordinator waiting on the in-order commit frontier
  RacingRound,       ///< one racing round, dispatch through conclude
  SurrogateSeed,     ///< surrogate seed-batch evaluation
  SurrogateFit,      ///< surrogate model fit + full-space prune
  SurrogateConfirm,  ///< surrogate confirm race
  JournalFlush,      ///< trace journal serialization + write
  Checkpoint,        ///< checkpoint file write + rename
  // Instants.
  Steal,             ///< worker acquired a task from another worker
  Park,              ///< worker went to sleep on the pool condition variable
  Incumbent,         ///< the committed incumbent improved
  CounterPrune,      ///< counter-guided prune retired a configuration
  Epoch,             ///< pipeline commit frontier crossed an epoch boundary
};

inline constexpr std::size_t kProfileCategoryCount = 16;

/// Schema name of a category ("task-exec", "kernel", ...).
const char* to_string(ProfileCategory category);

/// True for point events (Steal, Park, Incumbent, CounterPrune, Epoch).
bool profile_category_is_instant(ProfileCategory category);

/// Parse a schema name back to its category; false when unknown.
bool profile_category_from_string(const std::string& name,
                                  ProfileCategory& out);

/// One event.  Ticks are nanoseconds since the profiler was enabled, from
/// the same steady clock on every thread.  `weight` carries the
/// backend-reported seconds for Setup/Kernel spans (simulated backends
/// report simulated time, so host ticks and report sums need separate
/// fields for the cross-check); 0 elsewhere.  `arg` is a category-specific
/// ordinal (config index, worker, epoch).
struct ProfileRecord {
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
  std::uint64_t arg = 0;
  double weight = 0.0;
  ProfileCategory category = ProfileCategory::TaskExec;
};

/// One thread's merged records, in append (end-time) order.
struct ProfileLane {
  std::string thread_name;
  std::uint64_t dropped = 0;
  std::vector<ProfileRecord> records;
};

struct ProfileSnapshot {
  std::vector<ProfileLane> lanes;
  /// Calibrated per-record cost (clock reads + append), measured at
  /// enable(); the report's self-overhead estimate is records × this.
  double overhead_ns_per_record = 0.0;

  [[nodiscard]] std::uint64_t total_records() const;
  [[nodiscard]] std::uint64_t total_dropped() const;
};

/// Process-wide profiler singleton.  enable()/snapshot()/disable() are
/// coordinator-side (not thread-safe against in-flight recording from live
/// worker threads — callers snapshot after the pool is destroyed, which is
/// how the CLI sequences it); record()/instant()/span are safe from any
/// thread concurrently.
class Profiler {
 public:
  static constexpr std::size_t kDefaultLaneCapacity = 1u << 16;

  struct Lane;  ///< per-thread storage; defined in profiler.cpp

  static Profiler& instance();

  /// Drop all previous lanes, re-arm, and restart the tick epoch.
  void enable(std::size_t lane_capacity = kDefaultLaneCapacity);
  void disable();
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Nanoseconds since enable() on the shared steady clock.
  [[nodiscard]] std::uint64_t now_ns() const;
  /// Convert a raw steady_clock reading (taken for other accounting) to
  /// profiler ticks, so instrumentation can reuse existing clock reads.
  [[nodiscard]] std::uint64_t to_ticks(
      std::chrono::steady_clock::time_point tp) const;

  /// Append a span record to the calling thread's lane.  No-op when
  /// disabled.
  void record(ProfileCategory category, std::uint64_t start_ns,
              std::uint64_t end_ns, double weight = 0.0, std::uint64_t arg = 0);
  /// Append a point event at now.
  void instant(ProfileCategory category, std::uint64_t arg = 0);
  /// Name the calling thread's lane ("coordinator", "worker-3").  No-op
  /// when disabled.
  void set_thread_name(const std::string& name);

  /// Merge every lane.  Threads that recorded must be quiescent (joined or
  /// provably idle); lanes appear in registration order.
  [[nodiscard]] ProfileSnapshot snapshot() const;

 private:
  Profiler() = default;
  Lane* lane_for_this_thread();

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> generation_{0};
  std::chrono::steady_clock::time_point epoch_{};
  double overhead_ns_per_record_ = 0.0;

  mutable std::mutex lanes_mutex_;
  std::vector<std::unique_ptr<Lane>> lanes_;
  std::size_t lane_capacity_ = kDefaultLaneCapacity;
};

/// RAII span: reads the clock at construction and records on finish() or
/// destruction.  Constructing while the profiler is disabled costs one
/// branch and records nothing.
class ProfileSpan {
 public:
  ProfileSpan() = default;  ///< inactive span
  explicit ProfileSpan(ProfileCategory category, std::uint64_t arg = 0);
  ~ProfileSpan() { finish(); }

  ProfileSpan(const ProfileSpan&) = delete;
  ProfileSpan& operator=(const ProfileSpan&) = delete;

  /// Record the span now (idempotent).  `weight` carries backend-reported
  /// seconds for the cross-check categories.
  void finish(double weight = 0.0);
  [[nodiscard]] bool active() const { return active_; }

 private:
  std::uint64_t start_ns_ = 0;
  std::uint64_t arg_ = 0;
  ProfileCategory category_ = ProfileCategory::TaskExec;
  bool active_ = false;
};

}  // namespace rooftune::util
