#pragma once
// Minimal JSON document writer for machine-readable tuning reports.
//
// The tuner exports its results (best configuration, per-configuration
// statistics, stop reasons) as JSON; a full JSON parser is out of scope —
// the writer is enough for interchange and is tested for valid escaping.

#include <sstream>
#include <string>
#include <vector>

namespace rooftune::util {

/// Streaming JSON writer producing compact, valid output.
/// Usage mirrors the document structure:
///
///   JsonWriter w;
///   w.begin_object();
///   w.key("name").value("dgemm");
///   w.key("dims").begin_array().value(1000).value(4096).end_array();
///   w.end_object();
///   std::string doc = w.str();
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emit an object key; must be followed by exactly one value.
  JsonWriter& key(const std::string& name);

  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v) { return value(std::string(v)); }
  JsonWriter& value(double v);
  /// Round-trip-exact double (%.17g): parse → re-serialize reproduces the
  /// bytes, which the export format's re-export stability rests on.  The
  /// default value(double) stays at %.12g — report files are for humans.
  JsonWriter& value_exact(double v);
  JsonWriter& value(long long v);
  JsonWriter& value(unsigned long long v);
  JsonWriter& value(int v) { return value(static_cast<long long>(v)); }
  JsonWriter& value(std::size_t v) { return value(static_cast<unsigned long long>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// Splice a pre-serialized JSON document in value position (e.g. a nested
  /// SearchSpace::to_json()).  The caller guarantees `json` is valid JSON;
  /// no validation is performed.
  JsonWriter& raw_value(const std::string& json);

  [[nodiscard]] std::string str() const { return out_.str(); }

  static std::string escape(const std::string& raw);

 private:
  void before_value();

  std::ostringstream out_;
  // Stack of container states: true = needs comma before next element.
  std::vector<bool> needs_comma_;
  bool after_key_ = false;
};

}  // namespace rooftune::util
