#pragma once
// Lightweight leveled logger.
//
// The tuner logs per-configuration progress at Debug, per-technique summary
// at Info.  Logging goes through a single global sink so tests can capture
// it; the hot measurement loop never logs.

#include <functional>
#include <sstream>
#include <string>

namespace rooftune::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

const char* to_string(LogLevel level);

/// Process-wide logger configuration.
class Log {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  /// Minimum level that is emitted (default Warn so benches stay quiet).
  static void set_level(LogLevel level);
  static LogLevel level();

  /// Replace the sink (default writes "[LEVEL] message" to stderr).
  /// Returns the previous sink so tests can restore it.
  static Sink set_sink(Sink sink);

  static void write(LogLevel level, const std::string& message);
};

namespace detail {
/// Builds the message lazily; only stringifies when the level is enabled.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level), enabled_(level >= Log::level()) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() {
    if (enabled_) Log::write(level_, stream_.str());
  }

  template <typename T>
  LogLine& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};
}  // namespace detail

inline detail::LogLine log_debug() { return detail::LogLine(LogLevel::Debug); }
inline detail::LogLine log_info() { return detail::LogLine(LogLevel::Info); }
inline detail::LogLine log_warn() { return detail::LogLine(LogLevel::Warn); }
inline detail::LogLine log_error() { return detail::LogLine(LogLevel::Error); }

}  // namespace rooftune::util
