#pragma once
// ASCII table renderer: every bench binary prints its paper table with this
// so the output format matches across experiments.

#include <string>
#include <vector>

namespace rooftune::util {

/// Column alignment within a rendered table.
enum class Align { Left, Right };

/// Accumulates rows, then renders with column widths fitted to content:
///
///   +-----------+---------+
///   | Technique |    Time |
///   +-----------+---------+
///   | Default   | 3435.7s |
///   +-----------+---------+
class TextTable {
 public:
  /// Define columns; must be called before adding rows.
  void columns(const std::vector<std::string>& names,
               const std::vector<Align>& aligns = {});

  void add_row(const std::vector<std::string>& cells);

  /// A horizontal separator line between row groups.
  void add_separator();

  [[nodiscard]] std::string render() const;

  [[nodiscard]] std::size_t row_count() const { return body_rows_; }

 private:
  struct Row {
    bool separator = false;
    std::vector<std::string> cells;
  };

  std::vector<std::string> names_;
  std::vector<Align> aligns_;
  std::vector<Row> rows_;
  std::size_t body_rows_ = 0;
};

}  // namespace rooftune::util
