#include "util/json_parse.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

namespace rooftune::util {

// ---- JsonValue accessors -----------------------------------------------------

namespace {
[[noreturn]] void type_error(const char* wanted) {
  throw std::runtime_error(std::string("JsonValue: not a ") + wanted);
}
}  // namespace

bool JsonValue::as_bool() const {
  if (type_ != Type::Boolean) type_error("boolean");
  return bool_;
}

double JsonValue::as_number() const {
  if (type_ != Type::Number) type_error("number");
  return number_;
}

std::int64_t JsonValue::as_int() const {
  const double n = as_number();
  if (std::floor(n) != n) throw std::runtime_error("JsonValue: number is not integral");
  return static_cast<std::int64_t>(n);
}

const std::string& JsonValue::as_string() const {
  if (type_ != Type::String) type_error("string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::as_array() const {
  if (type_ != Type::Array) type_error("array");
  return array_;
}

const std::map<std::string, JsonValue>& JsonValue::as_object() const {
  if (type_ != Type::Object) type_error("object");
  return object_;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const auto& obj = as_object();
  const auto it = obj.find(key);
  if (it == obj.end()) throw std::out_of_range("JsonValue: missing key '" + key + "'");
  return it->second;
}

bool JsonValue::has(const std::string& key) const {
  return type_ == Type::Object && object_.contains(key);
}

const JsonValue& JsonValue::at(std::size_t index) const {
  const auto& arr = as_array();
  if (index >= arr.size()) throw std::out_of_range("JsonValue: index out of range");
  return arr[index];
}

std::size_t JsonValue::size() const {
  if (type_ == Type::Array) return array_.size();
  if (type_ == Type::Object) return object_.size();
  type_error("container");
}

// ---- parser -------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw std::invalid_argument("parse_json at offset " + std::to_string(pos_) +
                                ": " + message);
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (take() != c) {
      --pos_;
      fail(std::string("expected '") + c + "'");
    }
  }

  bool consume_literal(const char* literal) {
    std::size_t len = 0;
    while (literal[len] != '\0') ++len;
    if (text_.compare(pos_, len, literal) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    skip_whitespace();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue(parse_string());
      case 't':
        if (consume_literal("true")) return JsonValue(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return JsonValue(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return JsonValue();
        fail("invalid literal");
      default:
        if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
          return parse_number();
        }
        fail("unexpected character");
    }
  }

  JsonValue parse_object() {
    expect('{');
    std::map<std::string, JsonValue> members;
    skip_whitespace();
    if (peek() == '}') {
      take();
      return JsonValue(std::move(members));
    }
    for (;;) {
      skip_whitespace();
      if (peek() != '"') fail("expected object key string");
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      members.emplace(std::move(key), parse_value());
      skip_whitespace();
      const char c = take();
      if (c == '}') break;
      if (c != ',') {
        --pos_;
        fail("expected ',' or '}' in object");
      }
    }
    return JsonValue(std::move(members));
  }

  JsonValue parse_array() {
    expect('[');
    std::vector<JsonValue> elements;
    skip_whitespace();
    if (peek() == ']') {
      take();
      return JsonValue(std::move(elements));
    }
    for (;;) {
      elements.push_back(parse_value());
      skip_whitespace();
      const char c = take();
      if (c == ']') break;
      if (c != ',') {
        --pos_;
        fail("expected ',' or ']' in array");
      }
    }
    return JsonValue(std::move(elements));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      const char c = take();
      if (c == '"') break;
      if (c == '\\') {
        const char esc = take();
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = take();
              code <<= 4;
              if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
              else fail("invalid \\u escape");
            }
            // UTF-8 encode the BMP code point (surrogate pairs unsupported —
            // checkpoint files never contain them).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            --pos_;
            fail("invalid escape character");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      } else {
        out += c;
      }
    }
    return out;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') take();
    if (!std::isdigit(static_cast<unsigned char>(peek()))) fail("invalid number");
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        fail("digits required after decimal point");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        fail("digits required in exponent");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    try {
      return JsonValue(std::stod(text_.substr(start, pos_ - start)));
    } catch (const std::out_of_range&) {
      // e.g. "1e99999": syntactically valid JSON but unrepresentable.
      fail("number out of double range");
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(const std::string& text) {
  return Parser(text).parse_document();
}

std::string parse_error_location(const std::string& text,
                                 const std::string& error_what) {
  const std::string marker = "at offset ";
  const auto pos = error_what.find(marker);
  if (pos == std::string::npos) return {};
  const std::size_t offset = static_cast<std::size_t>(
      std::strtoull(error_what.c_str() + pos + marker.size(), nullptr, 10));
  std::size_t line = 1;
  std::size_t column = 1;
  for (std::size_t i = 0; i < offset && i < text.size(); ++i) {
    if (text[i] == '\n') {
      ++line;
      column = 1;
    } else {
      ++column;
    }
  }
  return " (line " + std::to_string(line) + ", column " +
         std::to_string(column) + ")";
}

}  // namespace rooftune::util
