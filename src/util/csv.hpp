#pragma once
// Minimal CSV writing/reading for experiment artifacts.
//
// Every bench binary exports its table/figure data as CSV next to the
// human-readable output so plots can be regenerated with any plotting tool.

#include <iosfwd>
#include <string>
#include <vector>

namespace rooftune::util {

/// Streaming CSV writer with RFC-4180-style quoting.
class CsvWriter {
 public:
  /// Writes to the given stream; the stream must outlive the writer.
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  /// Write a header row.  May be called once, before any data row.
  void header(const std::vector<std::string>& names);

  /// Begin accumulating a row cell by cell.
  CsvWriter& cell(const std::string& value);
  CsvWriter& cell(double value);
  CsvWriter& cell(long long value);
  CsvWriter& cell(unsigned long long value);
  CsvWriter& cell(int value) { return cell(static_cast<long long>(value)); }
  CsvWriter& cell(std::size_t value) { return cell(static_cast<unsigned long long>(value)); }

  /// Terminate the current row.
  void end_row();

  /// Convenience: write a full row of preformatted cells.
  void row(const std::vector<std::string>& cells);

  [[nodiscard]] std::size_t rows_written() const { return rows_; }

 private:
  void raw_cell(const std::string& escaped);
  static std::string escape(const std::string& value);

  std::ostream* out_;
  bool row_open_ = false;
  std::size_t rows_ = 0;
};

/// Parse CSV text into rows of cells (handles quoted cells and embedded
/// commas/newlines).  Intended for tests and small experiment files.
std::vector<std::vector<std::string>> parse_csv(const std::string& text);

}  // namespace rooftune::util
