#pragma once
// Minimal JSON parser — the read side of util/json.hpp's writer.
//
// Exists so tuning checkpoints (core/session.hpp) can be restored.  Parses
// the full JSON grammar (objects, arrays, strings with escapes, numbers,
// booleans, null) into an immutable JsonValue tree.  Not performance
// critical; clarity over speed.

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace rooftune::util {

class JsonValue {
 public:
  enum class Type { Null, Boolean, Number, String, Array, Object };

  JsonValue() : type_(Type::Null) {}
  explicit JsonValue(bool b) : type_(Type::Boolean), bool_(b) {}
  explicit JsonValue(double n) : type_(Type::Number), number_(n) {}
  explicit JsonValue(std::string s) : type_(Type::String), string_(std::move(s)) {}
  explicit JsonValue(std::vector<JsonValue> a)
      : type_(Type::Array), array_(std::move(a)) {}
  explicit JsonValue(std::map<std::string, JsonValue> o)
      : type_(Type::Object), object_(std::move(o)) {}

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::Null; }

  /// Typed accessors; throw std::runtime_error on type mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<JsonValue>& as_array() const;
  [[nodiscard]] const std::map<std::string, JsonValue>& as_object() const;

  /// Object member access; throws std::out_of_range for missing keys.
  [[nodiscard]] const JsonValue& at(const std::string& key) const;
  [[nodiscard]] bool has(const std::string& key) const;

  /// Array element access; throws std::out_of_range.
  [[nodiscard]] const JsonValue& at(std::size_t index) const;
  [[nodiscard]] std::size_t size() const;

 private:
  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

/// Parse a complete JSON document.  Throws std::invalid_argument with a
/// byte offset on malformed input (including trailing garbage).
JsonValue parse_json(const std::string& text);

/// Translate the "at offset N" in a parse_json error message into a
/// " (line L, column C)" suffix against the original text, for error
/// messages about hand-edited files.  Empty when no offset is present.
std::string parse_error_location(const std::string& text,
                                 const std::string& error_what);

}  // namespace rooftune::util
