#pragma once
// Small string helpers shared by the CLI and report formatting.

#include <string>
#include <vector>

namespace rooftune::util {

/// Split on a delimiter; empty fields are preserved.
std::vector<std::string> split(const std::string& text, char delimiter);

/// Strip leading/trailing ASCII whitespace.
std::string trim(const std::string& text);

/// ASCII lowercase copy.
std::string to_lower(const std::string& text);

bool starts_with(const std::string& text, const std::string& prefix);

/// printf-style formatting into std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// "1234567.8" → "1,234,567.8" (thousands separators for report tables).
std::string with_thousands(double value, int decimals);

}  // namespace rooftune::util
