#include "util/strings.hpp"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace rooftune::util {

std::vector<std::string> split(const std::string& text, char delimiter) {
  std::vector<std::string> parts;
  std::string current;
  for (char c : text) {
    if (c == delimiter) {
      parts.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  parts.push_back(current);
  return parts;
}

std::string trim(const std::string& text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return text.substr(begin, end - begin);
}

std::string to_lower(const std::string& text) {
  std::string out = text;
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool starts_with(const std::string& text, const std::string& prefix) {
  return text.size() >= prefix.size() && text.compare(0, prefix.size(), prefix) == 0;
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed) + 1);
    std::vsnprintf(out.data(), out.size(), fmt, args);
    out.resize(static_cast<std::size_t>(needed));
  }
  va_end(args);
  return out;
}

std::string with_thousands(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
  std::string digits = buf;
  const std::size_t dot = digits.find('.');
  std::size_t int_end = (dot == std::string::npos) ? digits.size() : dot;
  std::size_t int_begin = (!digits.empty() && digits[0] == '-') ? 1 : 0;
  std::string out = digits.substr(0, int_begin);
  const std::size_t n = int_end - int_begin;
  for (std::size_t i = 0; i < n; ++i) {
    if (i != 0 && (n - i) % 3 == 0) out += ',';
    out += digits[int_begin + i];
  }
  out += digits.substr(int_end);
  return out;
}

}  // namespace rooftune::util
