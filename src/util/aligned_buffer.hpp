#pragma once
// Cache-line/SIMD aligned owning buffer for kernel operands.
//
// DGEMM packing buffers and STREAM vectors need 64-byte alignment so the
// compiler's auto-vectorized loops can use aligned loads; std::vector does
// not guarantee that.  RAII, move-only, zero-overhead access via span-style
// data()/size().

#include <cstddef>
#include <cstdlib>
#include <new>
#include <utility>

namespace rooftune::util {

template <typename T>
class AlignedBuffer {
 public:
  static constexpr std::size_t alignment = 64;

  AlignedBuffer() = default;

  explicit AlignedBuffer(std::size_t count) : size_(count) {
    if (count == 0) return;
    // Guard count * sizeof(T) (and the alignment round-up below) against
    // overflow: a wrapped size would allocate a tiny block and hand out a
    // huge logical extent.
    constexpr std::size_t max_count =
        (~std::size_t{0} - (alignment - 1)) / sizeof(T);
    if (count > max_count) throw std::bad_alloc();
    // Aligned size must be a multiple of the alignment for std::aligned_alloc.
    const std::size_t bytes = ((count * sizeof(T) + alignment - 1) / alignment) * alignment;
    data_ = static_cast<T*>(std::aligned_alloc(alignment, bytes));
    if (data_ == nullptr) throw std::bad_alloc();
  }

  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  AlignedBuffer(AlignedBuffer&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)), size_(std::exchange(other.size_, 0)) {}

  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      release();
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
    }
    return *this;
  }

  ~AlignedBuffer() { release(); }

  [[nodiscard]] T* data() { return data_; }
  [[nodiscard]] const T* data() const { return data_; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }

  [[nodiscard]] T* begin() { return data_; }
  [[nodiscard]] T* end() { return data_ + size_; }
  [[nodiscard]] const T* begin() const { return data_; }
  [[nodiscard]] const T* end() const { return data_ + size_; }

 private:
  void release() {
    std::free(data_);
    data_ = nullptr;
    size_ = 0;
  }

  T* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace rooftune::util
