#include "util/log.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace rooftune::util {

namespace {

std::atomic<LogLevel> g_level{LogLevel::Warn};
std::mutex g_sink_mutex;

Log::Sink& sink_storage() {
  static Log::Sink sink = [](LogLevel level, const std::string& message) {
    std::cerr << '[' << to_string(level) << "] " << message << '\n';
  };
  return sink;
}

}  // namespace

const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

void Log::set_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel Log::level() { return g_level.load(std::memory_order_relaxed); }

Log::Sink Log::set_sink(Sink sink) {
  std::lock_guard lock(g_sink_mutex);
  Sink previous = std::move(sink_storage());
  sink_storage() = std::move(sink);
  return previous;
}

void Log::write(LogLevel level, const std::string& message) {
  std::lock_guard lock(g_sink_mutex);
  if (sink_storage()) sink_storage()(level, message);
}

}  // namespace rooftune::util
