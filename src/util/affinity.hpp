#pragma once
// Thread affinity policy, mirroring the paper's use of KMP_AFFINITY.
//
// §III-A: DGEMM uses KMP_AFFINITY=close to keep data near the executing
// socket; §III-B: TRIAD uses spread to load all memory channels, except for
// single-socket bandwidth where close confines traffic to one socket's
// channels.  The simulator interprets the policy analytically; the native
// backend maps it to OpenMP runtime hints.

#include <cstddef>
#include <string>

namespace rooftune::util {

/// How threads are laid out over sockets/cores.
enum class AffinityPolicy {
  Close,   ///< Fill cores sequentially: first N/2 threads on socket 0.
  Spread,  ///< Distribute threads round-robin over all sockets.
};

const char* to_string(AffinityPolicy policy);

/// Parse "close"/"spread" (case-insensitive); throws std::invalid_argument.
AffinityPolicy parse_affinity(const std::string& text);

/// Number of OpenMP threads the native backend will use (1 when compiled
/// without OpenMP).
int native_thread_count();

/// Apply the policy to the OpenMP runtime of this process (sets proc-bind
/// related environment for child regions; best-effort, no-op without OpenMP).
void apply_native_affinity(AffinityPolicy policy);

/// Pin the calling thread to logical CPU `cpu % hardware_concurrency`.
/// Used by core::EvalPool to pin pool workers once at construction instead
/// of per wave.  Returns false where pinning is unsupported (non-Linux) or
/// the kernel refuses (restricted sandboxes) — callers treat that as a
/// soft degrade, never an error.
bool pin_current_thread(std::size_t cpu);

}  // namespace rooftune::util
