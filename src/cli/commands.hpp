#pragma once
// The rooftune CLI subcommands, separated from main() so they can be tested.
//
//   rooftune machines                       list built-in simulated machines
//   rooftune roofline [opts]                full pipeline -> model (+ SVG)
//   rooftune dgemm [opts]                   autotune the DGEMM benchmark
//   rooftune triad [opts]                   autotune the TRIAD benchmark
//
// Common options: --machine <name> | --native, --sockets N, -t <timeout>,
// --invocations, --iterations, --technique, --min-count, --order, --seed,
// --json, --csv, --svg <file>.

#include <iosfwd>
#include <string>
#include <vector>

namespace rooftune::cli {

/// Entry point used by main(); returns the process exit code.  Output goes
/// to `out`, errors to `err` (injectable for tests).
int run_cli(const std::vector<std::string>& args, std::ostream& out, std::ostream& err);

}  // namespace rooftune::cli
