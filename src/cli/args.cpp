#include "cli/args.hpp"

#include <stdexcept>

#include "util/strings.hpp"

namespace rooftune::cli {

void ArgParser::add_option(const std::string& name, const std::string& help,
                           const std::string& short_alias) {
  specs_[name] = Spec{help, false, short_alias};
}

void ArgParser::add_flag(const std::string& name, const std::string& help) {
  specs_[name] = Spec{help, true, "", false};
}

void ArgParser::add_optional_value(const std::string& name,
                                   const std::string& help) {
  specs_[name] = Spec{help, false, "", true};
}

namespace {

/// Whole-token numeric test: decides whether the token after an
/// optional-value option is its value or the next option/positional.
bool numeric_token(const std::string& text) {
  if (text.empty()) return false;
  try {
    std::size_t consumed = 0;
    static_cast<void>(std::stod(text, &consumed));
    return consumed == text.size();
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace

void ArgParser::parse(const std::vector<std::string>& args) {
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (util::starts_with(arg, "--")) {
      std::string name = arg.substr(2);
      std::string inline_value;
      bool has_inline = false;
      if (const auto eq = name.find('='); eq != std::string::npos) {
        inline_value = name.substr(eq + 1);
        name = name.substr(0, eq);
        has_inline = true;
      }
      const auto it = specs_.find(name);
      if (it == specs_.end()) throw std::invalid_argument("unknown option --" + name);
      if (it->second.is_flag) {
        if (has_inline) throw std::invalid_argument("--" + name + " takes no value");
        values_[name] = "true";
      } else if (has_inline) {
        values_[name] = inline_value;
      } else if (it->second.optional_value) {
        if (i + 1 < args.size() && numeric_token(args[i + 1])) {
          values_[name] = args[++i];
        } else {
          values_[name] = "";
        }
      } else {
        if (i + 1 >= args.size()) throw std::invalid_argument("--" + name + " needs a value");
        values_[name] = args[++i];
      }
    } else if (arg.size() >= 2 && arg[0] == '-' && arg != "-") {
      const std::string alias = arg.substr(1);
      std::string name;
      for (const auto& [n, spec] : specs_) {
        if (spec.short_alias == alias) {
          name = n;
          break;
        }
      }
      if (name.empty()) throw std::invalid_argument("unknown option -" + alias);
      if (specs_[name].is_flag) {
        values_[name] = "true";
      } else {
        if (i + 1 >= args.size()) throw std::invalid_argument("-" + alias + " needs a value");
        values_[name] = args[++i];
      }
    } else {
      positional_.push_back(arg);
    }
  }
}

bool ArgParser::has(const std::string& name) const { return values_.contains(name); }

std::optional<std::string> ArgParser::get(const std::string& name) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string ArgParser::get_or(const std::string& name, const std::string& fallback) const {
  return get(name).value_or(fallback);
}

std::int64_t ArgParser::get_int(const std::string& name, std::int64_t fallback) const {
  const auto v = get(name);
  if (!v) return fallback;
  try {
    return std::stoll(*v);
  } catch (const std::exception&) {
    throw std::invalid_argument("--" + name + ": '" + *v + "' is not an integer");
  }
}

double ArgParser::get_double(const std::string& name, double fallback) const {
  const auto v = get(name);
  if (!v) return fallback;
  if (v->empty()) return fallback;  // bare optional-value option
  try {
    return std::stod(*v);
  } catch (const std::exception&) {
    throw std::invalid_argument("--" + name + ": '" + *v + "' is not a number");
  }
}

std::string ArgParser::help() const {
  std::string out;
  for (const auto& [name, spec] : specs_) {
    out += "  --" + name;
    if (!spec.short_alias.empty()) out += " (-" + spec.short_alias + ")";
    if (spec.optional_value) {
      out += " [value]";
    } else if (!spec.is_flag) {
      out += " <value>";
    }
    out += "\n      " + spec.help + "\n";
  }
  return out;
}

}  // namespace rooftune::cli
