#include <iostream>
#include <string>
#include <vector>

#include "cli/commands.hpp"

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  return rooftune::cli::run_cli(args, std::cout, std::cerr);
}
