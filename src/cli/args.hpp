#pragma once
// Tiny declarative command-line parser for the rooftune CLI.
//
// Supports "--name value", "--name=value", boolean "--flag", and the
// paper's short "-t <seconds>" timeout alias.  Unknown options are errors;
// positional arguments are collected in order.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace rooftune::cli {

class ArgParser {
 public:
  /// Register a value option (with optional short alias, e.g. "t").
  void add_option(const std::string& name, const std::string& help,
                  const std::string& short_alias = "");

  /// Register a boolean flag.
  void add_flag(const std::string& name, const std::string& help);

  /// Register an option whose value is optional: bare "--name" enables it
  /// (has() turns true, the stored value is empty), "--name=0.1" or
  /// "--name 0.1" supply a value.  A following token is consumed only when
  /// it parses fully as a number, so "--name --other" never swallows the
  /// next option.
  void add_optional_value(const std::string& name, const std::string& help);

  /// Parse argv (excluding the program/subcommand name).  Throws
  /// std::invalid_argument with a message on malformed input.
  void parse(const std::vector<std::string>& args);

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::optional<std::string> get(const std::string& name) const;
  [[nodiscard]] std::string get_or(const std::string& name,
                                   const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name, double fallback) const;

  [[nodiscard]] const std::vector<std::string>& positional() const { return positional_; }

  /// Usage text listing all registered options.
  [[nodiscard]] std::string help() const;

 private:
  struct Spec {
    std::string help;
    bool is_flag = false;
    std::string short_alias;
    bool optional_value = false;
  };

  std::map<std::string, Spec> specs_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace rooftune::cli
