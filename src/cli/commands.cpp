#include "cli/commands.hpp"

#include <fstream>
#include <memory>
#include <ostream>

#include "cli/args.hpp"
#include "core/autotuner.hpp"
#include "core/native_backend.hpp"
#include "core/parallel_evaluator.hpp"
#include "core/pipe_backend.hpp"
#include "core/report.hpp"
#include "core/session.hpp"
#include "core/spaces.hpp"
#include "core/techniques.hpp"
#include "roofline/advisor.hpp"
#include "roofline/builder.hpp"
#include "roofline/plot.hpp"
#include "simhw/machine.hpp"
#include "simhw/sim_backend.hpp"
#include "stream/stream.hpp"
#include "telemetry/environment.hpp"
#include "telemetry/report.hpp"
#include "telemetry/sampler.hpp"
#include "telemetry/sidecar.hpp"
#include "blas/microkernel.hpp"
#include "trace/analyze.hpp"
#include "trace/export.hpp"
#include "trace/journal.hpp"
#include "trace/profile_export.hpp"
#include "trace/reader.hpp"
#include "util/profiler.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace rooftune::cli {

namespace {

void add_common_options(ArgParser& parser) {
  parser.add_option("machine", "simulated machine name (see 'rooftune machines')");
  parser.add_flag("native", "run on the host hardware instead of a simulated machine");
  parser.add_option("sockets", "socket count for the simulated machine (default 1)");
  parser.add_option("timeout", "per-invocation kernel-time budget in seconds (default 10)", "t");
  parser.add_option("invocations", "outer-loop invocation cap (default 10)");
  parser.add_option("iterations", "inner-loop iteration cap (default 200)");
  parser.add_option("technique",
                    "default|single|confidence|c+i|c+i+r|c+i+o|c+i+o+r (default c+i+o)");
  parser.add_option("strategy",
                    "evaluation schedule: exhaustive (one config at a time, default), "
                    "racing (interleaved CI elimination, see docs/racing.md) or "
                    "surrogate (model-guided seed/fit/prune/confirm, see "
                    "docs/search-strategies.md)");
  parser.add_option("racing-min",
                    "invocations a config must have before racing may eliminate it "
                    "(default 3)");
  parser.add_option("seed-budget",
                    "surrogate: configurations in the Latin-hypercube seed batch "
                    "(default 64)");
  parser.add_option("confirm-top",
                    "surrogate: predicted-best configurations raced in the confirm "
                    "phase (default 16)");
  parser.add_option("min-count", "minimum iterations before upper-bound pruning (default 2)");
  parser.add_optional_value(
      "counter-prune",
      "abandon a configuration after its first invocations when its "
      "hardware-counter roofline bound cannot beat the incumbent; the "
      "optional value is the safety margin (default 0.25; "
      "docs/search-strategies.md).  Simulated machines derive the ceilings "
      "from the machine model; --native needs --custom-machine and "
      "--perf-counters");
  parser.add_option("counter-window",
                    "counter-prune: invocations consulted before the policy "
                    "disarms for a configuration (default 2)");
  parser.add_flag("sim-counters",
                  "simulated machines: synthesize deterministic hardware "
                  "counters (cycles/instructions/LLC misses) on every "
                  "invocation record; implied by --counter-prune");
  parser.add_option("order", "search order override: forward|reverse|random");
  parser.add_option("seed", "noise/search seed (default 2021)");
  parser.add_flag("json", "emit the full tuning report as JSON");
  parser.add_flag("csv", "emit per-configuration results as CSV");
  parser.add_flag("small-space", "use the narrowed power-of-two DGEMM space");
  parser.add_option("grid-scale",
                    "dgemm: subdivide every octave of the reduced space into this "
                    "many geometric steps (1 = the paper's 96-config grid, "
                    "6 ~ 11k configs; pairs with --strategy surrogate)");
  parser.add_option("custom-machine",
                    "hardware spec for --native utilization reporting: "
                    "name:freqGHz:cores:sockets:avx2|avx512:units:l3:dram_MTs:channels");
  parser.add_option("checkpoint",
                    "checkpoint file: persist progress after every configuration "
                    "and resume interrupted searches");
  parser.add_option("arena",
                    "workspace-arena slab reuse across invocations: on|off "
                    "(default on; off reproduces per-invocation allocation)");
  parser.add_flag("huge-pages",
                  "back arena slabs with transparent huge pages "
                  "(madvise(MADV_HUGEPAGE); see docs/performance.md)");
  parser.add_option("setup-overhead",
                    "simulated cost in seconds of materializing a fresh working "
                    "set (allocation + page faults); default 0");
  parser.add_option("thermal-tau",
                    "simulated thermal time constant in seconds: frequency "
                    "decays toward the throttle floor with this tau "
                    "(0 = no drift; docs/observability.md)");
  parser.add_option("throttle-factor",
                    "sustained-frequency floor as a fraction of base clock "
                    "under --thermal-tau (default 1.0 = no throttling)");
  parser.add_option("pkg-power",
                    "simulated package power draw in watts (synthetic RAPL "
                    "energy for telemetry spans); default 0");
  parser.add_option("dram-power",
                    "simulated DRAM power draw in watts; default 0");
  parser.add_option("workers",
                    "evaluate configurations in parallel with this many pool "
                    "workers (0 = hardware concurrency); simulated machines "
                    "only — results and journals stay bit-identical for any "
                    "worker count (docs/performance.md)");
  parser.add_option("lookahead",
                    "pipeline scheduler: epochs allowed in flight at once "
                    "(default 1 = wave-equivalent schedule; higher overlaps "
                    "epochs across stragglers); requires --workers");
  parser.add_option("sched",
                    "parallel epoch engine: pipeline (persistent "
                    "work-stealing pool, default) | wave (legacy per-epoch "
                    "thread spawn/join); requires --workers");
  parser.add_flag("pin-workers",
                  "pin pool workers to CPUs once at pool construction; "
                  "requires --workers");
  parser.add_flag("sched-stats",
                  "report scheduler accounting (tasks, steals, parks, idle "
                  "fraction) and append it to the trace journal as a "
                  "{\"t\":\"scheduler\"} record; requires --workers");
  parser.add_option("cost-skew",
                    "simulated host-cost multiplier for straggler "
                    "configurations (a fixed 1-in-8 subset sleeps this many "
                    "times longer per invocation; measured results are "
                    "unchanged — only host wall-clock varies)");
  parser.add_option("cost-base",
                    "per-invocation host cost in seconds that --cost-skew "
                    "scales (default 0.001)");
}

void add_trace_options(ArgParser& parser) {
  parser.add_option("trace",
                    "write a structured JSONL trace journal to this path; "
                    "analyze with 'rooftune trace' (docs/observability.md)");
  parser.add_option("export",
                    "write a portable tuning export (schema v1: space, "
                    "environment, per-invocation samples, best-found; "
                    "docs/formats.md) of the finished run to this path");
  parser.add_flag("perf-counters",
                  "attach hardware-counter deltas (cycles, instructions, LLC "
                  "misses) to every invocation record; requires --trace");
  parser.add_flag("telemetry",
                  "record machine telemetry (frequency/thermal/RAPL energy) "
                  "into a <trace>.telemetry.jsonl sidecar; requires --trace");
  parser.add_option("telemetry-period",
                    "background host sampling period in milliseconds "
                    "(default 100); requires --telemetry");
  parser.add_flag("energy",
                  "report the best configuration's energy efficiency "
                  "(J/GFLOP, GFLOP/s/W) from the sidecar; requires --telemetry");
  parser.add_option("profile",
                    "write a self-profile of the tuner (worker lanes, "
                    "setup/kernel spans, commit waits) to this path as "
                    "Chrome trace-event JSON — load in Perfetto or analyze "
                    "with 'rooftune profile' (docs/observability.md)");
}

/// Everything --trace/--telemetry hangs off one tuning run.  Destruction
/// order matters: the journal forwards spans into the sidecar at emit time,
/// so the sidecar member precedes the journal (destroyed after it).
struct TraceSetup {
  std::unique_ptr<telemetry::TelemetrySidecar> sidecar;
  std::unique_ptr<telemetry::TelemetrySampler> sampler;
  std::unique_ptr<trace::TraceJournal> journal;
  telemetry::EnvironmentFingerprint fingerprint;
  std::string sidecar_path;
  std::string profile_path;  ///< --profile sidecar; independent of --trace
  bool energy = false;

  explicit operator bool() const { return journal != nullptr; }
};

/// Build the journal named by --trace (if any), plus the telemetry sidecar
/// and background sampler when --telemetry asks for them, and wire the
/// journal into `options`.  `host_run` selects wall-clock telemetry (sysfs
/// span probe + sampler thread); simulated runs instead get deterministic
/// spans from the backend's drift model, keeping the sidecar byte-identical
/// across reruns and worker counts.
TraceSetup trace_setup_from(const ArgParser& parser, core::TunerOptions& options,
                            bool host_run) {
  if (parser.has("energy") && !parser.has("telemetry")) {
    throw std::invalid_argument("--energy requires --telemetry");
  }
  if (parser.get("telemetry-period").has_value() && !parser.has("telemetry")) {
    throw std::invalid_argument("--telemetry-period requires --telemetry");
  }
  TraceSetup setup;
  // --profile is its own sidecar, deliberately decoupled from --trace: the
  // profiler records host wall-clock and never touches the journal (whose
  // bytes must be identical with profiling on or off).
  if (const auto profile = parser.get("profile")) {
    if (profile->empty()) {
      throw std::invalid_argument("--profile wants a file path");
    }
    setup.profile_path = *profile;
    util::Profiler::instance().enable();
    // Serial strategies tune on this thread; parallel runs rename their
    // coordinator/worker lanes as they start.
    util::Profiler::instance().set_thread_name("main");
  }
  const auto path = parser.get("trace");
  if (!path) {
    if (parser.has("perf-counters")) {
      throw std::invalid_argument("--perf-counters requires --trace <path>");
    }
    if (parser.has("telemetry")) {
      throw std::invalid_argument("--telemetry requires --trace <path>");
    }
    return setup;
  }
  if (path->empty()) throw std::invalid_argument("--trace wants a file path");

  trace::JournalOptions journal_options;
  journal_options.path = *path;
  journal_options.perf_counters = parser.has("perf-counters");

  // Environment provenance heads every journal; its hash also stamps
  // checkpoints so a resume on different machine state is refused.
  setup.fingerprint = telemetry::EnvironmentFingerprint::capture();
  journal_options.provenance = setup.fingerprint;
  options.env_fingerprint = setup.fingerprint.stable_hash();

  if (parser.has("telemetry")) {
    setup.energy = parser.has("energy");
    setup.sidecar_path = *path + ".telemetry.jsonl";
    setup.sidecar =
        std::make_unique<telemetry::TelemetrySidecar>(setup.sidecar_path);
    journal_options.sidecar = setup.sidecar.get();
    if (host_run) {
      journal_options.span_probe = true;
      const double period_ms = parser.get_double("telemetry-period", 100.0);
      if (period_ms <= 0.0) {
        throw std::invalid_argument("--telemetry-period wants milliseconds > 0");
      }
      setup.sampler = std::make_unique<telemetry::TelemetrySampler>(
          telemetry::SysfsTelemetrySource(), period_ms / 1000.0);
      setup.sampler->start();
    }
  }

  setup.journal = std::make_unique<trace::TraceJournal>(journal_options);
  options.trace = setup.journal.get();
  options.trace_path = *path;
  return setup;
}

/// Stamp run metadata + totals into the journal, write journal + telemetry
/// sidecar, and print the end-of-run quality verdict.
void finish_trace(TraceSetup& setup, const core::TuningRun& run,
                  const std::string& benchmark, const std::string& metric,
                  const core::TunerOptions& options, std::ostream& out) {
  trace::TraceJournal& journal = *setup.journal;
  journal.begin_run({benchmark, metric, core::to_string(options.strategy)});
  trace::RunSummary summary;
  summary.configs = run.results.size();
  summary.pruned = run.pruned_configs;
  summary.invocations = run.total_invocations;
  summary.iterations = run.total_iterations;
  if (run.best_index.has_value()) summary.best = run.best_value();
  summary.scheduler = run.sched;
  journal.finish_run(summary);
  journal.flush();
  if (const char* reason = journal.perf_unavailable_reason(); *reason != '\0') {
    out << "note: perf counters unavailable: " << reason << '\n';
  }
  out << "wrote trace journal " << options.trace_path << " ("
      << journal.event_count() << " events)\n";

  if (!setup.sidecar) return;
  if (setup.sampler) {
    setup.sampler->stop();
    std::vector<telemetry::HostSample> samples;
    setup.sampler->drain(samples);
    for (const auto& sample : samples) setup.sidecar->add_host_sample(sample);
    setup.sidecar->set_sampler_stats(setup.sampler->stats());
    for (const auto& reason : setup.sampler->source().unavailable_reasons()) {
      out << "note: telemetry degraded: " << reason << '\n';
    }
  }
  setup.sidecar->flush();
  out << "wrote telemetry sidecar " << setup.sidecar_path << " ("
      << setup.sidecar->span_count() << " spans)\n";

  const telemetry::StabilityReport stability =
      telemetry::analyze_stability(telemetry::read_sidecar(setup.sidecar->str()));
  if (setup.energy) {
    const telemetry::ConfigStability* best = nullptr;
    if (run.best_index.has_value()) {
      for (const auto& c : stability.configs) {
        if (c.config_ordinal == *run.best_index && c.joules_per_gflop > 0.0) {
          best = &c;
          break;
        }
      }
    }
    if (best != nullptr) {
      out << util::format(
          "best config energy: %.3f J/GFLOP (%.3f GFLOP/s/W) over %zu "
          "invocation(s)\n",
          best->joules_per_gflop, best->gflops_per_watt, best->spans);
    } else {
      out << "note: --energy: no energy telemetry for the best configuration "
             "(RAPL unavailable or no spans recorded)\n";
    }
  }
  out << telemetry::render_run_quality(
      telemetry::assess_run_quality(setup.fingerprint, &stability));
}

/// Honor --profile <path>: snapshot the profiler's lanes and write the
/// Chrome trace-event sidecar, embedding the report's setup/kernel sums
/// (and the scheduler counters when --sched-stats collected them) so
/// `rooftune profile` can cross-check the three accountings.  Called after
/// finish_trace so the journal-flush span makes it into the timeline.
void finish_profile(TraceSetup& setup, const core::TuningRun& run,
                    const std::string& benchmark,
                    const core::TunerOptions& options, std::ostream& out) {
  if (setup.profile_path.empty()) return;
  util::Profiler& profiler = util::Profiler::instance();
  const util::ProfileSnapshot snapshot = profiler.snapshot();
  profiler.disable();
  trace::ProfileMetadata meta;
  meta.benchmark = benchmark;
  meta.strategy = core::to_string(options.strategy);
  meta.have_sums = true;
  meta.kernel_s_sum = run.total_kernel_time.value;
  meta.setup_s_sum = run.total_setup_time.value;
  meta.sched = run.sched;
  trace::write_profile_file(setup.profile_path, snapshot, std::move(meta));
  out << "wrote profile " << setup.profile_path << " ("
      << snapshot.total_records() << " records, " << snapshot.lanes.size()
      << " lanes)\n";
}

/// Honor --export <path>: serialize the finished run as a portable tuning
/// export (docs/formats.md).  Reuses the --trace fingerprint when one was
/// captured so the journal and the export describe the same environment.
void maybe_export(const ArgParser& parser, const core::TuningRun& run,
                  const core::SearchSpace& space, const std::string& benchmark,
                  const std::string& metric, const core::TunerOptions& options,
                  const TraceSetup& setup, std::ostream& out) {
  const auto path = parser.get("export");
  if (!path) return;
  if (path->empty()) throw std::invalid_argument("--export wants a file path");
  const auto env = setup ? setup.fingerprint
                         : telemetry::EnvironmentFingerprint::capture();
  const trace::ExportDocument doc =
      trace::make_export(run, space, benchmark, metric, options, env);
  trace::write_export_file(*path, doc);
  out << "wrote tuning export " << *path << " (" << doc.results.size()
      << " configuration(s))\n";
}

bool arena_enabled(const ArgParser& parser) {
  const std::string mode = util::to_lower(parser.get_or("arena", "on"));
  if (mode == "on") return true;
  if (mode == "off") return false;
  throw std::invalid_argument("--arena wants on|off, got '" + mode + "'");
}

/// Parse --workers and its satellite flags into ParallelOptions, or nullopt
/// when the run is serial.  The satellites are rejected without --workers so
/// a typo like `--sched-stats` alone does not silently do nothing.
std::optional<core::ParallelOptions> parallel_options_from(const ArgParser& parser) {
  if (!parser.get("workers").has_value()) {
    if (parser.get("lookahead").has_value()) {
      throw std::invalid_argument("--lookahead requires --workers");
    }
    if (parser.get("sched").has_value()) {
      throw std::invalid_argument("--sched requires --workers");
    }
    if (parser.has("pin-workers")) {
      throw std::invalid_argument("--pin-workers requires --workers");
    }
    if (parser.has("sched-stats")) {
      throw std::invalid_argument("--sched-stats requires --workers");
    }
    return std::nullopt;
  }
  core::ParallelOptions parallel;
  const auto workers = parser.get_int("workers", 0);
  if (workers < 0) throw std::invalid_argument("--workers must be >= 0");
  parallel.workers = static_cast<std::size_t>(workers);
  // The CLI only exposes the bit-reproducible schedule: journals and
  // results must not depend on the worker count.
  parallel.deterministic = true;
  const auto lookahead = parser.get_int("lookahead", 1);
  if (lookahead < 1) throw std::invalid_argument("--lookahead must be >= 1");
  parallel.lookahead = static_cast<std::size_t>(lookahead);
  const std::string sched = util::to_lower(parser.get_or("sched", "pipeline"));
  if (sched == "pipeline") parallel.scheduler = core::SchedulerMode::Pipeline;
  else if (sched == "wave") parallel.scheduler = core::SchedulerMode::Wave;
  else throw std::invalid_argument("--sched wants pipeline|wave, got '" + sched + "'");
  parallel.pin_workers = parser.has("pin-workers");
  parallel.sched_stats = parser.has("sched-stats");
  return parallel;
}

/// Run `tuner`-style search with optional checkpointing, or fan out over a
/// worker pool when --workers asked for one (simulated backends only —
/// `factory` stays null for --native and pipe runs, whose backends own
/// process-global state and cannot be instantiated per worker).
core::TuningRun run_search(const ArgParser& parser, const core::SearchSpace& space,
                           const core::TunerOptions& options,
                           core::Backend& backend,
                           core::ParallelEvaluator::BackendFactory factory = nullptr) {
  if (const auto parallel = parallel_options_from(parser)) {
    if (!factory) {
      throw std::invalid_argument(
          "--workers needs per-worker backend instances; --native and pipe "
          "backends own process-global state (OpenMP runtime, child "
          "processes) and only run serially");
    }
    if (parser.get("checkpoint").has_value()) {
      throw std::invalid_argument(
          "--workers does not support --checkpoint (checkpoints record the "
          "serial schedule); drop one of them");
    }
    return core::ParallelEvaluator(std::move(factory), options, *parallel)
        .run(space);
  }
  if (const auto checkpoint = parser.get("checkpoint")) {
    core::TunerOptions opts = options;
    if (opts.env_fingerprint == 0) {
      // Even untraced checkpointed runs get the environment stamp so a
      // resume on changed machine state (governor flip, different host) is
      // refused instead of silently mixing measurements.
      opts.env_fingerprint =
          telemetry::EnvironmentFingerprint::capture().stable_hash();
    }
    core::TuningSession session(space, opts, *checkpoint);
    return session.run(backend);
  }
  return core::Autotuner(space, options).run(backend);
}

core::Technique parse_technique(const std::string& text) {
  const std::string t = util::to_lower(text);
  if (t == "default") return core::Technique::Default;
  if (t == "single") return core::Technique::Single;
  if (t == "confidence" || t == "c") return core::Technique::Confidence;
  if (t == "c+i" || t == "c+inner") return core::Technique::CInner;
  if (t == "c+i+r" || t == "c+inner+r") return core::Technique::CInnerReverse;
  if (t == "c+i+o" || t == "c+i+outer") return core::Technique::CIOuter;
  if (t == "c+i+o+r") return core::Technique::CIOuterReverse;
  throw std::invalid_argument("unknown technique '" + text + "'");
}

core::TunerOptions tuner_options_from(const ArgParser& parser) {
  core::TunerOptions base;
  base.invocations = static_cast<std::uint64_t>(parser.get_int("invocations", 10));
  base.iterations = static_cast<std::uint64_t>(parser.get_int("iterations", 200));
  base.timeout = util::Seconds{parser.get_double("timeout", 10.0)};

  const auto technique = parse_technique(parser.get_or("technique", "c+i+o"));
  auto options = core::technique_options(
      technique, base, /*hand_tuned_iterations=*/0,
      static_cast<std::uint64_t>(parser.get_int("min-count", 2)));
  if (const auto order = parser.get("order")) {
    const std::string o = util::to_lower(*order);
    if (o == "forward") options.order = core::SearchOrder::Forward;
    else if (o == "reverse") options.order = core::SearchOrder::Reverse;
    else if (o == "random") options.order = core::SearchOrder::Random;
    else throw std::invalid_argument("unknown order '" + *order + "'");
  }
  options.random_seed = static_cast<std::uint64_t>(parser.get_int("seed", 2021));
  if (const auto strategy = parser.get("strategy")) {
    const std::string s = util::to_lower(*strategy);
    if (s == "exhaustive") options.strategy = core::SearchStrategy::Exhaustive;
    else if (s == "racing") options.strategy = core::SearchStrategy::Racing;
    else if (s == "surrogate") options.strategy = core::SearchStrategy::Surrogate;
    else throw std::invalid_argument("unknown strategy '" + *strategy + "'");
  }
  options.racing_min_invocations =
      static_cast<std::uint64_t>(parser.get_int("racing-min", 3));
  options.surrogate_seed_budget =
      static_cast<std::uint64_t>(parser.get_int("seed-budget", 64));
  options.surrogate_confirm_top =
      static_cast<std::uint64_t>(parser.get_int("confirm-top", 16));
  return options;
}

simhw::SimOptions sim_options_from(const ArgParser& parser) {
  simhw::SimOptions sim;
  sim.sockets_used = static_cast<int>(parser.get_int("sockets", 1));
  sim.seed = static_cast<std::uint64_t>(parser.get_int("seed", 2021));
  // The sim engages its arena model only when the user turns the setup-cost
  // knob or names --arena explicitly; default runs keep the legacy cost
  // model bit-identical.
  sim.setup_overhead_s = parser.get_double("setup-overhead", 0.0);
  if (parser.get("arena").has_value() || sim.setup_overhead_s > 0.0) {
    sim.arena_reuse = arena_enabled(parser);
  }
  // Synthetic thermal/energy model: engaged only when asked, and it only
  // feeds telemetry spans — simulated rates stay bit-identical regardless.
  sim.thermal_tau_s = parser.get_double("thermal-tau", 0.0);
  sim.throttle_factor = parser.get_double("throttle-factor", 1.0);
  sim.pkg_power_w = parser.get_double("pkg-power", 0.0);
  sim.dram_power_w = parser.get_double("dram-power", 0.0);
  // Host-cost skew: a scheduling stressor, not a measurement knob — the
  // simulated rates and journals are unchanged by construction.
  sim.cost_skew = parser.get_double("cost-skew", 0.0);
  sim.cost_base_s = parser.get_double("cost-base", 0.001);
  if (sim.cost_skew < 0.0) throw std::invalid_argument("--cost-skew must be >= 0");
  if (sim.cost_base_s < 0.0) throw std::invalid_argument("--cost-base must be >= 0");
  return sim;
}

/// Wire --counter-prune [margin] into the tuner options.  The roofline
/// ceilings come from the machine spec here in the CLI — core only ever
/// sees plain-double ceilings, never simhw types.
void counter_prune_from(const ArgParser& parser, core::TunerOptions& options,
                        const simhw::MachineSpec& machine, int sockets_used) {
  if (!parser.has("counter-prune")) return;
  options.counter_prune = true;
  options.counter_prune_margin =
      parser.get_double("counter-prune", options.counter_prune_margin);
  options.counter_prune_window = static_cast<std::uint64_t>(
      parser.get_int("counter-window", static_cast<std::int64_t>(
                                           options.counter_prune_window)));
  options.counter_peak_gflops = machine.theoretical_flops(sockets_used).value;
  options.counter_dram_gbps =
      machine.theoretical_bandwidth(sockets_used).value;
}

/// --counter-prune under --native: the ceilings must be declared
/// (--custom-machine) and the counters must actually be sampled
/// (--trace + --perf-counters), else the policy would silently never fire.
void counter_prune_native(const ArgParser& parser, core::TunerOptions& options) {
  if (!parser.has("counter-prune")) return;
  const auto spec = parser.get("custom-machine");
  if (!spec) {
    throw std::invalid_argument(
        "--counter-prune with --native needs --custom-machine to declare "
        "the roofline ceilings");
  }
  if (!parser.has("perf-counters")) {
    throw std::invalid_argument(
        "--counter-prune with --native needs --trace and --perf-counters "
        "(the bound is derived from sampled hardware counters)");
  }
  const auto machine = simhw::parse_machine_spec(*spec);
  counter_prune_from(parser, options, machine, machine.sockets);
}

core::NativeDgemmBackend::Options native_dgemm_options(const ArgParser& parser) {
  core::NativeDgemmBackend::Options options;
  options.reuse = arena_enabled(parser);
  options.arena_options.huge_pages = parser.has("huge-pages");
  return options;
}

core::NativeTriadBackend::Options native_triad_options(const ArgParser& parser) {
  core::NativeTriadBackend::Options options;
  options.reuse = arena_enabled(parser);
  options.arena_options.huge_pages = parser.has("huge-pages");
  return options;
}

void emit_run(const core::TuningRun& run, const std::string& benchmark,
              const std::string& metric, const ArgParser& parser, std::ostream& out) {
  if (parser.has("json")) {
    out << core::to_json(run, benchmark, metric) << '\n';
  } else if (parser.has("csv")) {
    core::write_csv(out, run);
  } else {
    out << core::summary(run, metric) << '\n';
  }
}

int cmd_machines(std::ostream& out) {
  util::TextTable table;
  table.columns({"Name", "CPU", "Cores", "AVX", "Sockets", "L3/socket", "F_t (1S)",
                 "B_t (system)"},
                {util::Align::Left});
  for (const auto& m : simhw::all_machines()) {
    table.add_row({m.name, util::format("%.1f GHz", m.cpu_freq_ghz),
                   std::to_string(m.cores_per_socket), to_string(m.avx),
                   std::to_string(m.sockets), util::format_bytes(m.l3_per_socket),
                   util::format("%.1f GF/s", m.theoretical_flops(1).value),
                   util::format("%.3f GB/s", m.theoretical_bandwidth(m.sockets).value)});
  }
  out << table.render();
  return 0;
}

int cmd_dgemm(const ArgParser& parser, std::ostream& out) {
  auto options = tuner_options_from(parser);
  auto setup = trace_setup_from(parser, options, parser.has("native"));
  const int grid_scale = static_cast<int>(parser.get_int("grid-scale", 1));
  if (grid_scale < 1) throw std::invalid_argument("--grid-scale must be >= 1");
  const auto space = parser.has("small-space") ? core::dgemm_narrowed_space()
                     : grid_scale > 1          ? core::dgemm_scaled_space(grid_scale)
                                               : core::dgemm_reduced_space();
  const core::Autotuner tuner(space, options);

  std::unique_ptr<core::Backend> backend;
  core::ParallelEvaluator::BackendFactory factory;
  if (parser.has("native")) {
    counter_prune_native(parser, options);
    backend = std::make_unique<core::NativeDgemmBackend>(native_dgemm_options(parser));
  } else {
    const auto machine = simhw::machine_by_name(parser.get_or("machine", "2650v4"));
    auto sim = sim_options_from(parser);
    sim.grid_scale = grid_scale;
    counter_prune_from(parser, options, machine, sim.sockets_used);
    sim.counter_model = options.counter_prune || parser.has("sim-counters");
    backend = std::make_unique<simhw::SimDgemmBackend>(machine, sim);
    factory = [machine, sim]() -> std::unique_ptr<core::Backend> {
      return std::make_unique<simhw::SimDgemmBackend>(machine, sim);
    };
  }
  const auto run =
      run_search(parser, tuner.space(), options, *backend, std::move(factory));
  if (setup) {
    finish_trace(setup, run, "dgemm", backend->metric_name(), options, out);
  }
  finish_profile(setup, run, "dgemm", options, out);
  maybe_export(parser, run, tuner.space(), "dgemm", backend->metric_name(),
               options, setup, out);
  emit_run(run, "dgemm", backend->metric_name(), parser, out);
  return 0;
}

int cmd_triad(const ArgParser& parser, std::ostream& out) {
  auto options = tuner_options_from(parser);
  auto setup = trace_setup_from(parser, options, parser.has("native"));
  // Optional working-set bounds: a narrowed sweep makes small smoke runs
  // (e.g. the CI arena check) practical on shared hosts.
  core::SearchSpace space = core::triad_space();
  if (parser.get("min-mib").has_value() || parser.get("max-mib").has_value()) {
    space = core::triad_space(
        util::Bytes::MiB(static_cast<std::uint64_t>(parser.get_int("min-mib", 8))),
        util::Bytes::MiB(static_cast<std::uint64_t>(parser.get_int("max-mib", 256))));
  }
  const core::Autotuner tuner(space, options);

  std::unique_ptr<core::Backend> backend;
  core::ParallelEvaluator::BackendFactory factory;
  if (parser.has("native")) {
    counter_prune_native(parser, options);
    backend = std::make_unique<core::NativeTriadBackend>(native_triad_options(parser));
  } else {
    const auto machine = simhw::machine_by_name(parser.get_or("machine", "2650v4"));
    auto sim = sim_options_from(parser);
    sim.affinity = sim.sockets_used > 1 ? util::AffinityPolicy::Spread
                                        : util::AffinityPolicy::Close;
    counter_prune_from(parser, options, machine, sim.sockets_used);
    sim.counter_model = options.counter_prune || parser.has("sim-counters");
    backend = std::make_unique<simhw::SimTriadBackend>(machine, sim);
    factory = [machine, sim]() -> std::unique_ptr<core::Backend> {
      return std::make_unique<simhw::SimTriadBackend>(machine, sim);
    };
  }
  const auto run =
      run_search(parser, tuner.space(), options, *backend, std::move(factory));
  if (setup) {
    finish_trace(setup, run, "triad", backend->metric_name(), options, out);
  }
  finish_profile(setup, run, "triad", options, out);
  maybe_export(parser, run, tuner.space(), "triad", backend->metric_name(),
               options, setup, out);
  emit_run(run, "triad", backend->metric_name(), parser, out);
  return 0;
}

int cmd_spmv(const ArgParser& parser, std::ostream& out) {
  if (parser.has("native")) {
    throw std::invalid_argument(
        "spmv: --native is not supported (the SpMV backend models the "
        "format/blocking landscape on simulated machines only; "
        "docs/kernels.md)");
  }
  auto options = tuner_options_from(parser);
  auto setup = trace_setup_from(parser, options, /*host_run=*/false);
  const core::SearchSpace space = core::spmv_space();

  const auto machine = simhw::machine_by_name(parser.get_or("machine", "2650v4"));
  auto sim = sim_options_from(parser);
  counter_prune_from(parser, options, machine, sim.sockets_used);
  sim.counter_model = options.counter_prune || parser.has("sim-counters");
  simhw::SimSpmvBackend backend(machine, sim);
  core::ParallelEvaluator::BackendFactory factory =
      [machine, sim]() -> std::unique_ptr<core::Backend> {
    return std::make_unique<simhw::SimSpmvBackend>(machine, sim);
  };
  const auto run = run_search(parser, space, options, backend, std::move(factory));
  if (setup) {
    finish_trace(setup, run, "spmv", backend.metric_name(), options, out);
  }
  finish_profile(setup, run, "spmv", options, out);
  maybe_export(parser, run, space, "spmv", backend.metric_name(), options,
               setup, out);
  emit_run(run, "spmv", backend.metric_name(), parser, out);
  return 0;
}

int cmd_stencil(const ArgParser& parser, std::ostream& out) {
  if (parser.has("native")) {
    throw std::invalid_argument(
        "stencil: --native is not supported (the stencil backend models the "
        "tiling landscape on simulated machines only; docs/kernels.md)");
  }
  auto options = tuner_options_from(parser);
  auto setup = trace_setup_from(parser, options, /*host_run=*/false);
  const core::SearchSpace space = core::stencil_space();

  const auto grid_n = parser.get_int("grid-n", 4096);
  if (grid_n < 8) throw std::invalid_argument("--grid-n must be >= 8");
  const auto machine = simhw::machine_by_name(parser.get_or("machine", "2650v4"));
  auto sim = sim_options_from(parser);
  counter_prune_from(parser, options, machine, sim.sockets_used);
  sim.counter_model = options.counter_prune || parser.has("sim-counters");
  simhw::SimStencilBackend backend(machine, sim, grid_n);
  core::ParallelEvaluator::BackendFactory factory =
      [machine, sim, grid_n]() -> std::unique_ptr<core::Backend> {
    return std::make_unique<simhw::SimStencilBackend>(machine, sim, grid_n);
  };
  const auto run = run_search(parser, space, options, backend, std::move(factory));
  if (setup) {
    finish_trace(setup, run, "stencil", backend.metric_name(), options, out);
  }
  finish_profile(setup, run, "stencil", options, out);
  maybe_export(parser, run, space, "stencil", backend.metric_name(), options,
               setup, out);
  emit_run(run, "stencil", backend.metric_name(), parser, out);
  return 0;
}

/// The standard space for a journal's benchmark name — journal reconstruction
/// needs one because journals record configurations but not the space
/// definition.  dgemm journals are assumed to use the production reduced
/// space; runs over a variant space (--small-space, --grid-scale) should
/// export from the live run (--export) instead.
core::SearchSpace space_for_benchmark(const std::string& benchmark) {
  if (benchmark == "dgemm") return core::dgemm_reduced_space();
  if (benchmark == "triad") return core::triad_space();
  if (benchmark == "spmv") return core::spmv_space();
  if (benchmark == "stencil") return core::stencil_space();
  throw std::invalid_argument(
      "export: no standard search space for benchmark '" + benchmark +
      "'; pass --export to the tuning command to export from the live run");
}

int cmd_export(const ArgParser& parser, std::ostream& out) {
  const auto journal_path = parser.get("journal");
  if (!journal_path) {
    throw std::invalid_argument("export: --journal <trace.jsonl> is required");
  }
  const auto output = parser.get("output");
  if (!output) {
    throw std::invalid_argument("export: --output <file.json> is required");
  }
  const trace::Journal journal = trace::read_journal_file(*journal_path);
  const trace::ExportDocument doc = trace::export_from_journal(
      journal, space_for_benchmark(journal.header.benchmark));
  trace::write_export_file(*output, doc);
  out << "wrote tuning export " << *output << " (" << doc.results.size()
      << " configuration(s), benchmark " << doc.benchmark << ")\n";
  return 0;
}

int cmd_import(const ArgParser& parser, std::ostream& out) {
  if (parser.positional().size() != 1) {
    throw std::invalid_argument(
        "import: exactly one <export.json> argument is required");
  }
  const trace::ExportDocument doc =
      trace::parse_export_file(parser.positional()[0]);
  out << "export: benchmark " << doc.benchmark << ", metric " << doc.metric
      << ", strategy " << doc.technique.strategy << ", "
      << doc.results.size() << " configuration(s)";
  if (doc.best_index.has_value()) {
    const auto& best = doc.results[*doc.best_index];
    out << ", best " << best.config.to_string() << " = "
        << util::format("%.6g", best.value);
  }
  out << '\n';
  if (const auto reexport = parser.get("output")) {
    trace::write_export_file(*reexport, doc);
    out << "re-exported to " << *reexport << '\n';
  }
  if (!parser.has("replay")) return 0;

  const trace::ReplayOutcome outcome = trace::replay_export(doc);
  out << "replay: " << outcome.configs << " configuration(s) re-scored, "
      << outcome.value_mismatches << " value mismatch(es)\n";
  if (!outcome.ok()) {
    out << "replay: FAILED — " << outcome.first_mismatch << '\n';
    return 1;
  }
  out << "replay: recorded optimum reproduced bit-identically";
  if (outcome.replayed_best_index.has_value()) {
    out << " ("
        << doc.results[*outcome.replayed_best_index].config.to_string()
        << " = " << util::format("%.6g", outcome.replayed_best_value) << ")";
  }
  out << '\n';
  return 0;
}

int cmd_pipe(const ArgParser& parser, std::ostream& out) {
  const auto command = parser.get("command");
  if (!command) throw std::invalid_argument("pipe: --command is required");

  // --param name=v1,v2,v3 (repeatable via ';' between specs in one flag).
  const auto params = parser.get("param");
  if (!params) {
    throw std::invalid_argument("pipe: --param name=v1,v2,... is required");
  }
  core::SearchSpace space;
  for (const auto& spec : util::split(*params, ';')) {
    const auto eq = spec.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("pipe: bad --param spec '" + spec +
                                  "' (want name=v1,v2,...)");
    }
    const std::string name = util::trim(spec.substr(0, eq));
    std::vector<std::int64_t> values;
    for (const auto& v : util::split(spec.substr(eq + 1), ',')) {
      try {
        values.push_back(std::stoll(util::trim(v)));
      } catch (const std::exception&) {
        throw std::invalid_argument("pipe: bad value '" + v + "' for " + name);
      }
    }
    space.add_range(core::ParameterRange(name, std::move(values)));
  }

  core::PipeBackend::Options pipe_options;
  pipe_options.command_template = *command;
  pipe_options.metric_name = parser.get_or("metric", "units/s");
  core::PipeBackend backend(pipe_options);

  // Per-thread hardware counters cannot observe the child process the pipe
  // backend spawns, so the counts would silently describe the wrong code.
  // Package-scope energy telemetry (--telemetry) is fine: the child runs
  // synchronously inside the invocation span.
  if (parser.has("perf-counters")) {
    throw std::invalid_argument(
        "pipe: --perf-counters is not supported (per-thread counters cannot "
        "observe the child process); --telemetry energy sampling works");
  }
  if (parser.has("counter-prune")) {
    throw std::invalid_argument(
        "pipe: --counter-prune is not supported (the bound needs analytic "
        "FLOP counts and per-thread counters, neither of which the pipe "
        "backend has)");
  }
  auto options = tuner_options_from(parser);
  auto setup = trace_setup_from(parser, options, /*host_run=*/true);
  const auto run = run_search(parser, space, options, backend);
  if (setup) {
    finish_trace(setup, run, "pipe", backend.metric_name(), options, out);
  }
  finish_profile(setup, run, "pipe", options, out);
  maybe_export(parser, run, space, "pipe", backend.metric_name(), options,
               setup, out);
  emit_run(run, "pipe", backend.metric_name(), parser, out);
  return 0;
}

int cmd_roofline(const ArgParser& parser, std::ostream& out) {
  roofline::BuilderOptions options;
  options.tuner = tuner_options_from(parser);
  options.prune_min_count = static_cast<std::uint64_t>(parser.get_int("min-count", 10));
  options.seed = static_cast<std::uint64_t>(parser.get_int("seed", 2021));

  roofline::RooflineModel model;
  if (parser.has("native")) {
    if (const auto spec = parser.get("custom-machine")) {
      options.native_spec = simhw::parse_machine_spec(*spec);
    }
    if (!parser.has("small-space")) {
      // The full 96-point sweep at 10 s budgets is a cluster-scale job;
      // protect interactive hosts by default.
      options.dgemm_space = core::dgemm_narrowed_space();
    }
    model = roofline::build_native(options);
  } else {
    const auto machine = simhw::machine_by_name(parser.get_or("machine", "2650v4"));
    model = roofline::build_simulated(machine, options);
  }

  if (parser.has("json")) {
    out << roofline::to_json(model) << '\n';
  } else {
    out << roofline::utilization_report(model);
    out << '\n' << roofline::render_ascii(model);
  }

  if (const auto svg_path = parser.get("svg")) {
    std::ofstream svg(*svg_path);
    if (!svg) throw std::invalid_argument("cannot write SVG to '" + *svg_path + "'");
    svg << roofline::render_svg(model);
    out << "wrote " << *svg_path << '\n';
  }
  return 0;
}

int cmd_stream(const ArgParser& parser, std::ostream& out) {
  // Full STREAM suite, the way stream.c reports it: per kernel, the best
  // DRAM-resident bandwidth found by the autotuner.
  const auto options = tuner_options_from(parser);

  util::TextTable table;
  table.columns({"Kernel", "Best rate [GB/s]", "Best N", "Working set"},
                {util::Align::Left});

  for (const auto kernel : {stream::Kernel::Copy, stream::Kernel::Scale,
                            stream::Kernel::Add, stream::Kernel::Triad}) {
    std::unique_ptr<core::Backend> backend;
    core::SearchSpace space = core::triad_space();
    if (parser.has("native")) {
      auto nopt = native_triad_options(parser);
      nopt.kernel = kernel;
      backend = std::make_unique<core::NativeTriadBackend>(nopt);
      space = core::triad_space(util::Bytes::MiB(8), util::Bytes::MiB(256));
    } else {
      const auto machine = simhw::machine_by_name(parser.get_or("machine", "2650v4"));
      auto sim = sim_options_from(parser);
      sim.stream_kernel = kernel;
      sim.affinity = sim.sockets_used > 1 ? util::AffinityPolicy::Spread
                                          : util::AffinityPolicy::Close;
      backend = std::make_unique<simhw::SimTriadBackend>(machine, sim);
      // DRAM-resident sweep per the STREAM convention.
      space = core::triad_space(
          util::Bytes{8 * machine.l3_capacity(sim.sockets_used).value},
          util::Bytes::MiB(768));
    }
    const auto run = core::Autotuner(space, options).run(*backend);
    const auto& best = run.best();
    table.add_row({to_string(kernel), util::format("%.2f", run.best_value()),
                   std::to_string(best.config.at("N")),
                   util::format_bytes(core::triad_working_set(best.config))});
  }
  out << table.render();
  return 0;
}

int cmd_advise(const ArgParser& parser, std::ostream& out) {
  const double intensity_value = parser.get_double("intensity", 1.0 / 12.0);
  if (intensity_value <= 0.0) {
    throw std::invalid_argument("--intensity must be positive");
  }
  const util::Intensity intensity{intensity_value};

  roofline::BuilderOptions options;
  options.tuner = tuner_options_from(parser);
  options.prune_min_count = static_cast<std::uint64_t>(parser.get_int("min-count", 10));
  options.seed = static_cast<std::uint64_t>(parser.get_int("seed", 2021));

  std::vector<roofline::RooflineModel> models;
  if (const auto machine = parser.get("machine")) {
    models.push_back(
        roofline::build_simulated(simhw::machine_by_name(*machine), options));
  } else {
    for (const auto& m : simhw::paper_machines()) {
      models.push_back(roofline::build_simulated(m, options));
    }
  }

  out << util::format(
      "kernel intensity: %.4f FLOP/byte (TRIAD is %.4f; DGEMM n=m=k=1000 is ~%.0f)\n\n",
      intensity.value, 1.0 / 12.0, 1000.0 / 16.0);

  util::TextTable table;
  table.columns({"Rank", "Machine", "Attainable", "Bound by"}, {util::Align::Left});
  const auto ranking = roofline::rank_machines(models, intensity);
  for (std::size_t i = 0; i < ranking.size(); ++i) {
    table.add_row({std::to_string(i + 1), ranking[i].machine,
                   util::format("%.2f GFLOP/s", ranking[i].attainable.value),
                   ranking[i].memory_bound ? "memory" : "compute"});
  }
  out << table.render();

  for (const auto& model : models) {
    const auto a = roofline::assess(model, intensity);
    out << util::format(
        "%s: attainable %.2f GFLOP/s (%.1f%% of compute peak), %s-bound, "
        "ridge at %.2f FLOP/byte\n",
        model.machine_name.c_str(), a.attainable.value,
        100.0 * a.compute_fraction, a.memory_bound ? "memory" : "compute",
        a.ridge.value);
  }
  return 0;
}

int cmd_trace(const std::vector<std::string>& args, std::ostream& out) {
  if (args.empty() || args[0] == "--help" || args[0] == "-h" || args[0] == "help") {
    out << "usage: rooftune trace <journal.jsonl>\n"
           "\n"
           "Analyze a journal written by --trace: per-configuration\n"
           "elimination timeline, racing round summaries, per-stop-condition\n"
           "iteration accounting, prune savings vs a fixed-iteration budget,\n"
           "and operational-intensity columns (analytic next to\n"
           "counter-derived when --perf-counters sampled hardware events).\n"
           "When a <journal>.telemetry.jsonl sidecar sits next to the\n"
           "journal (--telemetry), also prints the machine stability report:\n"
           "per-configuration frequency CV, throttle events, Joules/GFLOP\n"
           "and GFLOP/s/W, plus the run-quality verdict from the recorded\n"
           "environment provenance.\n"
           "\n";
    out << trace::schema_reference();
    return args.empty() ? 1 : 0;
  }
  const trace::Journal journal = trace::read_journal_file(args[0]);
  out << trace::render_report(journal, analyze(journal));
  const std::string sidecar_path = args[0] + ".telemetry.jsonl";
  if (std::ifstream(sidecar_path).good()) {
    const telemetry::StabilityReport stability =
        telemetry::analyze_stability(telemetry::read_sidecar_file(sidecar_path));
    if (!stability.empty()) {
      out << '\n' << telemetry::render_stability_report(stability);
    }
    if (journal.provenance.has_value()) {
      out << telemetry::render_run_quality(
          telemetry::assess_run_quality(*journal.provenance, &stability));
    }
  }
  return 0;
}

int cmd_profile(const std::vector<std::string>& args, std::ostream& out) {
  std::vector<std::string> rest;
  std::size_t top_spans = 10;
  std::size_t gantt_width = 72;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--top" || args[i] == "--width") {
      if (i + 1 >= args.size()) {
        throw std::invalid_argument("profile: " + args[i] + " wants a number");
      }
      const long value = std::stol(args[i + 1]);
      if (value < 1) {
        throw std::invalid_argument("profile: " + args[i] + " must be >= 1");
      }
      (args[i] == "--top" ? top_spans : gantt_width) =
          static_cast<std::size_t>(value);
      ++i;
      continue;
    }
    rest.push_back(args[i]);
  }
  if (rest.empty() || rest[0] == "--help" || rest[0] == "-h" ||
      rest[0] == "help") {
    out << "usage: rooftune profile [--top N] [--width N] <profile.json>\n"
           "\n"
           "Analyze a self-profile written by --profile: per-category time\n"
           "hierarchy with self times, per-worker busy/steal/park lanes as\n"
           "an ASCII Gantt, the longest spans, a critical-path estimate,\n"
           "the profiler's own overhead, and a cross-check of the profile's\n"
           "totals against the report's setup/kernel sums and the\n"
           "SchedulerStats counters embedded at write time.  The same file\n"
           "loads unmodified in Perfetto (ui.perfetto.dev) or\n"
           "chrome://tracing; schema in docs/observability.md.\n";
    return rest.empty() ? 1 : 0;
  }
  trace::ProfileReportOptions options;
  options.top_spans = top_spans;
  options.gantt_width = gantt_width;
  out << trace::render_profile_report(trace::parse_profile_file(rest[0]),
                                      options);
  return 0;
}

int cmd_version(std::ostream& out) {
#ifdef NDEBUG
  const char* build_type = "Release";
#else
  const char* build_type = "Debug";
#endif
#if defined(__clang__)
  const std::string compiler = std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
  const std::string compiler = std::string("gcc ") + __VERSION__;
#else
  const std::string compiler = "unknown";
#endif
  out << "rooftune — Autotuning Benchmarking Techniques: A Roofline Model "
         "Case Study (reproduction)\n";
  out << "  build:           " << build_type << '\n';
  out << "  compiler:        " << compiler << '\n';
  out << "  simd dispatch:   " << blas::detail::active_kernel_plan().name
      << '\n';
  out << "  journal schema:  v" << trace::kJournalSchemaVersion << '\n';
  out << "  export schema:   v" << trace::kExportSchemaVersion << '\n';
  out << "  profile schema:  v" << trace::kProfileSchemaVersion << '\n';
  return 0;
}

const char kUsage[] =
    "usage: rooftune <command> [options]\n"
    "\n"
    "commands:\n"
    "  machines   list the built-in simulated machines\n"
    "  roofline   autotune DGEMM + TRIAD and assemble the roofline model\n"
    "  dgemm      autotune the DGEMM benchmark\n"
    "  triad      autotune the TRIAD benchmark\n"
    "  spmv       autotune the sparse matrix-vector benchmark (storage\n"
    "             format x blocking space; simulated machines only,\n"
    "             docs/kernels.md)\n"
    "  stencil    autotune the 2D 5-point stencil benchmark (tile/unroll\n"
    "             space, --grid-n sets the grid; simulated machines only)\n"
    "  advise     rank machines by attainable performance at a kernel's\n"
    "             operational intensity (--intensity FLOP/byte)\n"
    "  pipe       autotune an external benchmark command: --command\n"
    "             './bench --n {n}' --param 'n=64,128,256' [--metric GB/s]\n"
    "  stream     run the full STREAM suite (copy/scale/add/triad)\n"
    "  trace      analyze a --trace JSONL journal ('rooftune trace --help'\n"
    "             documents the schema; see docs/observability.md)\n"
    "  export     reconstruct a portable tuning export from a --trace\n"
    "             journal: --journal run.jsonl -o run.export.json\n"
    "             (schema in docs/formats.md; live runs can write one\n"
    "             directly with --export)\n"
    "  import     read a tuning export; --replay re-scores every recorded\n"
    "             configuration through a mock backend and verifies the\n"
    "             recorded optimum bit-identically\n"
    "  profile    analyze a --profile self-profile sidecar: category\n"
    "             hierarchy, per-worker Gantt, longest spans, critical\n"
    "             path, and a cross-check against the report's sums\n"
    "  version    print build type, compiler, SIMD dispatch level, and\n"
    "             the journal/export/profile schema versions\n"
    "\n";

}  // namespace

int run_cli(const std::vector<std::string>& args, std::ostream& out, std::ostream& err) {
  if (args.empty() || args[0] == "help" || args[0] == "--help" || args[0] == "-h") {
    out << kUsage;
    return args.empty() ? 1 : 0;
  }

  const std::string command = args[0];
  std::vector<std::string> rest(args.begin() + 1, args.end());

  try {
    if (command == "machines") return cmd_machines(out);
    if (command == "version" || command == "--version") return cmd_version(out);
    if (command == "trace") return cmd_trace(rest, out);
    if (command == "profile") return cmd_profile(rest, out);

    if (command == "export" || command == "import") {
      ArgParser parser;
      if (command == "export") {
        parser.add_option("journal",
                          "trace journal (--trace output) to reconstruct the "
                          "export from");
      } else {
        parser.add_flag("replay",
                        "re-score every recorded configuration through a "
                        "mock backend and verify the recorded optimum "
                        "bit-identically (docs/formats.md)");
      }
      parser.add_option("output",
                        command == "export"
                            ? "destination file for the export document"
                            : "re-export the parsed document to this path "
                              "(byte-identical to a well-formed input)",
                        "o");
      parser.parse(rest);
      return command == "export" ? cmd_export(parser, out)
                                 : cmd_import(parser, out);
    }

    ArgParser parser;
    add_common_options(parser);
    if (command == "dgemm" || command == "triad" || command == "spmv" ||
        command == "stencil" || command == "pipe") {
      add_trace_options(parser);
    }
    if (command == "stencil") {
      parser.add_option("grid-n",
                        "stencil grid dimension N (N x N doubles per plane; "
                        "default 4096)");
    }
    if (command == "roofline") parser.add_option("svg", "write the roofline graph as SVG");
    if (command == "advise") {
      parser.add_option("intensity", "kernel operational intensity in FLOP/byte");
    }
    if (command == "triad" || command == "stream") {
      parser.add_option("min-mib",
                        "smallest TRIAD working set in MiB (overrides the default sweep)");
      parser.add_option("max-mib", "largest TRIAD working set in MiB");
    }
    if (command == "pipe") {
      parser.add_option("command", "command template with {param} placeholders");
      parser.add_option("param", "search ranges: 'n=64,128,256;m=1,2' ");
      parser.add_option("metric", "metric label for reports (default units/s)");
    }
    parser.parse(rest);

    if (command == "roofline") return cmd_roofline(parser, out);
    if (command == "dgemm") return cmd_dgemm(parser, out);
    if (command == "triad") return cmd_triad(parser, out);
    if (command == "spmv") return cmd_spmv(parser, out);
    if (command == "stencil") return cmd_stencil(parser, out);
    if (command == "advise") return cmd_advise(parser, out);
    if (command == "pipe") return cmd_pipe(parser, out);
    if (command == "stream") return cmd_stream(parser, out);

    err << "unknown command '" << command << "'\n" << kUsage;
    return 1;
  } catch (const std::exception& e) {
    err << "error: " << e.what() << '\n';
    return 1;
  }
}

}  // namespace rooftune::cli
