#include "simhw/sim_backend.hpp"

#include <chrono>
#include <cmath>
#include <stdexcept>
#include <thread>

#include "blas/blas.hpp"
#include "core/spaces.hpp"

namespace rooftune::simhw {

namespace {

std::uint64_t name_hash(const std::string& s) {
  std::uint64_t h = 0xA5A5A5A5DEADBEEFull;
  for (char c : s) h = util::hash_seed(h, static_cast<unsigned char>(c));
  return h;
}

/// Salt for the cost_skew straggler hash — fixed (not SimOptions::seed) so
/// the straggler partition of a space is the same scenario everywhere.
constexpr std::uint64_t kCostSkewSalt = 0xC057'5EEDu;

}  // namespace

double invocation_cost_multiplier(const core::Configuration& config,
                                  const SimOptions& options) {
  if (!(options.cost_skew > 0.0)) return 1.0;
  const std::uint64_t h = util::hash_seed(kCostSkewSalt, config.hash());
  return (h & 7u) == 0u ? options.cost_skew : 1.0;
}

// ---- SimBackendBase --------------------------------------------------------

SimBackendBase::SimBackendBase(MachineSpec machine, SimOptions options)
    : machine_(std::move(machine)),
      options_(options),
      noise_(noise_profile(machine_.name)) {
  if (options_.sockets_used < 1 || options_.sockets_used > machine_.sockets) {
    throw std::invalid_argument("SimBackendBase: invalid socket count");
  }
  sigma_scale_ = options_.sockets_used >= 2 ? noise_.dual_socket_sigma_scale : 1.0;
  if (options_.timer_overhead_s < 0.0) {
    throw std::invalid_argument("SimBackendBase: negative timer overhead");
  }
  if (options_.setup_overhead_s < 0.0) {
    throw std::invalid_argument("SimBackendBase: negative setup overhead");
  }
  if (options_.thermal_tau_s < 0.0) {
    throw std::invalid_argument("SimBackendBase: negative thermal tau");
  }
  if (options_.throttle_factor <= 0.0 || options_.throttle_factor > 1.0) {
    throw std::invalid_argument(
        "SimBackendBase: throttle factor must be in (0, 1]");
  }
  if (options_.pkg_power_w < 0.0 || options_.dram_power_w < 0.0) {
    throw std::invalid_argument("SimBackendBase: negative power draw");
  }
  if (options_.cost_skew < 0.0) {
    throw std::invalid_argument("SimBackendBase: negative cost skew");
  }
  if (options_.cost_base_s < 0.0) {
    throw std::invalid_argument("SimBackendBase: negative cost base");
  }
  clock_.set_overhead(util::Seconds{options_.timer_overhead_s});
}

void SimBackendBase::begin_invocation(const core::Configuration& config,
                                      std::uint64_t invocation_index) {
  inv_setup_s_ = 0.0;
  inv_wall_s_ = 0.0;
  inv_kernel_s_ = 0.0;
  inv_flops_ = 0.0;
  inv_bytes_ = 0.0;
  counter_traffic_scale_ = 1.0;
  timing_valid_ = false;
  setup_phase_ = true;
  do_begin_invocation(config, invocation_index);
  setup_phase_ = false;
  // Straggler model: occupy the HOST (never the virtual clock) so
  // scheduler ablations see heterogeneous invocation costs while results
  // and journals stay bit-identical to cost_skew = 0.
  if (options_.cost_skew > 0.0 && options_.cost_base_s > 0.0) {
    const double seconds =
        options_.cost_base_s * invocation_cost_multiplier(config, options_);
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  }
}

void SimBackendBase::end_invocation() {
  setup_phase_ = true;
  do_end_invocation();
  setup_phase_ = false;
  timing_valid_ = true;
}

std::optional<core::TelemetrySpan> SimBackendBase::last_invocation_telemetry()
    const {
  const bool engaged =
      options_.thermal_tau_s > 0.0 || options_.pkg_power_w > 0.0;
  if (!timing_valid_ || !engaged) return std::nullopt;
  core::TelemetrySpan span;
  const double t = inv_wall_s_;
  // First-order thermal model: the package starts each invocation cold (the
  // untimed launch/teardown gap lets it recover) and its clock decays from
  // the nominal frequency toward the sustained throttle floor with time
  // constant tau.  Everything below is a pure function of the accounted
  // invocation duration, so the span is bit-identical across worker
  // assignments for the same schedule.
  const double base_mhz = machine_.cpu_freq_ghz * 1000.0;
  double floor_mhz = base_mhz;
  double progress = 0.0;  // 0 = cold, 1 = fully heat-soaked
  if (options_.thermal_tau_s > 0.0 && t > 0.0) {
    const double tau = options_.thermal_tau_s;
    floor_mhz = options_.throttle_factor * base_mhz;
    progress = 1.0 - std::exp(-t / tau);
    span.freq_begin_mhz = base_mhz;
    span.freq_end_mhz = floor_mhz + (base_mhz - floor_mhz) * (1.0 - progress);
    // Time-average of f(s) = floor + (base-floor) e^{-s/tau} over [0, t].
    span.freq_mean_mhz =
        floor_mhz + (base_mhz - floor_mhz) * (tau / t) * progress;
  } else {
    span.freq_begin_mhz = base_mhz;
    span.freq_end_mhz = base_mhz;
    span.freq_mean_mhz = base_mhz;
  }
  // Package temperature tracks the same exponential: idle ~40 C rising
  // toward ~95 C as the throttle floor is approached.
  span.temp_c = 40.0 + 55.0 * progress;
  span.pkg_joules = options_.pkg_power_w * t;
  span.dram_joules = options_.dram_power_w * t;
  span.valid = true;
  return span;
}

void SimBackendBase::charge_setup(double bytes) {
  ++arena_stats_.leases;
  arena_stats_.bytes_leased += static_cast<std::uint64_t>(bytes);
  if (options_.arena_reuse && bytes <= high_water_bytes_) {
    ++arena_stats_.slab_hits;
    return;
  }
  ++arena_stats_.slab_misses;
  ++arena_stats_.allocations;
  if (bytes > high_water_bytes_) high_water_bytes_ = bytes;
  arena_stats_.bytes_reserved = static_cast<std::uint64_t>(high_water_bytes_);
  arena_stats_.pages_touched +=
      static_cast<std::uint64_t>(bytes) / util::WorkspaceArena::page_size() + 1;
  charge_seconds(options_.setup_overhead_s);
}

std::optional<core::CounterSample> SimBackendBase::last_invocation_counters()
    const {
  if (!options_.counter_model || !timing_valid_) return std::nullopt;
  core::CounterSample sample;
  // Cycles: accounted kernel seconds at the nominal clock across the cores
  // in use.  LLC misses: the modelled operand traffic in 64-byte lines —
  // compulsory bytes times the L3-spill multiplier — so the measured OI
  // recovers the traffic model's OI exactly.  Instructions: one
  // vector FMA per lane-group of flops plus one load/store micro-op per
  // line — enough structure that IPC separates compute-saturated kernels
  // from stalled ones.  Everything is a pure function of the accumulated
  // per-invocation doubles, so reruns and any worker assignment agree
  // bit for bit.
  const double cores = static_cast<double>(machine_.cores_per_socket) *
                       static_cast<double>(options_.sockets_used);
  sample.cycles = static_cast<std::uint64_t>(
      std::llround(inv_kernel_s_ * machine_.cpu_freq_ghz * 1e9 * cores));
  const double flops_per_instr =
      static_cast<double>(machine_.ops_per_cycle()) /
      static_cast<double>(machine_.fma_units);
  sample.instructions = static_cast<std::uint64_t>(std::llround(
      inv_flops_ / flops_per_instr + inv_bytes_ / 64.0));
  sample.llc_misses = static_cast<std::uint64_t>(
      std::llround(inv_bytes_ * counter_traffic_scale_ / 64.0));
  sample.time_enabled_ns =
      static_cast<std::uint64_t>(std::llround(inv_kernel_s_ * 1e9));
  sample.time_running_ns = sample.time_enabled_ns;
  sample.scaled = false;
  sample.valid = true;
  return sample;
}

core::Sample SimBackendBase::run_iteration() {
  core::Sample sample = true_iteration();
  // Counter model: the timed kernel phase accumulates true kernel seconds
  // and the analytic work/traffic of each iteration (timer-pair overhead
  // retires no kernel instructions, so it stays out).
  inv_kernel_s_ += sample.kernel_time.value;
  inv_flops_ += flops_per_iteration().value_or(0.0);
  inv_bytes_ += bytes_per_iteration().value_or(0.0);
  const double o = options_.timer_overhead_s;
  if (o > 0.0) {
    // One timer pair wraps this single iteration: the measured span is the
    // true kernel time plus the pair cost, and the reported rate is the
    // work over that inflated span.
    const double t = sample.kernel_time.value;
    sample.value *= t / (t + o);
    sample.kernel_time = util::Seconds{t + o};
    charge_seconds(o);
  }
  return sample;
}

core::BatchSample SimBackendBase::run_batch(std::uint64_t count) {
  core::BatchSample batch;
  double work = 0.0;
  for (std::uint64_t i = 0; i < count; ++i) {
    const core::Sample s = true_iteration();
    work += s.value * s.kernel_time.value;
    batch.kernel_time += s.kernel_time;
    ++batch.count;
    inv_kernel_s_ += s.kernel_time.value;
    inv_flops_ += flops_per_iteration().value_or(0.0);
    inv_bytes_ += bytes_per_iteration().value_or(0.0);
  }
  if (batch.count == 0) return batch;
  const double o = options_.timer_overhead_s;
  // A single timer pair around the whole group: the pair cost is paid (and
  // measured) once, amortized over `count` iterations.
  batch.kernel_time += util::Seconds{o};
  batch.value = batch.kernel_time.value > 0.0
                    ? work / batch.kernel_time.value
                    : 0.0;
  if (o > 0.0) charge_seconds(o);
  return batch;
}

void SimBackendBase::start_noise_stream(const core::Configuration& config,
                                        std::uint64_t invocation_index) {
  rng_.reseed(util::hash_seed(options_.seed, name_hash(machine_.name),
                              static_cast<std::uint64_t>(options_.sockets_used),
                              config.hash(), invocation_index));
  invocation_bias_ = rng_.lognormal(0.0, noise_.invocation_sigma * sigma_scale_);
}

double SimBackendBase::sample_rate(double mean_rate, double efficiency,
                                   std::uint64_t iteration) {
  double rate = mean_rate * invocation_bias_ *
                ramp_factor(noise_, efficiency, iteration) *
                rng_.lognormal(0.0, noise_.iter_sigma * sigma_scale_);
  if (rng_.uniform() < noise_.outlier_prob) rate *= noise_.outlier_factor;
  return rate;
}

// ---- SimDgemmBackend -------------------------------------------------------

SimDgemmBackend::SimDgemmBackend(MachineSpec machine, SimOptions options)
    : SimBackendBase(std::move(machine), options),
      surface_(machine_, options_.sockets_used) {}

void SimDgemmBackend::do_begin_invocation(const core::Configuration& config,
                                          std::uint64_t invocation_index) {
  n_ = config.at("n");
  m_ = config.at("m");
  k_ = config.at("k");
  efficiency_ = surface_.efficiency(n_, m_, k_);
  mean_rate_ = surface_.mean_gflops(n_, m_, k_).value;
  flops_ = blas::dgemm_flops(m_, n_, k_).value;
  iteration_ = 0;
  in_invocation_ = true;

  start_noise_stream(config, invocation_index);

  // Launch + operand init (A: n*k, B: k*m, C: n*m doubles) + one untimed
  // pre-heat DGEMM call (§III-A).
  bytes_ = 8.0 * (static_cast<double>(n_) * k_ +
                  static_cast<double>(k_) * m_ +
                  static_cast<double>(n_) * m_);
  if (options_.counter_model) {
    // Memory-hierarchy model: operands past L3 re-stream across the panel
    // sweep, multiplying LLC traffic; the roofline over that traffic caps
    // the deliverable rate.  Keeping the clamp and the reported misses on
    // the same model is what makes a counter-derived bound a true ceiling
    // on every timing this backend can produce.
    counter_traffic_scale_ = spill_scale(bytes_);
    const double oi = flops_ / (bytes_ * counter_traffic_scale_);
    const double cap =
        machine_.theoretical_bandwidth(options_.sockets_used).value * oi;
    if (mean_rate_ > cap) mean_rate_ = cap;
  }
  charge_seconds(options_.launch_overhead_s);
  charge_setup(bytes_);
  charge_seconds(bytes_ / (options_.init_bandwidth_gbps * 1e9));
  const double preheat_rate = sample_rate(mean_rate_, efficiency_, 1);
  charge_seconds(flops_ / (preheat_rate * 1e9));
}

core::Sample SimDgemmBackend::true_iteration() {
  if (!in_invocation_) {
    throw std::logic_error("SimDgemmBackend: run_iteration outside invocation");
  }
  ++iteration_;
  const double rate = sample_rate(mean_rate_, efficiency_, iteration_);
  core::Sample sample;
  sample.value = rate;
  sample.kernel_time = util::Seconds{flops_ / (rate * 1e9)};
  charge(sample.kernel_time);
  return sample;
}

void SimDgemmBackend::do_end_invocation() {
  in_invocation_ = false;
  charge_seconds(options_.teardown_s);
}

double SimDgemmBackend::spill_scale(double ws_bytes) const {
  const double l3 =
      static_cast<double>(machine_.l3_capacity(options_.sockets_used).value);
  if (!(l3 > 0.0) || ws_bytes <= l3) return 1.0;
  return std::pow(ws_bytes / l3, options_.counter_spill_exponent);
}

std::optional<double> SimDgemmBackend::analytic_intensity(
    const core::Configuration& config) const {
  if (!config.has("n") || !config.has("m") || !config.has("k")) {
    return std::nullopt;
  }
  const std::int64_t n = config.at("n");
  const std::int64_t m = config.at("m");
  const std::int64_t k = config.at("k");
  if (n <= 0 || m <= 0 || k <= 0) return std::nullopt;
  const double flops = blas::dgemm_flops(m, n, k).value;
  const double bytes = 8.0 * (static_cast<double>(n) * k +
                              static_cast<double>(k) * m +
                              static_cast<double>(n) * m);
  const double scale = options_.counter_model ? spill_scale(bytes) : 1.0;
  return flops / (bytes * scale);
}

// ---- SimTriadBackend -------------------------------------------------------

SimTriadBackend::SimTriadBackend(MachineSpec machine, SimOptions options)
    : SimBackendBase(std::move(machine), options),
      surface_(machine_, options_.sockets_used, options_.affinity,
               options_.model_inner_caches) {}

void SimTriadBackend::do_begin_invocation(const core::Configuration& config,
                                          std::uint64_t invocation_index) {
  // All three vectors are resident regardless of kernel (24 bytes/element);
  // the *traffic* per pass depends on how many streams the kernel touches.
  const util::Bytes ws = core::triad_working_set(config);
  mean_rate_ = surface_.mean_bandwidth(options_.stream_kernel, ws).value;
  // Optional "nt" dimension (store-policy tuning): non-temporal stores skip
  // write-allocate, so a DRAM-resident working set moves (bytes+8)/bytes
  // fewer hardware bytes per element — reported STREAM-convention bandwidth
  // rises by that ratio.  Cache-resident sizes lose badly: NT stores force
  // every write through DRAM.
  if (config.has("nt") && config.at("nt") != 0) {
    const double reported =
        static_cast<double>(stream::bytes_per_element(options_.stream_kernel).value);
    const double l3 =
        static_cast<double>(machine_.l3_capacity(options_.sockets_used).value);
    if (static_cast<double>(ws.value) > 2.0 * l3) {
      mean_rate_ *= (reported + 8.0) / reported;
    } else {
      mean_rate_ *= 0.5;
    }
  }
  bytes_ = static_cast<double>(
      stream::bytes_per_element(options_.stream_kernel).value *
      static_cast<std::uint64_t>(config.at("N")));
  flops_ = static_cast<double>(
      stream::flops_per_element(options_.stream_kernel).value *
      static_cast<std::uint64_t>(config.at("N")));
  iteration_ = 0;
  in_invocation_ = true;

  start_noise_stream(config, invocation_index);

  // Launch + first-touch initialization + one pre-heat pass.
  charge_seconds(options_.launch_overhead_s);
  // All three vectors are allocated even though the kernel may read fewer.
  charge_setup(3.0 * 8.0 * static_cast<double>(config.at("N")));
  charge_seconds(bytes_ / (options_.init_bandwidth_gbps * 1e9));
  const double preheat_rate = sample_rate(mean_rate_, /*efficiency=*/1.0, 1);
  charge_seconds(bytes_ / (preheat_rate * 1e9));
}

core::Sample SimTriadBackend::true_iteration() {
  if (!in_invocation_) {
    throw std::logic_error("SimTriadBackend: run_iteration outside invocation");
  }
  ++iteration_;
  // TRIAD warm-up is negligible compared to DGEMM (no frequency licensing),
  // so the ramp is applied with efficiency 0 unless the profile covers all
  // configurations (threshold 0) — then a mild first-pass effect appears.
  const double rate = sample_rate(mean_rate_, /*efficiency=*/0.0, iteration_);
  core::Sample sample;
  sample.value = rate;
  sample.kernel_time = util::Seconds{bytes_ / (rate * 1e9)};
  charge(sample.kernel_time);
  return sample;
}

void SimTriadBackend::do_end_invocation() {
  in_invocation_ = false;
  charge_seconds(options_.teardown_s);
}

// ---- SimSpmvBackend --------------------------------------------------------

SimSpmvBackend::SimSpmvBackend(MachineSpec machine, SimOptions options)
    : SimBackendBase(std::move(machine), options),
      surface_(machine_, options_.sockets_used) {}

void SimSpmvBackend::do_begin_invocation(const core::Configuration& config,
                                         std::uint64_t invocation_index) {
  const std::int64_t rows = config.at("rows");
  const SpmvFormat format = spmv_format_from(config.at("format"));
  const int block = static_cast<int>(config.at("block"));
  const SpmvMatrixStats stats = spmv_matrix_stats(rows);
  const SpmvTraffic traffic = spmv_traffic(stats, format, block);
  bytes_ = traffic.total();
  flops_ = 2.0 * static_cast<double>(stats.nnz);
  mean_rate_ = surface_.mean_gflops(stats, format, block);
  iteration_ = 0;
  in_invocation_ = true;

  start_noise_stream(config, invocation_index);

  if (options_.counter_model) {
    // The LLC-miss traffic is the DRAM-side fraction of the format bytes:
    // resident matrices leak only a trickle past L3, spilled ones re-fetch
    // gathered x lines.  Clamping the rate by the roofline over that same
    // traffic keeps counter signatures and timings on one model — without
    // the fraction, L3-resident configs (which legitimately exceed DRAM
    // bandwidth) would be clamped to it.
    counter_traffic_scale_ = surface_.dram_fraction(bytes_);
    const double oi = flops_ / (bytes_ * counter_traffic_scale_);
    const double cap =
        machine_.theoretical_bandwidth(options_.sockets_used).value * oi;
    if (mean_rate_ > cap) mean_rate_ = cap;
  }
  charge_seconds(options_.launch_overhead_s);
  // Allocated operands: stored values + index structures + the x/y vectors
  // (16 bytes/row; the traffic term's extra 8 is y's read, not storage).
  charge_setup(traffic.value_bytes + traffic.index_bytes +
               16.0 * static_cast<double>(rows));
  charge_seconds(bytes_ / (options_.init_bandwidth_gbps * 1e9));
  const double preheat_rate = sample_rate(mean_rate_, /*efficiency=*/0.0, 1);
  charge_seconds(flops_ / (preheat_rate * 1e9));
}

core::Sample SimSpmvBackend::true_iteration() {
  if (!in_invocation_) {
    throw std::logic_error("SimSpmvBackend: run_iteration outside invocation");
  }
  ++iteration_;
  // Bandwidth-bound kernel: no frequency-licensing warm-up, so the ramp is
  // applied with efficiency 0 (same rationale as TRIAD).
  const double rate = sample_rate(mean_rate_, /*efficiency=*/0.0, iteration_);
  core::Sample sample;
  sample.value = rate;
  sample.kernel_time = util::Seconds{flops_ / (rate * 1e9)};
  charge(sample.kernel_time);
  return sample;
}

void SimSpmvBackend::do_end_invocation() {
  in_invocation_ = false;
  charge_seconds(options_.teardown_s);
}

std::optional<double> SimSpmvBackend::analytic_intensity(
    const core::Configuration& config) const {
  if (!config.has("rows") || !config.has("format") || !config.has("block")) {
    return std::nullopt;
  }
  const std::int64_t rows = config.at("rows");
  const std::int64_t format = config.at("format");
  const std::int64_t block = config.at("block");
  if (rows <= 0 || format < 0 || format > 2 || block < 1) return std::nullopt;
  const SpmvMatrixStats stats = spmv_matrix_stats(rows);
  const SpmvTraffic traffic =
      spmv_traffic(stats, spmv_format_from(format), static_cast<int>(block));
  const double bytes = traffic.total();
  const double scale =
      options_.counter_model ? surface_.dram_fraction(bytes) : 1.0;
  return 2.0 * static_cast<double>(stats.nnz) / (bytes * scale);
}

// ---- SimStencilBackend -----------------------------------------------------

SimStencilBackend::SimStencilBackend(MachineSpec machine, SimOptions options,
                                     std::int64_t grid_n)
    : SimBackendBase(std::move(machine), options),
      surface_(machine_, options_.sockets_used, grid_n) {}

void SimStencilBackend::do_begin_invocation(const core::Configuration& config,
                                            std::uint64_t invocation_index) {
  const std::int64_t ti = config.at("ti");
  const std::int64_t tj = config.at("tj");
  const std::int64_t unroll = config.at("unroll");
  bytes_ = surface_.sweep_bytes(ti, tj);
  flops_ = surface_.sweep_flops();
  mean_rate_ = surface_.mean_gflops(ti, tj, unroll);
  iteration_ = 0;
  in_invocation_ = true;

  start_noise_stream(config, invocation_index);

  if (options_.counter_model) {
    // Misses are the DRAM-side fraction of the tiling traffic, set by the
    // resident grids (not the per-tile streams); see SimSpmvBackend for why
    // the clamp must use the same fraction.
    counter_traffic_scale_ = surface_.dram_fraction();
    const double oi = flops_ / (bytes_ * counter_traffic_scale_);
    const double cap =
        machine_.theoretical_bandwidth(options_.sockets_used).value * oi;
    if (mean_rate_ > cap) mean_rate_ = cap;
  }
  charge_seconds(options_.launch_overhead_s);
  charge_setup(surface_.grid_bytes());
  charge_seconds(surface_.grid_bytes() /
                 (options_.init_bandwidth_gbps * 1e9));
  const double preheat_rate = sample_rate(mean_rate_, /*efficiency=*/0.0, 1);
  charge_seconds(flops_ / (preheat_rate * 1e9));
}

core::Sample SimStencilBackend::true_iteration() {
  if (!in_invocation_) {
    throw std::logic_error(
        "SimStencilBackend: run_iteration outside invocation");
  }
  ++iteration_;
  const double rate = sample_rate(mean_rate_, /*efficiency=*/0.0, iteration_);
  core::Sample sample;
  sample.value = rate;
  sample.kernel_time = util::Seconds{flops_ / (rate * 1e9)};
  charge(sample.kernel_time);
  return sample;
}

void SimStencilBackend::do_end_invocation() {
  in_invocation_ = false;
  charge_seconds(options_.teardown_s);
}

std::optional<double> SimStencilBackend::analytic_intensity(
    const core::Configuration& config) const {
  if (!config.has("ti") || !config.has("tj") || !config.has("unroll")) {
    return std::nullopt;
  }
  const std::int64_t ti = config.at("ti");
  const std::int64_t tj = config.at("tj");
  const std::int64_t unroll = config.at("unroll");
  if (ti < 1 || tj < 1) return std::nullopt;
  if (unroll != 1 && unroll != 2 && unroll != 4 && unroll != 8) {
    return std::nullopt;
  }
  const double bytes = surface_.sweep_bytes(ti, tj);
  const double scale =
      options_.counter_model ? surface_.dram_fraction() : 1.0;
  return surface_.sweep_flops() / (bytes * scale);
}

}  // namespace rooftune::simhw
