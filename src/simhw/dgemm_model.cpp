#include "simhw/dgemm_model.hpp"

#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"
#include "util/strings.hpp"

namespace rooftune::simhw {

namespace {

double log_gauss(double x, double center, double sigma_lo, double sigma_hi) {
  const double d = std::log2(x) - std::log2(center);
  const double sigma = d < 0.0 ? sigma_lo : sigma_hi;
  return std::exp(-0.5 * (d / sigma) * (d / sigma));
}

/// Saturating penalty: ~0 for tiny dimensions, ~1 once the dimension is a
/// few multiples of `scale` (models call overhead / poor vector utilization
/// on small matrices, §IV-A).
double small_penalty(double d, double scale) { return 1.0 - std::exp(-d / scale); }

std::uint64_t name_hash(const std::string& s) {
  std::uint64_t h = 0x9E3779B97F4A7C15ull;
  for (char c : s) h = util::hash_seed(h, static_cast<unsigned char>(c));
  return h;
}

}  // namespace

DgemmAnchor dgemm_anchor(const std::string& machine_name, int sockets_used) {
  const std::string key = util::to_lower(machine_name);
  const bool s2 = sockets_used >= 2;

  // Anchors: paper Tables IV (peak efficiency) and V (optimal dimensions).
  // Sigma values are fitted so the secondary constraints hold (square
  // 1000^3 at ~55.7 % on gold6132-S2, the §VI-A Intel comparison).
  // Field order: n, m, k, peak_eff, sigma_n_lo/hi, sigma_m_lo/hi,
  // sigma_k_lo/hi.
  if (key == "2650v4") {
    return s2 ? DgemmAnchor{2000, 2048, 64, 0.9156, 2.8, 5.5, 2.8, 5.5, 1.8, 4.6}
              : DgemmAnchor{1000, 4096, 128, 0.9676, 2.8, 5.5, 2.8, 5.5, 1.6, 4.6};
  }
  if (key == "2695v4") {
    // S1's sigma_n_hi is kept tighter so the gap between the optimum at
    // n=2000 and the n=4000 runner-up (~4 %) exceeds the invocation-level
    // noise — with min-count=100 the tuner then recovers the paper's
    // optimum reliably, matching Table IX's second block.
    return s2 ? DgemmAnchor{4000, 2048, 128, 0.9194, 2.9, 5.5, 2.8, 5.5, 1.6, 4.6}
              : DgemmAnchor{2000, 4096, 128, 0.9806, 2.8, 3.2, 2.8, 5.5, 1.6, 4.6};
  }
  if (key == "gold6132") {
    // S2 sigmas fitted so eff(1000,1000,1000) == ~0.557 (paper §VI-A).
    return s2 ? DgemmAnchor{4000, 512, 128, 0.7513, 4.0, 5.5, 3.1, 6.0, 1.8, 5.4}
              : DgemmAnchor{1000, 4096, 128, 0.8720, 2.8, 5.5, 2.8, 5.5, 1.6, 4.6};
  }
  if (key == "gold6148") {
    return s2 ? DgemmAnchor{4000, 1024, 128, 0.7836, 3.4, 5.5, 2.9, 5.5, 1.7, 4.6}
              : DgemmAnchor{4000, 512, 128, 0.9259, 3.0, 5.5, 2.8, 5.5, 1.6, 4.6};
  }
  if (key == "silver4110") {
    // Not benchmarked in the paper; calibrated so the Intel-published
    // square 1000^3 choice reads ~52 % of peak (§VI-A, Eq. 12).
    return s2 ? DgemmAnchor{2000, 2048, 256, 0.7800, 1.6, 4.5, 2.1, 4.5, 1.5, 4.6}
              : DgemmAnchor{2000, 2048, 256, 0.8600, 1.8, 4.5, 2.2, 4.5, 1.5, 4.6};
  }
  throw std::invalid_argument("dgemm_anchor: unknown machine '" + machine_name + "'");
}

DgemmSurface::DgemmSurface(MachineSpec machine, int sockets_used)
    : machine_(std::move(machine)),
      sockets_used_(sockets_used),
      anchor_(dgemm_anchor(machine_.name, sockets_used)) {
  if (sockets_used < 1 || sockets_used > machine_.sockets) {
    throw std::invalid_argument("DgemmSurface: invalid socket count");
  }
  shape_at_anchor_ = shape(static_cast<double>(anchor_.n),
                           static_cast<double>(anchor_.m),
                           static_cast<double>(anchor_.k));
}

double DgemmSurface::shape(double n, double m, double k) const {
  const double g = log_gauss(n, static_cast<double>(anchor_.n), anchor_.sigma_n_lo,
                             anchor_.sigma_n_hi) *
                   log_gauss(m, static_cast<double>(anchor_.m), anchor_.sigma_m_lo,
                             anchor_.sigma_m_hi) *
                   log_gauss(k, static_cast<double>(anchor_.k), anchor_.sigma_k_lo,
                             anchor_.sigma_k_hi);
  // The k scale is kept small (12) so the penalty is fully saturated at the
  // k = 64 anchor of 2650v4-S2 — otherwise the rising penalty would out-pull
  // the Gaussian and shift the grid argmax off the paper's optimum.
  const double p = small_penalty(n, 48.0) * small_penalty(m, 48.0) *
                   small_penalty(k, 12.0);

  // Localized sweet-spot bump: the measured optimum sits ~4 % proud of its
  // immediate grid neighbours (blocking factors snapping into cache/SIMD
  // geometry), decaying within one octave.  This keeps the grid argmax
  // robust against measurement noise without steepening the far field —
  // large matrices stay efficient, as on real BLAS.
  const double dn = std::log2(n) - std::log2(static_cast<double>(anchor_.n));
  const double dm = std::log2(m) - std::log2(static_cast<double>(anchor_.m));
  const double dk = std::log2(k) - std::log2(static_cast<double>(anchor_.k));
  const double d2 = dn * dn + dm * dm + dk * dk;
  const double bump = 1.0 + 0.05 * std::exp(-d2 / 0.35);

  return g * p * bump;
}

double DgemmSurface::efficiency(std::int64_t n, std::int64_t m, std::int64_t k) const {
  if (n <= 0 || m <= 0 || k <= 0) {
    throw std::invalid_argument("DgemmSurface::efficiency: dimensions must be positive");
  }
  double eff = anchor_.peak_eff *
               shape(static_cast<double>(n), static_cast<double>(m),
                     static_cast<double>(k)) /
               shape_at_anchor_;

  // Deterministic per-configuration texture: +/-0.5 %, stable across runs
  // but uncorrelated between neighbouring grid points.
  std::uint64_t h = util::hash_seed(name_hash(machine_.name),
                                    static_cast<std::uint64_t>(sockets_used_),
                                    static_cast<std::uint64_t>(n),
                                    static_cast<std::uint64_t>(m),
                                    static_cast<std::uint64_t>(k));
  std::uint64_t state = h;
  const double u = static_cast<double>(util::splitmix64(state) >> 11) * 0x1.0p-53;
  eff *= 1.0 + 0.005 * (2.0 * u - 1.0);

  if (eff > 0.995) eff = 0.995;
  if (eff < 0.005) eff = 0.005;
  return eff;
}

util::GFlops DgemmSurface::mean_gflops(std::int64_t n, std::int64_t m,
                                       std::int64_t k) const {
  return util::GFlops{efficiency(n, m, k) *
                      machine_.theoretical_flops(sockets_used_).value};
}

}  // namespace rooftune::simhw
