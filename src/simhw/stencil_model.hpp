#pragma once
// Calibrated response surface for the 2D 5-point Jacobi stencil.
//
// The stencil is the repository's latency/cache-sensitive kernel: one sweep
// reads an N x N grid, writes a second one, and the tuning parameters are
// the loop-tiling shape — tile height `ti`, tile width `tj`, inner-loop
// unroll — whose payoff is decided by the per-core cache sizes, not by the
// DRAM roofline alone.  As with the other simulated kernels (DESIGN.md §2)
// there is no published calibration for the paper's machines, so the
// surface is an analytic family on top of the calibrated TRIAD bandwidth
// curve:
//
//   rate(GFLOP/s) = bandwidth(grid ws) * f_rows(tj) * f_tile(ti, tj)
//                   * f_width(tj) * f_height(ti) * f_unroll(u) * texture
//                   * 6 / bytes_per_point(ti, tj)
//
//   * bytes_per_point starts at the compulsory 16 B (read + write once)
//     and grows when the tile shape defeats reuse: three active rows that
//     spill L1 re-fetch the top neighbour (+8 B/pt), a tile that spills
//     the private L2 streams its halo from L3/DRAM (+4 B/pt);
//   * f_width rewards long inner rows (hardware-prefetch warm-up is paid
//     per row fragment), f_height amortizes the per-tile-row loop
//     overhead, f_unroll peaks at 4 before register pressure;
//   * the grid itself (2 * 8 * N^2 bytes) picks the bandwidth regime, so a
//     small grid tunes like a cache benchmark and the default 4096^2 grid
//     tunes against DRAM.
//
// The optimum is therefore a ridge — the largest (ti, tj) whose rows fit
// L1 and whose tile fits L2 — and it moves between machines with different
// private-cache sizes, which is exactly the landscape-diversity point of
// adding the kernel (docs/kernels.md).

#include <cstdint>

#include "simhw/machine.hpp"
#include "simhw/triad_model.hpp"
#include "util/units.hpp"

namespace rooftune::simhw {

class StencilSurface {
 public:
  /// `grid_n` is the fixed grid edge N (a benchmark-definition knob, not a
  /// tuning parameter); throws for n < 8.
  StencilSurface(MachineSpec machine, int sockets_used, std::int64_t grid_n);

  /// Mean sustained GFLOP/s of one sweep tiled as (ti, tj, unroll).
  [[nodiscard]] double mean_gflops(std::int64_t ti, std::int64_t tj,
                                   std::int64_t unroll) const;

  /// Analytic bytes one sweep moves under this tiling (the traffic model
  /// behind bytes_per_iteration and the counter signatures).
  [[nodiscard]] double sweep_bytes(std::int64_t ti, std::int64_t tj) const;

  /// 6 flops per grid point (4 adds + centre scale + accumulate).
  [[nodiscard]] double sweep_flops() const;

  /// Both grids, resident for the whole sweep.
  [[nodiscard]] double grid_bytes() const;

  /// Counter-model LLC-miss fraction of the analytic traffic: resident
  /// grids leak a trickle, the fraction reaches 1 at the L3 capacity, and
  /// stays 1 past it (the sweep streams; no gather re-fetch).
  [[nodiscard]] double dram_fraction() const;

  [[nodiscard]] std::int64_t grid_n() const { return grid_n_; }
  [[nodiscard]] util::Bytes l1_per_core() const { return l1_; }
  [[nodiscard]] util::Bytes l2_per_core() const { return l2_; }
  [[nodiscard]] const TriadSurface& memory() const { return memory_; }

 private:
  MachineSpec machine_;
  int sockets_used_;
  std::int64_t grid_n_;
  TriadSurface memory_;
  util::Bytes l1_{0};
  util::Bytes l2_{0};
};

}  // namespace rooftune::simhw
