#pragma once
// Hardware descriptions and theoretical peaks (paper §V, Tables II–III).
//
// F_t = freq * cores * AVX_ops_per_cycle * fma_units * sockets   (Eq. 9)
// AVX512_DP = 512 bit / 64 bit * 2 (FMA)  = 16 ops/cycle/unit    (Eq. 10)
// AVX2_DP   = 256 bit / 64 bit * 2 (FMA)  =  8 ops/cycle/unit
// B_t = mem_freq * channels * 8 bytes                            (Eq. 11)
//
// Note on the paper's accounting (which we reproduce exactly): Table III
// lists F_t for a SINGLE socket but B_t for the FULL system; utilization
// percentages in Tables IV/VI follow that convention (F_S2 is compared
// against 2*F_t, B_S1 against B_t/2).

#include <cstdint>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace rooftune::simhw {

enum class AvxType { Avx2, Avx512 };

const char* to_string(AvxType avx);

enum class Precision { Double, Single };

struct MachineSpec {
  std::string name;            ///< e.g. "2650v4"
  double cpu_freq_ghz = 0.0;   ///< base/AVX clock used for the peak formula
  int cores_per_socket = 0;
  int sockets = 1;
  AvxType avx = AvxType::Avx2;
  int fma_units = 2;           ///< FMA pipes per core
  util::Bytes l3_per_socket{0};
  double dram_freq_mhz = 0.0;  ///< memory transfer rate (MT/s)
  int dram_channels_system = 0;  ///< paper convention: channels across the system
  /// Per-core private caches (0 = unknown); used by the §VII inner-cache
  /// extension (L1/L2 bandwidth ceilings).
  util::Bytes l2_per_core{0};
  util::Bytes l1_per_core{0};
  /// Rated package TDP per socket in watts (vendor spec sheet; 0 =
  /// unknown).  Anchors the energy ceiling of the roofline report
  /// (GFLOP/s/W at rated power) and the simulated RAPL defaults.
  double tdp_w = 0.0;

  /// DP (or SP) FLOPs per cycle per core: vector lanes * 2 (FMA) * units.
  [[nodiscard]] int ops_per_cycle(Precision precision = Precision::Double) const;

  /// Theoretical peak compute for `sockets_used` sockets (Eq. 9).
  [[nodiscard]] util::GFlops theoretical_flops(
      int sockets_used, Precision precision = Precision::Double) const;

  /// Theoretical DRAM bandwidth for `sockets_used` sockets (Eq. 11, scaled
  /// by the fraction of the system's channels those sockets own).
  [[nodiscard]] util::GBps theoretical_bandwidth(int sockets_used) const;

  /// L3 capacity reachable by threads on `sockets_used` sockets.
  [[nodiscard]] util::Bytes l3_capacity(int sockets_used) const;

  /// Aggregate private-cache capacity across the cores of `sockets_used`
  /// sockets (a TRIAD with a static schedule spreads its vectors over every
  /// core's private cache).  Zero when the per-core size is unknown.
  [[nodiscard]] util::Bytes l2_capacity(int sockets_used) const;
  [[nodiscard]] util::Bytes l1_capacity(int sockets_used) const;

  [[nodiscard]] int total_cores() const { return cores_per_socket * sockets; }
};

/// The four Idun-cluster systems of Table II, in the paper's order.
std::vector<MachineSpec> paper_machines();

/// Lookup by name ("2650v4", "2695v4", "gold6132", "gold6148",
/// "silver4110"); throws std::invalid_argument for unknown names.
MachineSpec machine_by_name(const std::string& name);

/// Parse a user-defined machine from a compact spec string:
///
///   name:freqGHz:cores:sockets:avx2|avx512:fma_units:l3_per_socket:
///   dram_MTs:channels[:tdpW]
///
/// e.g. "epyc7543:2.8:32:2:avx2:2:256MiB:3200:8:225" (the trailing
/// per-socket TDP in watts is optional).  Sizes accept the
/// util::parse_bytes suffixes.  Throws std::invalid_argument with a
/// field-specific message on malformed input.  Custom machines can be used
/// with the theoretical-peak formulas and the native backends; the
/// simulated response surfaces only exist for the built-in machines.
MachineSpec parse_machine_spec(const std::string& text);

/// All built-in machines (the paper's four + the Xeon Silver 4110 used in
/// the §VI-A comparison against Intel's published DGEMM numbers).
std::vector<MachineSpec> all_machines();

}  // namespace rooftune::simhw
