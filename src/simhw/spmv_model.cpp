#include "simhw/spmv_model.hpp"

#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"
#include "util/strings.hpp"

namespace rooftune::simhw {

namespace {

/// Row-structure hash period: power-of-two row counts >= the period tile
/// the pattern exactly, so whole-matrix sums are O(period).
constexpr std::int64_t kRowPeriod = 4096;
/// Salt fixed (not SimOptions::seed): the matrix is part of the benchmark
/// definition, the same instance on every machine and every run.
constexpr std::uint64_t kSpmvSalt = 0x5B3C'AF17'90D2'4E61ull;

std::uint64_t machine_hash(const std::string& s) {
  std::uint64_t h = 0xA5A5A5A5DEADBEEFull;
  for (char c : s) h = util::hash_seed(h, static_cast<unsigned char>(c));
  return h;
}

}  // namespace

const char* to_string(SpmvFormat format) {
  switch (format) {
    case SpmvFormat::Csr: return "csr";
    case SpmvFormat::Ell: return "ell";
    case SpmvFormat::Bcsr: return "bcsr";
  }
  return "?";
}

SpmvFormat spmv_format_from(std::int64_t value) {
  if (value < 0 || value > 2) {
    throw std::invalid_argument("spmv: format must be 0 (csr), 1 (ell) or 2 (bcsr), got " +
                                std::to_string(value));
  }
  return static_cast<SpmvFormat>(value);
}

std::uint64_t spmv_row_nnz(std::int64_t row) {
  const std::uint64_t h =
      util::hash_seed(kSpmvSalt, static_cast<std::uint64_t>(row % kRowPeriod));
  // Bulk rows: 6..32 nonzeros, uniform.  Hub rows (~3 %): +96 — a heavy
  // tail that makes plain-ELL padding expensive without drowning the bulk.
  std::uint64_t nnz = 6 + (h % 27);
  if ((h >> 32) % 97 < 3) nnz += 96;
  return nnz;
}

SpmvMatrixStats spmv_matrix_stats(std::int64_t rows) {
  if (rows <= 0) throw std::invalid_argument("spmv_matrix_stats: rows must be > 0");
  SpmvMatrixStats stats;
  stats.rows = rows;
  std::uint64_t period_nnz = 0;
  std::uint64_t period_max = 0;
  for (std::int64_t r = 0; r < kRowPeriod; ++r) {
    const std::uint64_t n = spmv_row_nnz(r);
    period_nnz += n;
    if (n > period_max) period_max = n;
    if (r < rows % kRowPeriod && n > stats.max_row_nnz) stats.max_row_nnz = n;
  }
  const std::uint64_t whole = static_cast<std::uint64_t>(rows / kRowPeriod);
  stats.nnz = whole * period_nnz;
  for (std::int64_t r = 0; r < rows % kRowPeriod; ++r) stats.nnz += spmv_row_nnz(r);
  if (rows >= kRowPeriod) stats.max_row_nnz = period_max;
  return stats;
}

double spmv_bcsr_fill(int block) {
  if (block < 1) throw std::invalid_argument("spmv_bcsr_fill: block must be >= 1");
  if (block == 1) return 1.0;
  // Local clustering: doubling the block dimension keeps ~72 % of the
  // previous density, so fill(2) = 0.72, fill(4) ~ 0.52, fill(8) ~ 0.37.
  return std::pow(0.72, std::log2(static_cast<double>(block)));
}

SpmvTraffic spmv_traffic(const SpmvMatrixStats& stats, SpmvFormat format,
                         int block) {
  if (block < 1) throw std::invalid_argument("spmv_traffic: block must be >= 1");
  const double rows = static_cast<double>(stats.rows);
  const double nnz = static_cast<double>(stats.nnz);
  SpmvTraffic t;
  // x is gathered (compulsory: each column read once) and y is streamed
  // read+write, identical across formats.
  t.vector_bytes = 8.0 * rows + 16.0 * rows;
  switch (format) {
    case SpmvFormat::Csr:
      // Values + column index per nonzero, one row pointer per row.  The
      // block factor is a register-level row unroll: no traffic change.
      t.value_bytes = 8.0 * nnz;
      t.index_bytes = 4.0 * nnz + 4.0 * (rows + 1.0);
      break;
    case SpmvFormat::Ell: {
      // Sliced ELL: rows are padded to the widest row *of their slice*, and
      // taller slices (block = slice height in row-period units) approach
      // the global maximum while height-1 slices approach the row mean.
      const double avg = stats.avg_row_nnz();
      const double max = static_cast<double>(stats.max_row_nnz);
      const double width = avg + (max - avg) / static_cast<double>(block);
      t.value_bytes = 8.0 * rows * width;
      t.index_bytes = 4.0 * rows * width;
      break;
    }
    case SpmvFormat::Bcsr: {
      // b x b dense blocks: stored values inflate by 1/fill, but only one
      // column index per block and one row pointer per block row remain.
      const double b = static_cast<double>(block);
      const double stored = nnz / spmv_bcsr_fill(block);
      t.value_bytes = 8.0 * stored;
      t.index_bytes = 4.0 * stored / (b * b) + 4.0 * (rows / b + 1.0);
      break;
    }
  }
  return t;
}

SpmvSurface::SpmvSurface(MachineSpec machine, int sockets_used)
    : machine_(std::move(machine)),
      sockets_used_(sockets_used),
      memory_(machine_, sockets_used, util::AffinityPolicy::Close) {}

double SpmvSurface::stream_efficiency(SpmvFormat format, int block) {
  const double lg = std::log2(static_cast<double>(block));
  switch (format) {
    case SpmvFormat::Csr: {
      // Dependent gather + short dot products stall the memory pipeline;
      // row unrolling overlaps a little of the latency, peaking around 4
      // interleaved rows before register pressure takes it back.
      static constexpr double kUnroll[] = {1.0, 1.06, 1.10, 1.07};
      const int i = block >= 8 ? 3 : block >= 4 ? 2 : block >= 2 ? 1 : 0;
      return 0.55 * kUnroll[i];
    }
    case SpmvFormat::Ell:
      // Fully regular SIMD streams; very tall slices cost a touch of
      // per-slice bookkeeping.
      return 0.92 - 0.01 * lg;
    case SpmvFormat::Bcsr:
      // Dense inner blocks stream contiguously; bigger blocks amortize the
      // per-block index handling further.
      return 0.66 + 0.045 * lg;
  }
  return 0.5;
}

double SpmvSurface::dram_fraction(double ws_bytes) const {
  const double l3 = static_cast<double>(l3_capacity().value);
  if (!(l3 > 0.0)) return 1.0;
  const double r = ws_bytes / l3;
  if (r <= 1.0) return 0.1 + 0.9 * r;
  return std::min(2.0, std::pow(r, 0.35));
}

double SpmvSurface::mean_gflops(const SpmvMatrixStats& stats, SpmvFormat format,
                                int block) const {
  const SpmvTraffic traffic = spmv_traffic(stats, format, block);
  const double ws = traffic.total();
  const double bw =
      memory_.mean_bandwidth(util::Bytes{static_cast<std::uint64_t>(ws)}).value;
  const double flops = 2.0 * static_cast<double>(stats.nnz);
  double rate = bw * stream_efficiency(format, block) * flops / ws;
  // Deterministic per-configuration texture, +/-0.4 % (same device as the
  // DGEMM surface): stable across runs, uncorrelated between grid points.
  std::uint64_t state = util::hash_seed(
      machine_hash(machine_.name), static_cast<std::uint64_t>(sockets_used_),
      static_cast<std::uint64_t>(format), static_cast<std::uint64_t>(block),
      static_cast<std::uint64_t>(stats.rows));
  const double u = static_cast<double>(util::splitmix64(state) >> 11) * 0x1.0p-53;
  rate *= 1.0 + 0.004 * (2.0 * u - 1.0);
  return rate;
}

}  // namespace rooftune::simhw
