#pragma once
// Stochastic measurement model for the simulated machines.
//
// The paper's methodology exists *because* benchmark samples are noisy,
// non-normal, and structured: iteration-level jitter, invocation-level
// bias (Georges et al.'s two repetition layers), occasional OS-noise
// outliers, and warm-up ramps where a configuration's performance rises
// over its first iterations (the effect behind the paper's 2695 v4
// minimum-count fix, §III-C.4 / §VI-C).  This module reproduces that
// structure with deterministic per-(machine, config, invocation) streams.

#include <cstdint>
#include <string>

namespace rooftune::simhw {

struct NoiseProfile {
  /// Lognormal sigma of per-iteration multiplicative jitter.
  double iter_sigma = 0.03;
  /// Lognormal sigma of the per-invocation bias factor.
  double invocation_sigma = 0.015;
  /// Probability and strength of a slow outlier iteration (OS noise).
  double outlier_prob = 0.003;
  double outlier_factor = 0.72;
  /// Warm-up ramp: multiplier 1 - d1*exp(-(it-1)/tau1) - d2*exp(-(it-1)/tau2)
  /// on the mean of iteration `it` (1-based).  d1/tau1 is the fast component
  /// (cache + turbo engagement), d2/tau2 the slow one (thermal/frequency
  /// settling — pronounced on the 2695 v4).
  double ramp_d1 = 0.05;
  double ramp_tau1 = 1.5;
  double ramp_d2 = 0.0;
  double ramp_tau2 = 30.0;
  /// The ramp applies only to configurations whose surface efficiency is at
  /// least this value — high-throughput configurations are the ones that
  /// push the machine into frequency ramping (0 = applies to all).
  double ramp_eff_threshold = 0.0;
  /// Extra sample noise when both sockets are active.
  double dual_socket_sigma_scale = 1.25;
};

/// Per-machine noise calibration (see DESIGN.md §2 for the rationale and
/// EXPERIMENTS.md for the observable effects each parameter reproduces).
NoiseProfile noise_profile(const std::string& machine_name);

/// The warm-up multiplier for iteration `iteration` (1-based) of a
/// configuration with surface efficiency `efficiency`.
double ramp_factor(const NoiseProfile& profile, double efficiency,
                   std::uint64_t iteration);

}  // namespace rooftune::simhw
