#include "simhw/machine.hpp"

#include <stdexcept>

#include "util/strings.hpp"

namespace rooftune::simhw {

const char* to_string(AvxType avx) {
  switch (avx) {
    case AvxType::Avx2: return "AVX2";
    case AvxType::Avx512: return "AVX512";
  }
  return "?";
}

int MachineSpec::ops_per_cycle(Precision precision) const {
  const int vector_bits = (avx == AvxType::Avx512) ? 512 : 256;
  const int element_bits = (precision == Precision::Double) ? 64 : 32;
  // lanes * 2 FLOPs per FMA * FMA pipes (paper Eq. 10 generalized).
  return vector_bits / element_bits * 2 * fma_units;
}

util::GFlops MachineSpec::theoretical_flops(int sockets_used, Precision precision) const {
  if (sockets_used < 1 || sockets_used > sockets) {
    throw std::invalid_argument("theoretical_flops: invalid socket count for " + name);
  }
  return util::GFlops{cpu_freq_ghz * cores_per_socket * ops_per_cycle(precision) *
                      sockets_used};
}

util::GBps MachineSpec::theoretical_bandwidth(int sockets_used) const {
  if (sockets_used < 1 || sockets_used > sockets) {
    throw std::invalid_argument("theoretical_bandwidth: invalid socket count for " + name);
  }
  // Eq. 11 with the paper's system-wide channel count, scaled to the
  // fraction of sockets in use.
  const double full = dram_freq_mhz * 1e6 * dram_channels_system * 8.0 / 1e9;
  return util::GBps{full * sockets_used / sockets};
}

util::Bytes MachineSpec::l3_capacity(int sockets_used) const {
  return util::Bytes{l3_per_socket.value * static_cast<std::uint64_t>(sockets_used)};
}

util::Bytes MachineSpec::l2_capacity(int sockets_used) const {
  return util::Bytes{l2_per_core.value *
                     static_cast<std::uint64_t>(cores_per_socket * sockets_used)};
}

util::Bytes MachineSpec::l1_capacity(int sockets_used) const {
  return util::Bytes{l1_per_core.value *
                     static_cast<std::uint64_t>(cores_per_socket * sockets_used)};
}

std::vector<MachineSpec> paper_machines() {
  // Table II.  fma_units = 2 on all four: Broadwell (2650/2695 v4) has two
  // 256-bit FMA pipes, Skylake Gold has two 512-bit pipes — this is what
  // makes the Eq. 9 results match Table III exactly.
  // Per-core caches: Broadwell has 256 KiB L2 + 32 KiB L1d per core,
  // Skylake-SP 1 MiB L2 + 32 KiB L1d (used only by the §VII inner-cache
  // extension; the paper's own tables never reference them).
  // TDP column: Intel ARK rated package power per socket.
  std::vector<MachineSpec> machines;
  machines.push_back({"2650v4", 2.2, 12, 2, AvxType::Avx2, 2,
                      util::Bytes::MiB(30), 2400.0, 4,
                      util::Bytes::KiB(256), util::Bytes::KiB(32), 105.0});
  machines.push_back({"2695v4", 2.1, 18, 2, AvxType::Avx2, 2,
                      util::Bytes::MiB(45), 2400.0, 4,
                      util::Bytes::KiB(256), util::Bytes::KiB(32), 120.0});
  machines.push_back({"gold6132", 2.6, 14, 2, AvxType::Avx512, 2,
                      util::Bytes{static_cast<std::uint64_t>(19.25 * 1024 * 1024)},
                      2666.0, 6, util::Bytes::MiB(1), util::Bytes::KiB(32),
                      140.0});
  machines.push_back({"gold6148", 2.4, 20, 2, AvxType::Avx512, 2,
                      util::Bytes{static_cast<std::uint64_t>(31.75 * 1024 * 1024)},
                      2666.0, 6, util::Bytes::MiB(1), util::Bytes::KiB(32),
                      150.0});
  return machines;
}

std::vector<MachineSpec> all_machines() {
  auto machines = paper_machines();
  // Xeon Silver 4110 (§VI-A / Eq. 12): one FMA unit, 8 cores, 2 sockets.
  machines.push_back({"silver4110", 2.1, 8, 2, AvxType::Avx512, 1,
                      util::Bytes::MiB(11), 2400.0, 6, util::Bytes::MiB(1),
                      util::Bytes::KiB(32), 85.0});
  return machines;
}

MachineSpec parse_machine_spec(const std::string& text) {
  const auto fields = util::split(text, ':');
  if (fields.size() != 9 && fields.size() != 10) {
    throw std::invalid_argument(
        "parse_machine_spec: expected 9 ':'-separated fields "
        "(name:freq:cores:sockets:avx:units:l3:dram_mts:channels) plus an "
        "optional :tdp_w, got " +
        std::to_string(fields.size()));
  }
  const auto number = [&](std::size_t i, const char* what) {
    try {
      return std::stod(util::trim(fields[i]));
    } catch (const std::exception&) {
      throw std::invalid_argument(std::string("parse_machine_spec: bad ") + what +
                                  " '" + fields[i] + "'");
    }
  };

  MachineSpec m;
  m.name = util::trim(fields[0]);
  if (m.name.empty()) throw std::invalid_argument("parse_machine_spec: empty name");
  m.cpu_freq_ghz = number(1, "frequency");
  m.cores_per_socket = static_cast<int>(number(2, "core count"));
  m.sockets = static_cast<int>(number(3, "socket count"));
  const std::string avx = util::to_lower(util::trim(fields[4]));
  if (avx == "avx2") {
    m.avx = AvxType::Avx2;
  } else if (avx == "avx512") {
    m.avx = AvxType::Avx512;
  } else {
    throw std::invalid_argument("parse_machine_spec: avx must be avx2|avx512, got '" +
                                fields[4] + "'");
  }
  m.fma_units = static_cast<int>(number(5, "fma unit count"));
  m.l3_per_socket = util::parse_bytes(util::trim(fields[6]));
  m.dram_freq_mhz = number(7, "dram transfer rate");
  m.dram_channels_system = static_cast<int>(number(8, "channel count"));
  if (fields.size() == 10) m.tdp_w = number(9, "tdp");

  if (m.cpu_freq_ghz <= 0.0 || m.cores_per_socket <= 0 || m.sockets <= 0 ||
      m.fma_units <= 0 || m.dram_freq_mhz <= 0.0 || m.dram_channels_system <= 0 ||
      m.tdp_w < 0.0) {
    throw std::invalid_argument("parse_machine_spec: all counts must be positive");
  }
  return m;
}

MachineSpec machine_by_name(const std::string& name) {
  const std::string key = util::to_lower(util::trim(name));
  for (auto& m : all_machines()) {
    if (util::to_lower(m.name) == key) return m;
  }
  throw std::invalid_argument("unknown machine '" + name +
                              "' (2650v4|2695v4|gold6132|gold6148|silver4110)");
}

}  // namespace rooftune::simhw
