#pragma once
// Synthetic sparse matrix + calibrated SpMV response surface.
//
// SpMV (y = A*x, A sparse) is the repository's irregular, bandwidth-bound
// kernel: its tuning parameters select the *storage format* (CSR, sliced
// ELL, blocked CSR) and a format-specific block factor, and the winning
// choice depends on the matrix's row-length distribution and on where the
// working set sits in the memory hierarchy.  No published calibration
// target exists for the paper's machines, so — as with the DGEMM and TRIAD
// surfaces (DESIGN.md §2) — the surface is an analytic family built on the
// machines' calibrated TRIAD bandwidth curve: the autotuner only observes
// (sample, cost) pairs, and this surface supplies them with an
// SpMV-landscape shape:
//
//   rate(GFLOP/s) = bandwidth(working_set) * stream_eff(format, block)
//                   * texture(config) * 2*nnz / traffic(format, block)
//
//   * traffic is the analytic byte volume the format moves per kernel pass
//     (values + indices + the x/y vectors), so formats with padding or
//     fill pay for it in time exactly as on hardware;
//   * stream_eff captures the access-pattern cost the byte count cannot:
//     CSR's dependent gather stalls, sliced ELL's regular SIMD streams,
//     BCSR's dense-block inner loops;
//   * bandwidth(ws) is the machine's TRIAD surface (L3 regime, smooth
//     roll-off, DRAM plateau), so the rows axis sweeps the same
//     cache-to-DRAM transition the paper's TRIAD study maps.
//
// The matrix is synthetic and deterministic: row lengths come from a pure
// hash with a 4096-row period, mixing a uniform bulk with rare heavy "hub"
// rows — skewed enough that plain ELL padding loses, local enough that
// small BCSR blocks win back index traffic.  Stats are O(period) to
// compute and identical on every platform.

#include <cstdint>
#include <string>

#include "simhw/machine.hpp"
#include "simhw/triad_model.hpp"
#include "util/units.hpp"

namespace rooftune::simhw {

/// Storage formats of the "format" tuning parameter, in declared order.
enum class SpmvFormat { Csr = 0, Ell = 1, Bcsr = 2 };

const char* to_string(SpmvFormat format);

/// From the integer tuning-parameter value; throws std::invalid_argument
/// outside {0, 1, 2}.
SpmvFormat spmv_format_from(std::int64_t value);

/// Deterministic row-structure statistics of the synthetic square matrix
/// with `rows` rows (columns == rows).
struct SpmvMatrixStats {
  std::int64_t rows = 0;
  std::uint64_t nnz = 0;        ///< total stored nonzeros
  std::uint64_t max_row_nnz = 0;  ///< ELL width before slicing
  [[nodiscard]] double avg_row_nnz() const {
    return rows > 0 ? static_cast<double>(nnz) / static_cast<double>(rows) : 0.0;
  }
};

/// Nonzeros in row `row` — a pure hash of (row mod 4096): ~6..32 bulk rows
/// plus ~3 % heavy hubs.  Period 4096 makes whole-matrix stats exact in
/// O(4096) for the power-of-two row counts the search space sweeps.
std::uint64_t spmv_row_nnz(std::int64_t row);

/// Exact whole-matrix stats (nnz sums the periodic row pattern; rows need
/// not be a multiple of the period).  Throws for rows <= 0.
SpmvMatrixStats spmv_matrix_stats(std::int64_t rows);

/// BCSR fill fraction: nonzeros per stored b x b dense block, modelling the
/// synthetic matrix's local clustering (fill(1) = 1, halving roughly every
/// two octaves of b — small blocks trade little padding for most of the
/// index-traffic saving).
double spmv_bcsr_fill(int block);

/// Analytic bytes one SpMV pass moves, per format (8-byte values, 4-byte
/// indices, x read once per column, y streamed read+write).
struct SpmvTraffic {
  double value_bytes = 0.0;   ///< stored values (padding/fill included)
  double index_bytes = 0.0;   ///< column/block indices + row pointers
  double vector_bytes = 0.0;  ///< x + y
  [[nodiscard]] double total() const {
    return value_bytes + index_bytes + vector_bytes;
  }
};

/// Traffic model.  `block` means, per format: CSR — row-unroll factor (no
/// traffic effect); ELL — slice height, shrinking the padded width from the
/// global max toward the mean (SELL-style); BCSR — dense block dimension b
/// (values inflate by 1/fill(b), indices shrink by fill(b)*b^2).
SpmvTraffic spmv_traffic(const SpmvMatrixStats& stats, SpmvFormat format,
                         int block);

class SpmvSurface {
 public:
  SpmvSurface(MachineSpec machine, int sockets_used);

  /// Mean sustained GFLOP/s (flops = 2*nnz; padding does no useful work).
  [[nodiscard]] double mean_gflops(const SpmvMatrixStats& stats,
                                   SpmvFormat format, int block) const;

  /// Access-pattern efficiency in (0, 1]: the fraction of the TRIAD
  /// bandwidth curve the format's memory streams sustain.
  [[nodiscard]] static double stream_efficiency(SpmvFormat format, int block);

  /// Fraction of the analytic traffic that reaches DRAM — the counter
  /// model's LLC-miss multiplier.  Resident working sets leak a trickle,
  /// the fraction reaches 1 at the L3 capacity, and past it the irregular
  /// x-gather re-fetches lines: (ws/L3)^0.35, capped at 2.
  [[nodiscard]] double dram_fraction(double ws_bytes) const;

  [[nodiscard]] const TriadSurface& memory() const { return memory_; }
  [[nodiscard]] util::Bytes l3_capacity() const { return memory_.l3_capacity(); }

 private:
  MachineSpec machine_;
  int sockets_used_;
  TriadSurface memory_;
};

}  // namespace rooftune::simhw
