#pragma once
// Calibrated DGEMM response surface for the simulated machines.
//
// The surface maps matrix dimensions (n, m, k) to the mean GFLOP/s the
// machine sustains.  It is an analytic family
//
//   eff(n,m,k) = peak_eff * G(n,m,k) / G(anchor) * texture(n,m,k)
//
// where G is a product of log-space Gaussian profiles around a per-machine
// anchor (the paper's Table V optimum) and saturating small-dimension
// penalties, so that:
//   * the grid argmax is exactly the paper's reported optimal dimensions,
//   * the value there matches the paper's Table IV utilization,
//   * small dimensions (the §IV-A search-space study) perform poorly,
//   * Intel's square 1000^3 choice lands at the ~52–56 % utilization the
//     paper reports (§VI-A), and
//   * a deterministic per-configuration "texture" (±0.5 %) keeps the
//     surface from being implausibly smooth.
//
// This is the documented substitution for the real Xeon nodes (DESIGN.md
// §2): the autotuner only observes (sample, cost) pairs, and this surface
// supplies them with the paper's shape.

#include <cstdint>

#include "core/config.hpp"
#include "simhw/machine.hpp"
#include "util/units.hpp"

namespace rooftune::simhw {

/// Per-(machine, socket-count) calibration of the surface.
struct DgemmAnchor {
  std::int64_t n = 0, m = 0, k = 0;  ///< grid argmax (paper Table V)
  double peak_eff = 0.0;             ///< efficiency there (paper Table IV)
  // Log2-space widths of the profiles, asymmetric around the anchor.  The
  // hi sides are wide: real BLAS sustains high efficiency on matrices
  // *larger* than the optimum (more work to amortize), while small
  // dimensions collapse quickly (the paper's §IV-A narrowing study).
  double sigma_n_lo = 2.8;
  double sigma_n_hi = 5.5;
  double sigma_m_lo = 2.8;
  double sigma_m_hi = 5.5;
  double sigma_k_lo = 1.6;           ///< below k*: small k hurts quickly
  double sigma_k_hi = 4.6;           ///< above k*: large k decays gently
};

/// Calibration for one machine (single- and dual-socket anchors).
DgemmAnchor dgemm_anchor(const std::string& machine_name, int sockets_used);

class DgemmSurface {
 public:
  DgemmSurface(MachineSpec machine, int sockets_used);

  /// Deterministic mean efficiency in (0, 0.995].
  [[nodiscard]] double efficiency(std::int64_t n, std::int64_t m, std::int64_t k) const;

  /// Mean sustained rate: efficiency * theoretical peak.
  [[nodiscard]] util::GFlops mean_gflops(std::int64_t n, std::int64_t m,
                                         std::int64_t k) const;

  [[nodiscard]] const DgemmAnchor& anchor() const { return anchor_; }
  [[nodiscard]] const MachineSpec& machine() const { return machine_; }
  [[nodiscard]] int sockets_used() const { return sockets_used_; }

 private:
  [[nodiscard]] double shape(double n, double m, double k) const;

  MachineSpec machine_;
  int sockets_used_;
  DgemmAnchor anchor_;
  double shape_at_anchor_;
};

}  // namespace rooftune::simhw
