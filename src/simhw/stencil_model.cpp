#include "simhw/stencil_model.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

#include "util/rng.hpp"

namespace rooftune::simhw {

namespace {

constexpr std::uint64_t kStencilSalt = 0x9E37'79B1'85EB'CA87ull;
// Machines whose spec omits private-cache sizes fall back to the smallest
// configuration the paper's fleet ships, so tiles never look infinitely
// cheap.
constexpr std::uint64_t kFallbackL1 = 32ull * 1024;
constexpr std::uint64_t kFallbackL2 = 256ull * 1024;

std::uint64_t machine_hash(const std::string& s) {
  std::uint64_t h = 0xA5A5A5A5DEADBEEFull;
  for (char c : s) h = util::hash_seed(h, static_cast<unsigned char>(c));
  return h;
}

}  // namespace

StencilSurface::StencilSurface(MachineSpec machine, int sockets_used,
                               std::int64_t grid_n)
    : machine_(std::move(machine)),
      sockets_used_(sockets_used),
      grid_n_(grid_n),
      memory_(machine_, sockets_used, util::AffinityPolicy::Close) {
  if (grid_n < 8) {
    throw std::invalid_argument("stencil: grid_n must be >= 8, got " +
                                std::to_string(grid_n));
  }
  l1_ = machine_.l1_per_core.value > 0 ? machine_.l1_per_core
                                       : util::Bytes{kFallbackL1};
  l2_ = machine_.l2_per_core.value > 0 ? machine_.l2_per_core
                                       : util::Bytes{kFallbackL2};
}

double StencilSurface::grid_bytes() const {
  const double n = static_cast<double>(grid_n_);
  return 2.0 * 8.0 * n * n;  // source + destination grid, doubles
}

double StencilSurface::sweep_flops() const {
  const double n = static_cast<double>(grid_n_);
  return 6.0 * n * n;
}

double StencilSurface::sweep_bytes(std::int64_t ti, std::int64_t tj) const {
  const double n = static_cast<double>(grid_n_);
  // Compulsory: read every source point once, write every destination point
  // once (write-allocate folded into the 8 B write term).
  double per_point = 16.0;
  // The inner loop keeps three source rows of the tile live (j-1, j, j+1
  // neighbourhood plus halo columns).  When they spill L1 the top row is
  // re-fetched from L2 on the next row sweep: one extra 8 B read per point.
  const double rows3 = 3.0 * 8.0 * static_cast<double>(tj + 4);
  if (rows3 > static_cast<double>(l1_.value)) per_point += 8.0;
  // The whole tile (with one-point halo) should sit in the private L2
  // between sweeps; a tile that spills streams its halo rows from shared
  // cache or DRAM: half a line extra per point on average.
  const double tile =
      8.0 * static_cast<double>(ti + 2) * static_cast<double>(tj + 2);
  if (tile > static_cast<double>(l2_.value)) per_point += 4.0;
  return per_point * n * n;
}

double StencilSurface::dram_fraction() const {
  const double l3 = static_cast<double>(memory_.l3_capacity().value);
  if (!(l3 > 0.0)) return 1.0;
  const double r = grid_bytes() / l3;
  if (r <= 1.0) return 0.1 + 0.9 * r;
  return 1.0;  // the sweep streams; no gather re-fetch past capacity
}

double StencilSurface::mean_gflops(std::int64_t ti, std::int64_t tj,
                                   std::int64_t unroll) const {
  if (ti < 1 || tj < 1) {
    throw std::invalid_argument("stencil: tile dims must be >= 1");
  }
  const double bytes = sweep_bytes(ti, tj);
  const double flops = sweep_flops();
  // Bandwidth regime is picked by the resident grids, not the per-tile
  // traffic: a 256^2 grid tunes inside L3, the default 4096^2 against DRAM.
  const double bw =
      memory_
          .mean_bandwidth(util::Bytes{static_cast<std::uint64_t>(grid_bytes())})
          .value;
  double rate = bw * flops / bytes;
  // Short inner rows pay the hardware-prefetch warm-up per row fragment.
  const double j = static_cast<double>(tj);
  rate *= j / (j + 8.0);
  // Tall tiles amortize the per-tile-row loop overhead (bounds + pointer
  // setup) over more rows.
  const double i = static_cast<double>(ti);
  rate *= i / (i + 2.0);
  // Unroll peaks at 4: below it the FMA latency chain is exposed, above it
  // register pressure spills.
  double f_unroll = 1.0;
  switch (unroll) {
    case 1: f_unroll = 0.80; break;
    case 2: f_unroll = 0.95; break;
    case 4: f_unroll = 1.0; break;
    case 8: f_unroll = 0.92; break;
    default:
      throw std::invalid_argument("stencil: unroll must be 1, 2, 4 or 8");
  }
  rate *= f_unroll;
  // Deterministic per-configuration texture, +/-0.4 %.
  std::uint64_t state = util::hash_seed(
      kStencilSalt, machine_hash(machine_.name),
      static_cast<std::uint64_t>(sockets_used_), static_cast<std::uint64_t>(ti),
      static_cast<std::uint64_t>(tj), static_cast<std::uint64_t>(unroll),
      static_cast<std::uint64_t>(grid_n_));
  const double u = static_cast<double>(util::splitmix64(state) >> 11) * 0x1.0p-53;
  rate *= 1.0 + 0.004 * (2.0 * u - 1.0);
  return rate;
}

}  // namespace rooftune::simhw
