#pragma once
// Simulated execution backends: core::Backend implementations that replay
// the calibrated response surfaces + noise model against a virtual clock.
//
// Costs charged to the clock per invocation (mirroring the real tool's
// §III-A structure): process launch, operand initialization (bytes at a
// fixed init bandwidth), one untimed pre-heat kernel call, then one kernel
// time per iteration, then teardown.  "Time" columns of the reproduced
// tables are spans of this clock.

#include <cstdint>
#include <optional>

#include "core/backend.hpp"
#include "simhw/dgemm_model.hpp"
#include "simhw/machine.hpp"
#include "simhw/noise.hpp"
#include "simhw/spmv_model.hpp"
#include "simhw/stencil_model.hpp"
#include "simhw/triad_model.hpp"
#include "util/affinity.hpp"
#include "util/clock.hpp"
#include "util/rng.hpp"

namespace rooftune::simhw {

struct SimOptions {
  int sockets_used = 1;
  util::AffinityPolicy affinity = util::AffinityPolicy::Close;
  bool model_inner_caches = false;    ///< §VII extension: L1/L2 TRIAD regimes
  /// Which STREAM kernel the memory backend simulates (the paper uses
  /// TRIAD; copy/scale/add are available for full-suite studies).
  stream::Kernel stream_kernel = stream::Kernel::Triad;
  std::uint64_t seed = 2021;          ///< master seed for all noise streams
  /// Enlarged-grid preset: octave subdivision factor the drivers pass to
  /// core::dgemm_scaled_space() when building the search space (1 = the
  /// paper's 96-config reduced grid, 6 ≈ 11k configs).  The response
  /// surface is analytic in (n, m, k), so intermediate dimensions evaluate
  /// without any model change; the backend itself only records the value
  /// for provenance.
  int grid_scale = 1;
  double launch_overhead_s = 0.040;   ///< process spawn + BLAS thread pool
  double init_bandwidth_gbps = 8.0;   ///< operand initialization speed
  double teardown_s = 0.005;
  /// Modelled cost of one timer pair around a timed region (clock_gettime
  /// pair).  Charged once per run_iteration / run_batch call, and — the
  /// part that matters for short kernels — included in the *measured* time,
  /// so reported rates bias low until the evaluator's adaptive batching
  /// amortizes the pair over many iterations.  0 disables the model (and
  /// the batching, keeping legacy runs bit-identical).
  double timer_overhead_s = 0.0;
  /// Modelled cost of materializing a fresh operand working set (mmap +
  /// page-fault storm) — the cost util::WorkspaceArena removes on the real
  /// backends.  Charged per invocation when arena_reuse is off; with
  /// arena_reuse on it is paid only when the working set exceeds the
  /// largest seen so far (a modelled slab miss).  0 disables the model,
  /// keeping legacy runs bit-identical.
  double setup_overhead_s = 0.0;
  /// Simulate workspace-arena slab reuse (see setup_overhead_s).  Also
  /// surfaces modelled ArenaStats through Backend::arena_stats() so the
  /// report pipeline can be exercised without real hardware.
  bool arena_reuse = false;
  /// Thermal time constant of the modelled package in seconds.  When
  /// positive, the effective frequency reported through
  /// last_invocation_telemetry() decays from the nominal clock toward
  /// throttle_factor x nominal with this time constant over each
  /// invocation's modelled busy time — the DVFS/thermal-throttling drift
  /// the telemetry subsystem exists to detect.  The thermal state resets at
  /// every invocation boundary (the machine cools during the untimed
  /// launch/teardown gap), which keeps the telemetry a pure function of the
  /// invocation and therefore bit-identical across worker assignments.
  /// 0 (default) disables the drift model; kernel rates are never affected
  /// either way, so all legacy schedules stay bit-identical.
  double thermal_tau_s = 0.0;
  /// Sustained-state frequency as a fraction of nominal once the package is
  /// heat-soaked (e.g. 0.85 = 15 % throttle).  Only meaningful with
  /// thermal_tau_s > 0.
  double throttle_factor = 1.0;
  /// Modelled package power draw in watts while the invocation runs.
  /// Positive values produce synthetic RAPL energy in the telemetry span
  /// (pkg_joules = power x modelled invocation seconds), making
  /// Joules/GFLOP and GFLOP/s/W figures unit-testable without powercap.
  double pkg_power_w = 0.0;
  /// Modelled DRAM power draw in watts (the RAPL dram domain); 0 = absent.
  double dram_power_w = 0.0;
  /// Synthetic hardware-counter model: when on, the backend reports
  /// cycles/instructions/LLC-misses per invocation through
  /// Backend::last_invocation_counters(), derived from the same response
  /// surfaces that generate timings (cycles from modelled kernel seconds at
  /// the nominal clock, misses from the analytic byte traffic, instructions
  /// from the vector-op mix) — a pure function of the invocation's
  /// accounted work, hence deterministic and bit-identical across worker
  /// assignments.  This is what makes the counter-prune policy
  /// (core/bottleneck.hpp) testable without a PMU.  Off by default so every
  /// legacy run stays bit-identical.
  bool counter_model = false;
  /// Memory-hierarchy term of the counter model (DGEMM only): operands that
  /// overflow L3 cannot be held across the k-panel sweep, so LLC traffic
  /// grows over the compulsory operand bytes by (working_set / L3)^exponent
  /// once the working set spills — the panel-re-streaming regime of an
  /// unblocked GEMM.  The timing surface is clamped by the roofline this
  /// traffic implies (value ≤ DRAM_bw × modelled OI), keeping the counter
  /// signatures and the timings they must explain consistent — the property
  /// the counter-prune policy's soundness rests on.  Only read when
  /// counter_model is on; legacy surfaces are untouched.
  double counter_spill_exponent = 2.0;
  /// Heterogeneous per-config invocation cost for scheduler ablations:
  /// when > 0, each begin_invocation OCCUPIES THE HOST for a real
  /// (wall-clock) interval — cost_base_s for most configurations and
  /// cost_base_s x cost_skew for a hash-selected eighth of them (the
  /// "stragglers").  The occupancy is a std::this_thread::sleep_for; the
  /// virtual clock, samples, telemetry, and counters are untouched, so
  /// results and trace journals stay bit-identical to cost_skew = 0 and
  /// across scheduler modes — only host wall-clock differs, which is
  /// exactly the variable the wave-vs-pipeline ablation measures.
  /// Straggler membership is a pure function of the configuration hash
  /// (seed-independent), so scenarios reproduce across machines.
  /// 0 (default) disables the model, keeping legacy runs bit-identical.
  double cost_skew = 0.0;
  /// Real seconds a non-straggler invocation occupies the host under
  /// cost_skew (stragglers take cost_skew times this).
  double cost_base_s = 0.001;
};

/// The deterministic straggler predicate behind SimOptions::cost_skew:
/// multiplier applied to cost_base_s for `config` (cost_skew for the
/// hash-selected eighth, 1 otherwise; 1 when the model is off).  Exposed
/// so tests and the pipeline ablation can partition a space without
/// running it.
double invocation_cost_multiplier(const core::Configuration& config,
                                  const SimOptions& options);

/// Common plumbing for both simulated backends.
class SimBackendBase : public core::Backend {
 public:
  SimBackendBase(MachineSpec machine, SimOptions options);

  /// Invocation boundaries are final here so the base can bracket the
  /// subclass model (do_begin/do_end_invocation) with per-invocation timing
  /// accumulators — every charge() sums into them from zero, which is what
  /// makes last_invocation_timing() independent of the clock's accumulated
  /// base and therefore bit-identical across worker assignments.
  void begin_invocation(const core::Configuration& config,
                        std::uint64_t invocation_index) final;
  void end_invocation() final;
  [[nodiscard]] std::optional<InvocationTiming> last_invocation_timing()
      const final {
    if (!timing_valid_) return std::nullopt;
    return InvocationTiming{util::Seconds{inv_setup_s_},
                            util::Seconds{inv_wall_s_}};
  }

  [[nodiscard]] const util::Clock& clock() const final { return clock_; }
  /// One modelled timer pair around the iteration: measured time is the
  /// true kernel time plus SimOptions::timer_overhead_s, the reported rate
  /// shrinks by the same ratio, and the overhead is charged to the clock.
  core::Sample run_iteration() final;
  /// One timer pair around the whole group: the overhead is paid once, so
  /// the group-mean rate recovers the bias run_iteration suffers — the
  /// deterministic counterpart of what adaptive batching buys on hardware.
  core::BatchSample run_batch(std::uint64_t count) final;
  /// Simulated backends touch no process-global state: safe one-per-worker.
  [[nodiscard]] bool reentrant() const final { return true; }
  /// Modelled arena counters; absent unless SimOptions::arena_reuse.
  [[nodiscard]] std::optional<util::ArenaStats> arena_stats() const final {
    if (!options_.arena_reuse) return std::nullopt;
    return arena_stats_;
  }
  /// Synthetic frequency/thermal/energy telemetry over the last invocation,
  /// from the deterministic drift model (SimOptions::thermal_tau_s,
  /// throttle_factor, pkg_power_w).  Absent unless the model is engaged —
  /// default options keep every existing run untouched.
  [[nodiscard]] std::optional<core::TelemetrySpan> last_invocation_telemetry()
      const final;
  /// Synthetic counter deltas over the last invocation's timed kernel
  /// phase (SimOptions::counter_model); absent unless the model is engaged.
  [[nodiscard]] std::optional<core::CounterSample> last_invocation_counters()
      const final;
  [[nodiscard]] const MachineSpec& machine() const { return machine_; }
  [[nodiscard]] const SimOptions& sim_options() const { return options_; }
  [[nodiscard]] const NoiseProfile& noise() const { return noise_; }

  /// Total simulated time elapsed so far.
  [[nodiscard]] util::Seconds now() const { return clock_.now(); }

 protected:
  /// The kernel proper: one noisy sample + its true time charged to the
  /// clock, with no timer-pair cost (the base adds that).
  [[nodiscard]] virtual core::Sample true_iteration() = 0;

  /// Subclass invocation model (launch, operand init, pre-heat / teardown);
  /// the public begin/end_invocation wrap these with timing accounting.
  virtual void do_begin_invocation(const core::Configuration& config,
                                   std::uint64_t invocation_index) = 0;
  virtual void do_end_invocation() = 0;

  /// Derive the RNG for (config, invocation) and draw the invocation bias.
  void start_noise_stream(const core::Configuration& config,
                          std::uint64_t invocation_index);

  /// One noisy sample around `mean_rate` for 1-based iteration `iteration`
  /// of a configuration with surface efficiency `efficiency`.
  [[nodiscard]] double sample_rate(double mean_rate, double efficiency,
                                   std::uint64_t iteration);

  void charge(util::Seconds t) {
    clock_.advance(t);
    inv_wall_s_ += t.value;
    if (setup_phase_) inv_setup_s_ += t.value;
  }
  void charge_seconds(double t) { charge(util::Seconds{t}); }

  /// Account one modelled working-set lease of `bytes` and charge
  /// SimOptions::setup_overhead_s unless arena reuse turns it into a slab
  /// hit (bytes within the high-water mark).
  void charge_setup(double bytes);

  MachineSpec machine_;
  SimOptions options_;
  NoiseProfile noise_;
  util::VirtualClock clock_;
  util::Xoshiro256 rng_;
  double invocation_bias_ = 1.0;
  double sigma_scale_ = 1.0;
  double high_water_bytes_ = 0.0;  ///< modelled arena capacity
  util::ArenaStats arena_stats_;   ///< modelled counters (see charge_setup)
  // Per-invocation timing, accumulated from zero each begin_invocation so
  // the sums never depend on the clock's base (see last_invocation_timing).
  double inv_setup_s_ = 0.0;
  double inv_wall_s_ = 0.0;
  bool setup_phase_ = false;
  bool timing_valid_ = false;
  // Counter-model accumulators over the timed kernel phase only (the
  // pre-heat call and launch/teardown are outside the perf bracket, same
  // as the real sampler's kernel_phase_begin/end window).
  double inv_kernel_s_ = 0.0;
  double inv_flops_ = 0.0;
  double inv_bytes_ = 0.0;
  /// LLC-traffic multiplier over the compulsory bytes for the current
  /// configuration (the L3-spill model; 1 when resident or model off).
  /// Scales reported misses only — the instruction stream is unchanged.
  double counter_traffic_scale_ = 1.0;
};

/// Simulated DGEMM benchmark program (metric: GFLOP/s).
class SimDgemmBackend final : public SimBackendBase {
 public:
  SimDgemmBackend(MachineSpec machine, SimOptions options);

  [[nodiscard]] std::string metric_name() const override { return "GFLOP/s"; }
  /// 2nmk FLOP per DGEMM call — analytic numerator of the intensity column.
  [[nodiscard]] std::optional<double> flops_per_iteration() const override {
    return in_invocation_ || flops_ > 0.0 ? std::optional<double>(flops_)
                                          : std::nullopt;
  }
  /// 8(nk + km + nm) bytes: the three operand matrices once each.
  [[nodiscard]] std::optional<double> bytes_per_iteration() const override {
    return bytes_ > 0.0 ? std::optional<double>(bytes_) : std::nullopt;
  }

  [[nodiscard]] const DgemmSurface& surface() const { return surface_; }

  /// Predicted OI under the same traffic model the counter signatures use:
  /// compulsory operand bytes times the L3-spill multiplier.  This is what
  /// the pre-invocation skip calibrates against — by construction measured
  /// and predicted OI agree exactly here.
  [[nodiscard]] std::optional<double> analytic_intensity(
      const core::Configuration& config) const override;

 protected:
  [[nodiscard]] core::Sample true_iteration() override;
  void do_begin_invocation(const core::Configuration& config,
                           std::uint64_t invocation_index) override;
  void do_end_invocation() override;

 private:
  /// (working_set / L3)^counter_spill_exponent once spilled, else 1.
  [[nodiscard]] double spill_scale(double ws_bytes) const;

  DgemmSurface surface_;
  std::int64_t n_ = 0, m_ = 0, k_ = 0;
  double mean_rate_ = 0.0;   ///< GFLOP/s from the surface for current config
  double efficiency_ = 0.0;
  double flops_ = 0.0;
  double bytes_ = 0.0;       ///< operand bytes per kernel call
  std::uint64_t iteration_ = 0;
  bool in_invocation_ = false;
};

/// Simulated TRIAD benchmark program (metric: GB/s).
class SimTriadBackend final : public SimBackendBase {
 public:
  SimTriadBackend(MachineSpec machine, SimOptions options);

  [[nodiscard]] std::string metric_name() const override { return "GB/s"; }
  /// flops_per_element x N — e.g. 2N for TRIAD (one FMA per element).
  [[nodiscard]] std::optional<double> flops_per_iteration() const override {
    return flops_ > 0.0 ? std::optional<double>(flops_) : std::nullopt;
  }
  /// bytes_per_element x N — e.g. 24N for TRIAD (STREAM convention).
  [[nodiscard]] std::optional<double> bytes_per_iteration() const override {
    return bytes_ > 0.0 ? std::optional<double>(bytes_) : std::nullopt;
  }

  [[nodiscard]] const TriadSurface& surface() const { return surface_; }

 protected:
  [[nodiscard]] core::Sample true_iteration() override;
  void do_begin_invocation(const core::Configuration& config,
                           std::uint64_t invocation_index) override;
  void do_end_invocation() override;

 private:
  TriadSurface surface_;
  double mean_rate_ = 0.0;  ///< GB/s from the surface for current config
  double bytes_ = 0.0;      ///< bytes moved per kernel pass
  double flops_ = 0.0;      ///< arithmetic per kernel pass
  std::uint64_t iteration_ = 0;
  bool in_invocation_ = false;
};

/// Simulated SpMV benchmark program (metric: GFLOP/s — padding and fill do
/// no useful work, so the rate counts 2*nnz regardless of format).
/// Parameters: "rows" (matrix dimension), "format" (0 = CSR, 1 = sliced
/// ELL, 2 = BCSR), "block" (format-specific block factor; see
/// simhw/spmv_model.hpp).
class SimSpmvBackend final : public SimBackendBase {
 public:
  SimSpmvBackend(MachineSpec machine, SimOptions options);

  [[nodiscard]] std::string metric_name() const override { return "GFLOP/s"; }
  /// 2*nnz useful FLOP per SpMV pass (one multiply-add per stored nonzero).
  [[nodiscard]] std::optional<double> flops_per_iteration() const override {
    return flops_ > 0.0 ? std::optional<double>(flops_) : std::nullopt;
  }
  /// Analytic format traffic per pass: values + indices + x/y streams.
  [[nodiscard]] std::optional<double> bytes_per_iteration() const override {
    return bytes_ > 0.0 ? std::optional<double>(bytes_) : std::nullopt;
  }

  [[nodiscard]] const SpmvSurface& surface() const { return surface_; }

  /// OI under the counter model's traffic: 2*nnz over format bytes times
  /// the DRAM fraction — matching the reported LLC misses exactly, so the
  /// counter-prune bound stays a true ceiling.
  [[nodiscard]] std::optional<double> analytic_intensity(
      const core::Configuration& config) const override;

 protected:
  [[nodiscard]] core::Sample true_iteration() override;
  void do_begin_invocation(const core::Configuration& config,
                           std::uint64_t invocation_index) override;
  void do_end_invocation() override;

 private:
  SpmvSurface surface_;
  double mean_rate_ = 0.0;  ///< GFLOP/s from the surface for current config
  double flops_ = 0.0;
  double bytes_ = 0.0;
  std::uint64_t iteration_ = 0;
  bool in_invocation_ = false;
};

/// Simulated 2D 5-point stencil benchmark program (metric: GFLOP/s).
/// Parameters: "ti"/"tj" (tile height/width), "unroll" (inner unroll).
/// The grid edge N is a benchmark-definition knob (CLI --grid-n), not a
/// tuning parameter.
class SimStencilBackend final : public SimBackendBase {
 public:
  SimStencilBackend(MachineSpec machine, SimOptions options,
                    std::int64_t grid_n = 4096);

  [[nodiscard]] std::string metric_name() const override { return "GFLOP/s"; }
  /// 6*N^2 FLOP per sweep.
  [[nodiscard]] std::optional<double> flops_per_iteration() const override {
    return flops_ > 0.0 ? std::optional<double>(flops_) : std::nullopt;
  }
  /// Tiling-dependent traffic: 16 B/point compulsory plus L1/L2 spill
  /// re-fetches (see simhw/stencil_model.hpp).
  [[nodiscard]] std::optional<double> bytes_per_iteration() const override {
    return bytes_ > 0.0 ? std::optional<double>(bytes_) : std::nullopt;
  }

  [[nodiscard]] const StencilSurface& surface() const { return surface_; }

  /// OI under the counter model's traffic: 6*N^2 over tiling bytes times
  /// the grid's DRAM fraction.
  [[nodiscard]] std::optional<double> analytic_intensity(
      const core::Configuration& config) const override;

 protected:
  [[nodiscard]] core::Sample true_iteration() override;
  void do_begin_invocation(const core::Configuration& config,
                           std::uint64_t invocation_index) override;
  void do_end_invocation() override;

 private:
  StencilSurface surface_;
  double mean_rate_ = 0.0;  ///< GFLOP/s from the surface for current config
  double flops_ = 0.0;
  double bytes_ = 0.0;
  std::uint64_t iteration_ = 0;
  bool in_invocation_ = false;
};

}  // namespace rooftune::simhw
