#include "simhw/noise.hpp"

#include <cmath>
#include <stdexcept>

#include "util/strings.hpp"

namespace rooftune::simhw {

NoiseProfile noise_profile(const std::string& machine_name) {
  const std::string key = util::to_lower(machine_name);
  NoiseProfile p;
  if (key == "2650v4") {
    // Broadwell, stable clocks: mild jitter, tiny warm-up (Single loses
    // only ~2.4 % in the paper).
    p.iter_sigma = 0.026;
    p.invocation_sigma = 0.015;
    p.ramp_d1 = 0.025;
    p.ramp_tau1 = 1.2;
    return p;
  }
  if (key == "2695v4") {
    // The paper's problem child: strong warm-up on high-throughput
    // configurations (uncontrollable frequency scaling, §V).  This is what
    // makes min-count=2 pruning find worse configurations and why the paper
    // adds the min-count=100 guard for this system.
    p.iter_sigma = 0.026;
    p.invocation_sigma = 0.016;
    p.ramp_d1 = 0.26;
    p.ramp_tau1 = 4.0;
    p.ramp_d2 = 0.012;
    p.ramp_tau2 = 25.0;
    p.ramp_eff_threshold = 0.72;
    return p;
  }
  if (key == "gold6132") {
    // AVX-512 license downclocking: noticeable first-iteration deficit.
    p.iter_sigma = 0.019;
    p.invocation_sigma = 0.014;
    p.ramp_d1 = 0.09;
    p.ramp_tau1 = 1.0;
    return p;
  }
  if (key == "gold6148") {
    p.iter_sigma = 0.021;
    p.invocation_sigma = 0.014;
    p.ramp_d1 = 0.13;
    p.ramp_tau1 = 1.0;
    return p;
  }
  if (key == "silver4110") {
    p.iter_sigma = 0.025;
    p.invocation_sigma = 0.015;
    p.ramp_d1 = 0.08;
    p.ramp_tau1 = 1.5;
    return p;
  }
  throw std::invalid_argument("noise_profile: unknown machine '" + machine_name + "'");
}

double ramp_factor(const NoiseProfile& profile, double efficiency,
                   std::uint64_t iteration) {
  if (iteration == 0) throw std::invalid_argument("ramp_factor: iterations are 1-based");
  if (efficiency < profile.ramp_eff_threshold) return 1.0;
  const double t = static_cast<double>(iteration - 1);
  const double factor = 1.0 - profile.ramp_d1 * std::exp(-t / profile.ramp_tau1) -
                        profile.ramp_d2 * std::exp(-t / profile.ramp_tau2);
  return factor > 0.0 ? factor : 0.0;
}

}  // namespace rooftune::simhw
