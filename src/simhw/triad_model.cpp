#include "simhw/triad_model.hpp"

#include <cmath>
#include <stdexcept>

#include "util/strings.hpp"

namespace rooftune::simhw {

TriadAnchor triad_anchor(const std::string& machine_name, int sockets_used) {
  const std::string key = util::to_lower(machine_name);
  const bool s2 = sockets_used >= 2;
  // Calibrated to paper Table VI (B_L3 / B_DRAM per socket configuration).
  if (key == "2650v4") return s2 ? TriadAnchor{454.0, 80.65} : TriadAnchor{257.0, 40.42};
  if (key == "2695v4") return s2 ? TriadAnchor{664.5, 76.32} : TriadAnchor{373.0, 43.29};
  if (key == "gold6132") return s2 ? TriadAnchor{818.5, 132.18} : TriadAnchor{424.5, 68.32};
  if (key == "gold6148") return s2 ? TriadAnchor{1004.5, 139.80} : TriadAnchor{549.5, 74.16};
  if (key == "silver4110") return s2 ? TriadAnchor{560.0, 105.0} : TriadAnchor{300.0, 55.0};
  throw std::invalid_argument("triad_anchor: unknown machine '" + machine_name + "'");
}

TriadSurface::TriadSurface(MachineSpec machine, int sockets_used,
                           util::AffinityPolicy affinity, bool model_inner_caches)
    : machine_(std::move(machine)),
      sockets_used_(sockets_used),
      affinity_(affinity),
      anchor_(triad_anchor(machine_.name, sockets_used)),
      model_inner_caches_(model_inner_caches) {
  if (sockets_used < 1 || sockets_used > machine_.sockets) {
    throw std::invalid_argument("TriadSurface: invalid socket count");
  }
  if (model_inner_caches_ &&
      (machine_.l1_per_core.value == 0 || machine_.l2_per_core.value == 0)) {
    throw std::invalid_argument(
        "TriadSurface: inner-cache modelling needs per-core cache sizes");
  }
}

util::Bytes TriadSurface::l3_capacity() const {
  return machine_.l3_capacity(sockets_used_);
}

namespace {
/// Roll-off weight: ~1 while ws is comfortably below the capacity, falling
/// sharply once it crosses ~3/4 of it.
double cache_weight(double ws, double capacity) {
  const double x = ws / (0.75 * capacity);
  return 1.0 / (1.0 + std::pow(x, 6.0));
}
}  // namespace

util::GBps TriadSurface::mean_bandwidth(util::Bytes ws) const {
  if (ws.value == 0) throw std::invalid_argument("TriadSurface: empty working set");
  const double l3 = static_cast<double>(l3_capacity().value);
  const double w = static_cast<double>(ws.value);

  // Small-vector startup penalty: parallel-region fork/join overhead
  // dominates kilobyte-sized vectors (the low end of the paper's sweep).
  const double startup = w / (w + 48.0 * 1024.0);

  double dram = anchor_.dram_plateau_gbps;
  // KMP_AFFINITY=close on a dual-socket run leaves remote-socket memory
  // behind QPI/UPI — a few percent below the spread placement (§III-B).
  if (sockets_used_ == 2 && affinity_ == util::AffinityPolicy::Close) dram *= 0.94;

  // Partition the unit weight across the cache levels, innermost first;
  // whatever is left falls through to DRAM.  With inner caches disabled
  // (the paper's configuration) only the L3 term is active.
  double remaining = 1.0;
  double bw = 0.0;
  if (model_inner_caches_) {
    const double l1 = static_cast<double>(machine_.l1_capacity(sockets_used_).value);
    const double l2 = static_cast<double>(machine_.l2_capacity(sockets_used_).value);
    const double w1 = remaining * cache_weight(w, l1);
    bw += w1 * l1_peak_gbps();
    remaining -= w1;
    const double w2 = remaining * cache_weight(w, l2);
    bw += w2 * l2_peak_gbps();
    remaining -= w2;
  }
  const double w3 = remaining * cache_weight(w, l3);
  bw += w3 * anchor_.l3_peak_gbps;
  remaining -= w3;
  bw += remaining * dram;

  return util::GBps{bw * startup};
}

double TriadSurface::kernel_factor(stream::Kernel kernel) {
  // Typical STREAM result ratios on multi-channel Xeons: the two-stream
  // kernels sustain ~8-10 % less of the peak than add/triad (fewer
  // concurrent streams to saturate the channels), and add lands a hair
  // below triad (no FMA to overlap the second read).
  switch (kernel) {
    case stream::Kernel::Copy: return 0.90;
    case stream::Kernel::Scale: return 0.92;
    case stream::Kernel::Add: return 0.99;
    case stream::Kernel::Triad: return 1.0;
  }
  return 1.0;
}

util::GBps TriadSurface::mean_bandwidth(stream::Kernel kernel, util::Bytes ws) const {
  return util::GBps{mean_bandwidth(ws).value * kernel_factor(kernel)};
}

}  // namespace rooftune::simhw
