#pragma once
// Calibrated TRIAD bandwidth surface for the simulated machines.
//
// Maps working-set size to mean sustained GB/s: an L3 regime (with a
// small-vector startup penalty), a smooth transition around ~3/4 of the L3
// capacity, and a DRAM plateau.  Plateau/L3-peak values are calibrated to
// the paper's Table VI — including the paper's observation that the TRIAD
// DRAM figure slightly *over*estimates the theoretical bandwidth because of
// L3 noise (the calibrated plateaus sit at 99–116 % of B_t, exactly as
// measured).

#include "simhw/machine.hpp"
#include "stream/stream.hpp"
#include "util/affinity.hpp"
#include "util/units.hpp"

namespace rooftune::simhw {

struct TriadAnchor {
  double l3_peak_gbps = 0.0;       ///< cache-resident peak (Table VI B_L3)
  double dram_plateau_gbps = 0.0;  ///< large-N plateau (Table VI B_DRAM)
};

TriadAnchor triad_anchor(const std::string& machine_name, int sockets_used);

class TriadSurface {
 public:
  /// `model_inner_caches` enables the §VII future-work extension: working
  /// sets that fit the cores' aggregate L1/L2 run at (synthetic) L1/L2
  /// bandwidths above the L3 plateau.  Off by default — the paper's own
  /// tables only measure L3 and DRAM, and all Table VI calibration is
  /// against the plain surface.
  TriadSurface(MachineSpec machine, int sockets_used, util::AffinityPolicy affinity,
               bool model_inner_caches = false);

  /// Deterministic mean bandwidth for a TRIAD working set of `ws` bytes.
  [[nodiscard]] util::GBps mean_bandwidth(util::Bytes ws) const;

  /// Bandwidth for any STREAM kernel: the calibration is TRIAD's; the
  /// other kernels scale by the classic STREAM ratios (two-stream
  /// copy/scale move slightly less efficiently than the three-stream
  /// add/triad on wide memory systems).
  [[nodiscard]] util::GBps mean_bandwidth(stream::Kernel kernel,
                                          util::Bytes ws) const;

  /// The kernel-relative efficiency factor (TRIAD = 1).
  [[nodiscard]] static double kernel_factor(stream::Kernel kernel);

  [[nodiscard]] const TriadAnchor& anchor() const { return anchor_; }
  [[nodiscard]] util::Bytes l3_capacity() const;
  [[nodiscard]] const MachineSpec& machine() const { return machine_; }
  [[nodiscard]] int sockets_used() const { return sockets_used_; }
  [[nodiscard]] bool models_inner_caches() const { return model_inner_caches_; }

  /// Synthetic inner-cache peak bandwidths (GB/s), derived from the L3
  /// calibration: no published figures exist for the paper's systems, so
  /// the extension uses typical per-level ratios (L2 ~ 1.9x L3, L1 ~ 3.4x
  /// L3 for streaming access).  Documented in DESIGN.md as a substitution.
  [[nodiscard]] double l2_peak_gbps() const { return 1.9 * anchor_.l3_peak_gbps; }
  [[nodiscard]] double l1_peak_gbps() const { return 3.4 * anchor_.l3_peak_gbps; }

 private:
  MachineSpec machine_;
  int sockets_used_;
  util::AffinityPolicy affinity_;
  TriadAnchor anchor_;
  bool model_inner_caches_;
};

}  // namespace rooftune::simhw
