#pragma once
// Student-t distribution quantiles.
//
// The paper forms normal-based intervals, but its outer invocation loop has
// n = 10 samples — well below the n >= 30 rule of thumb it cites from
// Georges et al.  We therefore also provide exact t critical values so the
// invocation-level CI can be formed properly; the difference is ablated in
// bench/ablation_stats_cost.

namespace rooftune::stats {

/// CDF of the t distribution with `dof` degrees of freedom.
double student_t_cdf(double t, double dof);

/// Quantile (inverse CDF) for p in (0,1), dof >= 1.
double student_t_quantile(double p, double dof);

/// Two-sided critical value with the given confidence in (0,1).
double student_t_two_sided_critical(double confidence, double dof);

/// Regularized incomplete beta function I_x(a, b); exposed for tests.
double regularized_incomplete_beta(double a, double b, double x);

}  // namespace rooftune::stats
