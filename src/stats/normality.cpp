#include "stats/normality.hpp"

#include <cmath>

namespace rooftune::stats {

NormalityResult jarque_bera(const OnlineMoments& moments) {
  NormalityResult result;
  if (moments.count() < 8) return result;
  const double n = static_cast<double>(moments.count());
  const double g1 = moments.skewness();
  const double g2 = moments.excess_kurtosis();
  result.jarque_bera = n / 6.0 * (g1 * g1 + g2 * g2 / 4.0);
  // chi-square with 2 dof: survival function is exp(-x/2).
  result.p_value = std::exp(-result.jarque_bera / 2.0);
  result.reject_at_5pct = result.p_value < 0.05;
  return result;
}

}  // namespace rooftune::stats
