#pragma once
// Order statistics over stored samples: median, percentiles, MAD.
//
// §VII (future work) suggests basing stop conditions on the median and on
// non-parametric statistics; these helpers power those extensions and the
// hand-tuned accuracy comparisons.

#include <vector>

namespace rooftune::stats {

/// p-th percentile (0 <= p <= 100) with linear interpolation between order
/// statistics (type-7, the numpy default).  Throws on empty input.
double percentile(std::vector<double> samples, double p);

/// Median (50th percentile).
double median(std::vector<double> samples);

/// Median absolute deviation, scaled by 1.4826 so it estimates sigma for
/// normal data.
double median_absolute_deviation(std::vector<double> samples);

/// Summary of a stored sample set.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double max = 0.0;
};

Summary summarize(const std::vector<double>& samples);

}  // namespace rooftune::stats
