#pragma once
// Welford's online algorithm for corrected sums of squares (paper Eqs. 5–7).
//
// The benchmarking loop must know the running mean and variance of the
// samples it has seen *without storing them* — the stop conditions in
// §III-C query the confidence interval after every single kernel call.
// OnlineMoments maintains the first four central moments so the same
// accumulator also drives the Jarque–Bera normality check (§III-C.3 notes
// the distributions are usually non-normal) and supports distributed merge
// (Chan et al.) for combining invocation-level accumulators.

#include <cstdint>

namespace rooftune::stats {

/// Streaming accumulator of count/mean/M2/M3/M4.
///
/// Invariants: count() == number of add() calls (plus merged counts);
/// mean(), variance() match the two-pass formulas to floating-point
/// accuracy (verified by property tests).
class OnlineMoments {
 public:
  /// Incorporate one sample.  This is the recurrence of paper Eqs. 6–7
  /// extended to third/fourth moments (Pébay's single-pass update).
  void add(double x);

  /// Reconstruct an accumulator from persisted first/second-moment state
  /// (core::TuningSession checkpoints).  Higher moments and min/max are not
  /// representable from (count, mean, m2) and are restored as degenerate
  /// (skewness/kurtosis read 0; min = max = mean).
  static OnlineMoments from_raw(std::uint64_t count, double mean,
                                double sum_squared_deviations);

  /// Combine with another accumulator (parallel/invocation-level merge).
  void merge(const OnlineMoments& other);

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return mean_; }

  /// Corrected sum of squares C_n = sum (x_i - mean)^2 (paper Eq. 7).
  [[nodiscard]] double sum_squared_deviations() const { return m2_; }

  /// Unbiased sample variance S^2 = C_n / (n - 1) (paper Eq. 5).
  /// Zero until at least two samples have been seen.
  [[nodiscard]] double variance() const;

  /// Population variance C_n / n.
  [[nodiscard]] double population_variance() const;

  [[nodiscard]] double stddev() const;

  /// Standard error of the mean: S / sqrt(n).
  [[nodiscard]] double standard_error() const;

  /// Coefficient of variation S / |mean| (Georges et al. steady-state
  /// criterion); returns 0 when the mean is zero or n < 2.
  [[nodiscard]] double coefficient_of_variation() const;

  /// Sample skewness g1 = m3 / m2^(3/2) * sqrt(n); 0 when undefined.
  [[nodiscard]] double skewness() const;

  /// Excess kurtosis g2 = n*m4/m2^2 - 3; 0 when undefined.
  [[nodiscard]] double excess_kurtosis() const;

  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

  void reset() { *this = OnlineMoments{}; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;  // sum (x - mean)^2
  double m3_ = 0.0;  // sum (x - mean)^3
  double m4_ = 0.0;  // sum (x - mean)^4
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace rooftune::stats
