#pragma once
// Confidence intervals over OnlineMoments — the statistical heart of stop
// conditions 3 and 4 (§III-C).

#include "stats/welford.hpp"

namespace rooftune::stats {

/// A two-sided interval around a sample mean.
struct ConfidenceInterval {
  double mean = 0.0;
  double lower = 0.0;
  double upper = 0.0;
  double confidence = 0.0;  ///< e.g. 0.99

  /// The paper's `marg`: distance from the mean to the upper bound.
  [[nodiscard]] double margin() const { return upper - mean; }

  /// Half-width relative to |mean| — the ±1 % convergence test compares
  /// this against 0.01.  Returns +inf when mean == 0 and width > 0.
  [[nodiscard]] double relative_half_width() const;

  /// True when this interval and `other` share any point (Georges et al.
  /// overlapping-interval comparison).
  [[nodiscard]] bool overlaps(const ConfidenceInterval& other) const {
    return lower <= other.upper && other.lower <= upper;
  }

  [[nodiscard]] bool contains(double value) const {
    return lower <= value && value <= upper;
  }
};

/// Which critical value family to use for the CI.
enum class IntervalMethod {
  Normal,   ///< z critical values (paper §III-C.3, assumes n large)
  StudentT  ///< exact small-sample t critical values (our extension)
};

/// CI for the mean from streaming moments.  With fewer than two samples the
/// interval degenerates to [mean, mean].
ConfidenceInterval mean_confidence_interval(const OnlineMoments& moments,
                                            double confidence,
                                            IntervalMethod method = IntervalMethod::Normal);

/// True when the CI has converged to within ±tolerance of the mean (the
/// paper uses confidence = 0.99 and tolerance = 0.01).  Requires at least
/// `min_samples` samples before it can report convergence.
bool has_converged(const OnlineMoments& moments, double confidence, double tolerance,
                   std::uint64_t min_samples = 2,
                   IntervalMethod method = IntervalMethod::Normal);

}  // namespace rooftune::stats
