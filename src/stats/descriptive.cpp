#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "stats/welford.hpp"

namespace rooftune::stats {

double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) throw std::invalid_argument("percentile: empty sample set");
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile: p out of [0,100]");
  std::sort(samples.begin(), samples.end());
  if (samples.size() == 1) return samples[0];
  const double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] + frac * (samples[hi] - samples[lo]);
}

double median(std::vector<double> samples) { return percentile(std::move(samples), 50.0); }

double median_absolute_deviation(std::vector<double> samples) {
  const double med = median(samples);
  for (double& s : samples) s = std::fabs(s - med);
  return 1.4826 * median(std::move(samples));
}

Summary summarize(const std::vector<double>& samples) {
  Summary s;
  s.count = samples.size();
  if (samples.empty()) return s;
  OnlineMoments moments;
  for (double x : samples) moments.add(x);
  s.mean = moments.mean();
  s.stddev = moments.stddev();
  s.min = moments.min();
  s.max = moments.max();
  s.p25 = percentile(samples, 25.0);
  s.median = percentile(samples, 50.0);
  s.p75 = percentile(samples, 75.0);
  return s;
}

}  // namespace rooftune::stats
