#pragma once
// Effect-size confidence intervals for comparing two benchmarked
// configurations (Kalibera & Jones, "Quantifying Performance Changes with
// Effect Size Confidence Intervals" — cited by the paper in §III).
//
// Given summary statistics of two independent sample sets A and B, we form
// a CI for the ratio of means mu_A / mu_B via Fieller's theorem.  A ratio
// interval entirely above 1 means A is faster/better with the stated
// confidence; an interval containing 1 means the difference is not
// established — the statistically honest version of "A beats B".

#include <optional>

#include "stats/welford.hpp"

namespace rooftune::stats {

struct RatioInterval {
  double estimate = 1.0;  ///< mean_a / mean_b
  double lower = 0.0;
  double upper = 0.0;
  double confidence = 0.0;
  /// False when the denominator's CI includes zero, making the ratio CI
  /// unbounded (Fieller's degenerate case); lower/upper are then invalid.
  bool bounded = true;
};

/// Fieller CI for mean(a) / mean(b).  Requires >= 2 samples on each side.
/// Uses Student-t critical values with Welch-style effective degrees of
/// freedom.  Throws std::invalid_argument when a side has < 2 samples.
RatioInterval ratio_of_means_interval(const OnlineMoments& a, const OnlineMoments& b,
                                      double confidence = 0.95);

/// Verdict of an A-vs-B comparison at the given confidence.
enum class Comparison {
  AGreater,       ///< ratio CI entirely above 1
  BGreater,       ///< ratio CI entirely below 1
  Indistinguishable,
};

const char* to_string(Comparison c);

Comparison compare_means(const OnlineMoments& a, const OnlineMoments& b,
                         double confidence = 0.95);

}  // namespace rooftune::stats
