#include "stats/confidence.hpp"

#include <cmath>
#include <limits>

#include "stats/normal.hpp"
#include "stats/student_t.hpp"

namespace rooftune::stats {

double ConfidenceInterval::relative_half_width() const {
  const double half = 0.5 * (upper - lower);
  if (mean == 0.0) {
    return half == 0.0 ? 0.0 : std::numeric_limits<double>::infinity();
  }
  return half / std::fabs(mean);
}

ConfidenceInterval mean_confidence_interval(const OnlineMoments& moments,
                                            double confidence,
                                            IntervalMethod method) {
  ConfidenceInterval ci;
  ci.mean = moments.mean();
  ci.confidence = confidence;
  if (moments.count() < 2) {
    ci.lower = ci.upper = ci.mean;
    return ci;
  }
  double critical = 0.0;
  switch (method) {
    case IntervalMethod::Normal:
      critical = normal_two_sided_critical(confidence);
      break;
    case IntervalMethod::StudentT: {
      // The stop conditions call this after every sample, and the t
      // quantile is found by bisection (~10 us); memoize per
      // (confidence, dof).  thread_local: no locking, no sharing.
      const double dof = static_cast<double>(moments.count() - 1);
      thread_local double cached_confidence = -1.0;
      thread_local double cached_dof = -1.0;
      thread_local double cached_critical = 0.0;
      if (confidence != cached_confidence || dof != cached_dof) {
        cached_critical = student_t_two_sided_critical(confidence, dof);
        cached_confidence = confidence;
        cached_dof = dof;
      }
      critical = cached_critical;
      break;
    }
  }
  const double half = critical * moments.standard_error();
  ci.lower = ci.mean - half;
  ci.upper = ci.mean + half;
  return ci;
}

bool has_converged(const OnlineMoments& moments, double confidence, double tolerance,
                   std::uint64_t min_samples, IntervalMethod method) {
  if (moments.count() < min_samples || moments.count() < 2) return false;
  const auto ci = mean_confidence_interval(moments, confidence, method);
  return ci.relative_half_width() <= tolerance;
}

}  // namespace rooftune::stats
