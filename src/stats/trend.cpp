#include "stats/trend.hpp"

#include <cmath>
#include <stdexcept>

namespace rooftune::stats {

TrendDetector::TrendDetector(std::size_t window) : ring_(window) {
  if (window < 4) throw std::invalid_argument("TrendDetector: window must be >= 4");
}

void TrendDetector::add(double x) {
  ring_[next_] = x;
  next_ = (next_ + 1) % ring_.size();
  if (used_ < ring_.size()) ++used_;
  ++total_;
}

double TrendDetector::slope() const {
  if (used_ < 2) return 0.0;
  // Samples in chronological order: oldest first.
  const std::size_t n = used_;
  const std::size_t start = (next_ + ring_.size() - used_) % ring_.size();
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(i);
    const double y = ring_[(start + i) % ring_.size()];
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
  }
  const double dn = static_cast<double>(n);
  const double denom = dn * sxx - sx * sx;
  if (denom == 0.0) return 0.0;
  return (dn * sxy - sx * sy) / denom;
}

double TrendDetector::relative_slope() const {
  if (used_ < 2) return 0.0;
  const std::size_t n = used_;
  const std::size_t start = (next_ + ring_.size() - used_) % ring_.size();
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) sum += ring_[(start + i) % ring_.size()];
  const double mean = sum / static_cast<double>(n);
  if (mean == 0.0) return 0.0;
  return slope() / std::fabs(mean);
}

bool TrendDetector::rising(double min_relative_slope) const {
  if (used_ < ring_.size() / 2 || used_ < 4) return false;
  return relative_slope() > min_relative_slope;
}

void TrendDetector::reset() {
  next_ = 0;
  used_ = 0;
  total_ = 0;
}

}  // namespace rooftune::stats
