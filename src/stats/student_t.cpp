#include "stats/student_t.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "stats/normal.hpp"

namespace rooftune::stats {

namespace {

/// Continued-fraction evaluation for the incomplete beta (Lentz's method).
double betacf(double a, double b, double x) {
  constexpr int kMaxIterations = 300;
  constexpr double kEps = 3e-14;
  constexpr double kFpMin = 1e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIterations; ++m) {
    const double m2 = 2.0 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

}  // namespace

double regularized_incomplete_beta(double a, double b, double x) {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double ln_front = std::lgamma(a + b) - std::lgamma(a) - std::lgamma(b) +
                          a * std::log(x) + b * std::log1p(-x);
  const double front = std::exp(ln_front);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * betacf(a, b, x) / a;
  }
  return 1.0 - front * betacf(b, a, 1.0 - x) / b;
}

double student_t_cdf(double t, double dof) {
  if (dof <= 0.0) throw std::domain_error("student_t_cdf: dof must be positive");
  const double x = dof / (dof + t * t);
  const double tail = 0.5 * regularized_incomplete_beta(dof / 2.0, 0.5, x);
  return t >= 0.0 ? 1.0 - tail : tail;
}

double student_t_quantile(double p, double dof) {
  if (!(p > 0.0 && p < 1.0)) {
    throw std::domain_error("student_t_quantile: p must be in (0,1)");
  }
  if (dof <= 0.0) throw std::domain_error("student_t_quantile: dof must be positive");
  if (p == 0.5) return 0.0;

  // Bisection bracket seeded from the normal quantile; the t quantile is
  // monotone so bisection is robust for all dof, including dof = 1.
  double lo = normal_quantile(p);
  double hi = lo;
  if (p > 0.5) {
    lo = 0.0;
    hi = std::max(hi, 1.0);
    while (student_t_cdf(hi, dof) < p) hi *= 2.0;
  } else {
    hi = 0.0;
    lo = std::min(lo, -1.0);
    while (student_t_cdf(lo, dof) > p) lo *= 2.0;
  }
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (mid == lo || mid == hi) break;
    if (student_t_cdf(mid, dof) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo < 1e-12 * std::max(1.0, std::fabs(mid))) break;
  }
  return 0.5 * (lo + hi);
}

double student_t_two_sided_critical(double confidence, double dof) {
  if (!(confidence > 0.0 && confidence < 1.0)) {
    throw std::domain_error("student_t_two_sided_critical: confidence in (0,1)");
  }
  return student_t_quantile(0.5 + confidence / 2.0, dof);
}

}  // namespace rooftune::stats
