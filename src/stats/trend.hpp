#pragma once
// Online trend detection over the recent sample window.
//
// §VII future work: configurations whose performance keeps *rising* during
// evaluation (warm-up, frequency ramping) are at risk of being pruned by the
// upper-bound stop condition before they reveal their true performance.  The
// TrendDetector fits a least-squares line over a sliding window of the most
// recent samples; a significantly positive slope tells the stop condition to
// hold off.  This powers core::UpperBoundStopCondition's trend-guard mode.

#include <cstddef>
#include <vector>

namespace rooftune::stats {

class TrendDetector {
 public:
  /// `window` = number of most recent samples considered (>= 4).
  explicit TrendDetector(std::size_t window = 16);

  void add(double x);

  [[nodiscard]] std::size_t size() const { return used_; }

  /// Least-squares slope of value against sample index over the window.
  /// Zero when fewer than two samples are available.
  [[nodiscard]] double slope() const;

  /// Slope divided by the window's mean value — "fractional improvement per
  /// iteration".  Zero when the mean is zero.
  [[nodiscard]] double relative_slope() const;

  /// True when the window shows a rising trend stronger than
  /// `min_relative_slope` (default 0.1 % per iteration) and the window is
  /// at least half full.
  [[nodiscard]] bool rising(double min_relative_slope = 1e-3) const;

  void reset();

 private:
  std::vector<double> ring_;
  std::size_t next_ = 0;
  std::size_t used_ = 0;
  std::size_t total_ = 0;
};

}  // namespace rooftune::stats
