#pragma once
// Standard normal distribution: CDF, PDF, and the inverse CDF (quantile)
// needed to form z-based confidence intervals (§III-C.3 assumes normality
// for n >= 30 per Georges et al.).

namespace rooftune::stats {

/// Standard normal probability density.
double normal_pdf(double x);

/// Standard normal cumulative distribution Φ(x).
double normal_cdf(double x);

/// Inverse of Φ: returns z such that Φ(z) = p, for p in (0, 1).
/// Acklam's rational approximation refined with one Halley step; absolute
/// error far below 1e-9 over the full domain.  Throws std::domain_error for
/// p outside (0, 1).
double normal_quantile(double p);

/// Two-sided critical value: z such that P(|Z| <= z) = confidence.
/// confidence must be in (0, 1); e.g. 0.99 → 2.5758…
double normal_two_sided_critical(double confidence);

}  // namespace rooftune::stats
