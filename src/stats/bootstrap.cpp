#include "stats/bootstrap.hpp"

#include <stdexcept>

#include "stats/descriptive.hpp"
#include "util/rng.hpp"

namespace rooftune::stats {

ConfidenceInterval bootstrap_interval(
    const std::vector<double>& samples,
    const std::function<double(const std::vector<double>&)>& statistic,
    const BootstrapOptions& options) {
  if (samples.empty()) throw std::invalid_argument("bootstrap_interval: empty sample set");
  if (options.resamples == 0) throw std::invalid_argument("bootstrap_interval: resamples == 0");

  util::Xoshiro256 rng(options.seed);
  std::vector<double> resample(samples.size());
  std::vector<double> stats;
  stats.reserve(options.resamples);
  for (std::size_t r = 0; r < options.resamples; ++r) {
    for (std::size_t i = 0; i < samples.size(); ++i) {
      resample[i] = samples[rng.below(samples.size())];
    }
    stats.push_back(statistic(resample));
  }

  const double alpha = 1.0 - options.confidence;
  ConfidenceInterval ci;
  ci.mean = statistic(samples);
  ci.confidence = options.confidence;
  ci.lower = percentile(stats, 100.0 * (alpha / 2.0));
  ci.upper = percentile(stats, 100.0 * (1.0 - alpha / 2.0));
  return ci;
}

ConfidenceInterval bootstrap_mean_interval(const std::vector<double>& samples,
                                           const BootstrapOptions& options) {
  return bootstrap_interval(
      samples,
      [](const std::vector<double>& xs) {
        double sum = 0.0;
        for (double x : xs) sum += x;
        return sum / static_cast<double>(xs.size());
      },
      options);
}

ConfidenceInterval bootstrap_median_interval(const std::vector<double>& samples,
                                             const BootstrapOptions& options) {
  return bootstrap_interval(
      samples, [](const std::vector<double>& xs) { return median(xs); }, options);
}

}  // namespace rooftune::stats
