#pragma once
// Percentile bootstrap confidence intervals (Efron & Tibshirani).
//
// §III-C.3 considers bootstrapping the natural non-parametric alternative to
// the normality assumption but rejects it as too expensive to recompute
// after every iteration.  We implement it anyway: (a) as an offline check of
// the normal-based intervals, and (b) to *measure* that cost claim in
// bench/ablation_stats_cost.

#include <cstdint>
#include <functional>
#include <vector>

#include "stats/confidence.hpp"

namespace rooftune::stats {

struct BootstrapOptions {
  std::size_t resamples = 1000;
  double confidence = 0.99;
  std::uint64_t seed = 0x5EEDB007ull;
};

/// Percentile bootstrap CI for an arbitrary statistic of the sample.
/// `statistic` receives each resampled vector (same size as `samples`).
/// Throws std::invalid_argument on an empty sample set.
ConfidenceInterval bootstrap_interval(
    const std::vector<double>& samples,
    const std::function<double(const std::vector<double>&)>& statistic,
    const BootstrapOptions& options = {});

/// Bootstrap CI for the mean.
ConfidenceInterval bootstrap_mean_interval(const std::vector<double>& samples,
                                           const BootstrapOptions& options = {});

/// Bootstrap CI for the median (the §VII future-work statistic).
ConfidenceInterval bootstrap_median_interval(const std::vector<double>& samples,
                                             const BootstrapOptions& options = {});

}  // namespace rooftune::stats
