#include "stats/ks_test.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rooftune::stats {

double kolmogorov_survival(double lambda) {
  if (lambda <= 0.0) return 1.0;
  // Q(lambda) = 2 sum_{j>=1} (-1)^{j-1} exp(-2 j^2 lambda^2); converges very
  // fast for lambda of practical size.
  double sum = 0.0;
  double sign = 1.0;
  for (int j = 1; j <= 100; ++j) {
    const double term = std::exp(-2.0 * j * j * lambda * lambda);
    sum += sign * term;
    sign = -sign;
    if (term < 1e-16) break;
  }
  const double q = 2.0 * sum;
  return std::clamp(q, 0.0, 1.0);
}

KsResult ks_two_sample(std::vector<double> a, std::vector<double> b) {
  if (a.empty() || b.empty()) {
    throw std::invalid_argument("ks_two_sample: empty sample set");
  }
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());

  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  std::size_t ia = 0, ib = 0;
  double d = 0.0;
  while (ia < a.size() && ib < b.size()) {
    const double xa = a[ia];
    const double xb = b[ib];
    const double x = std::min(xa, xb);
    // Advance past ties on each side so the ECDFs are evaluated at x+.
    while (ia < a.size() && a[ia] <= x) ++ia;
    while (ib < b.size() && b[ib] <= x) ++ib;
    const double fa = static_cast<double>(ia) / na;
    const double fb = static_cast<double>(ib) / nb;
    d = std::max(d, std::fabs(fa - fb));
  }

  KsResult result;
  result.statistic = d;
  const double ne = na * nb / (na + nb);
  // Asymptotic with the Stephens small-sample correction.
  const double lambda = (std::sqrt(ne) + 0.12 + 0.11 / std::sqrt(ne)) * d;
  result.p_value = kolmogorov_survival(lambda);
  result.reject_at_5pct = result.p_value < 0.05;
  return result;
}

}  // namespace rooftune::stats
