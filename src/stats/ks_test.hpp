#pragma once
// Two-sample Kolmogorov–Smirnov test.
//
// The paper's §VII future work asks for "basing the statistical tests on
// non-parametric statistics".  The two-sample KS test compares entire
// sample distributions without any normality assumption — useful for
// checking whether two invocations (or two configurations) really behave
// differently, and for detecting that a benchmark's distribution shifted
// between runs.

#include <vector>

namespace rooftune::stats {

struct KsResult {
  double statistic = 0.0;  ///< sup |F_a(x) - F_b(x)|
  double p_value = 1.0;    ///< asymptotic two-sided p-value
  bool reject_at_5pct = false;
};

/// Two-sample KS test.  Throws std::invalid_argument when a side is empty.
KsResult ks_two_sample(std::vector<double> a, std::vector<double> b);

/// The Kolmogorov distribution's survival function Q(lambda) used for the
/// asymptotic p-value; exposed for tests.
double kolmogorov_survival(double lambda);

}  // namespace rooftune::stats
