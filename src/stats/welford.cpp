#include "stats/welford.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rooftune::stats {

void OnlineMoments::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  const double n1 = static_cast<double>(n_);
  ++n_;
  const double n = static_cast<double>(n_);
  const double delta = x - mean_;
  const double delta_n = delta / n;
  const double delta_n2 = delta_n * delta_n;
  const double term1 = delta * delta_n * n1;  // (n-1)/n * (x - m_{n-1})^2, Eq. 7
  mean_ += delta_n;                           // Eq. 6
  m4_ += term1 * delta_n2 * (n * n - 3.0 * n + 3.0) + 6.0 * delta_n2 * m2_ -
         4.0 * delta_n * m3_;
  m3_ += term1 * delta_n * (n - 2.0) - 3.0 * delta_n * m2_;
  m2_ += term1;
}

OnlineMoments OnlineMoments::from_raw(std::uint64_t count, double mean,
                                      double sum_squared_deviations) {
  if (sum_squared_deviations < 0.0) {
    throw std::invalid_argument("OnlineMoments::from_raw: negative sum of squares");
  }
  OnlineMoments m;
  m.n_ = count;
  m.mean_ = count > 0 ? mean : 0.0;
  m.m2_ = count > 1 ? sum_squared_deviations : 0.0;
  m.min_ = m.max_ = m.mean_;
  return m;
}

void OnlineMoments::merge(const OnlineMoments& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double n = na + nb;
  const double delta = other.mean_ - mean_;
  const double delta2 = delta * delta;
  const double delta3 = delta2 * delta;
  const double delta4 = delta2 * delta2;

  const double m2 = m2_ + other.m2_ + delta2 * na * nb / n;
  const double m3 = m3_ + other.m3_ + delta3 * na * nb * (na - nb) / (n * n) +
                    3.0 * delta * (na * other.m2_ - nb * m2_) / n;
  const double m4 =
      m4_ + other.m4_ +
      delta4 * na * nb * (na * na - na * nb + nb * nb) / (n * n * n) +
      6.0 * delta2 * (na * na * other.m2_ + nb * nb * m2_) / (n * n) +
      4.0 * delta * (na * other.m3_ - nb * m3_) / n;

  mean_ = (na * mean_ + nb * other.mean_) / n;
  m2_ = m2;
  m3_ = m3;
  m4_ = m4;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double OnlineMoments::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double OnlineMoments::population_variance() const {
  if (n_ == 0) return 0.0;
  return m2_ / static_cast<double>(n_);
}

double OnlineMoments::stddev() const { return std::sqrt(variance()); }

double OnlineMoments::standard_error() const {
  if (n_ == 0) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(n_));
}

double OnlineMoments::coefficient_of_variation() const {
  if (n_ < 2 || mean_ == 0.0) return 0.0;
  return stddev() / std::fabs(mean_);
}

double OnlineMoments::skewness() const {
  if (n_ < 3 || m2_ <= 0.0) return 0.0;
  const double n = static_cast<double>(n_);
  return std::sqrt(n) * m3_ / std::pow(m2_, 1.5);
}

double OnlineMoments::excess_kurtosis() const {
  if (n_ < 4 || m2_ <= 0.0) return 0.0;
  const double n = static_cast<double>(n_);
  return n * m4_ / (m2_ * m2_) - 3.0;
}

}  // namespace rooftune::stats
