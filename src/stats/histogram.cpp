#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace rooftune::stats {

Histogram::Histogram(std::size_t bins) : counts_(bins, 0) {
  if (bins < 2) throw std::invalid_argument("Histogram: need at least 2 bins");
}

void Histogram::add(double x) {
  if (!initialized_) {
    // Seed a degenerate range around the first sample; widen on demand.
    lo_ = x;
    hi_ = x == 0.0 ? 1.0 : x * (1.0 + 1e-9) + 1e-12;
    if (hi_ <= lo_) std::swap(lo_, hi_);
    initialized_ = true;
  }
  if (x < lo_ || x >= hi_) {
    const double span = hi_ - lo_;
    double new_lo = std::min(lo_, x);
    double new_hi = std::max(hi_, x + span * 1e-6 + 1e-12);
    // Grow geometrically so repeated outliers trigger O(log) rebins.
    const double new_span = new_hi - new_lo;
    new_lo -= 0.25 * new_span;
    new_hi += 0.25 * new_span;
    rebin(new_lo, new_hi);
  }
  ++counts_[bin_index(x)];
  ++count_;
}

std::size_t Histogram::bin_index(double x) const {
  const double t = (x - lo_) / (hi_ - lo_);
  auto i = static_cast<std::ptrdiff_t>(t * static_cast<double>(counts_.size()));
  i = std::clamp<std::ptrdiff_t>(i, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  return static_cast<std::size_t>(i);
}

void Histogram::rebin(double new_lo, double new_hi) {
  std::vector<std::uint64_t> fresh(counts_.size(), 0);
  const double old_width = (hi_ - lo_) / static_cast<double>(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    // Attribute the old bin's mass to its center's new bin; approximate but
    // adequate for display purposes.
    const double center = lo_ + (static_cast<double>(i) + 0.5) * old_width;
    const double t = (center - new_lo) / (new_hi - new_lo);
    auto j = static_cast<std::ptrdiff_t>(t * static_cast<double>(fresh.size()));
    j = std::clamp<std::ptrdiff_t>(j, 0, static_cast<std::ptrdiff_t>(fresh.size()) - 1);
    fresh[static_cast<std::size_t>(j)] += counts_[i];
  }
  counts_ = std::move(fresh);
  lo_ = new_lo;
  hi_ = new_hi;
}

double Histogram::bin_edge(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(counts_.size());
}

double Histogram::bin_fraction(std::size_t i) const {
  if (count_ == 0) return 0.0;
  return static_cast<double>(counts_[i]) / static_cast<double>(count_);
}

std::string Histogram::render(std::size_t width) const {
  std::string out;
  const std::uint64_t peak = counts_.empty() ? 0 : *std::max_element(counts_.begin(), counts_.end());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    char label[64];
    std::snprintf(label, sizeof label, "%12.4g | ", bin_edge(i));
    out += label;
    const std::size_t bar =
        peak == 0 ? 0
                  : static_cast<std::size_t>(static_cast<double>(counts_[i]) /
                                             static_cast<double>(peak) *
                                             static_cast<double>(width));
    out.append(bar, '#');
    out += ' ';
    out += std::to_string(counts_[i]);
    out += '\n';
  }
  return out;
}

}  // namespace rooftune::stats
