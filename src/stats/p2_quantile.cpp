#include "stats/p2_quantile.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rooftune::stats {

P2Quantile::P2Quantile(double quantile) : q_(quantile) {
  if (!(quantile > 0.0 && quantile < 1.0)) {
    throw std::invalid_argument("P2Quantile: quantile must be in (0,1)");
  }
  positions_ = {1, 2, 3, 4, 5};
  desired_ = {1.0, 1.0 + 2.0 * q_, 1.0 + 4.0 * q_, 3.0 + 2.0 * q_, 5.0};
  increments_ = {0.0, q_ / 2.0, q_, (1.0 + q_) / 2.0, 1.0};
}

void P2Quantile::insert_initial(double x) {
  heights_[n_] = x;
  ++n_;
  if (n_ == 5) std::sort(heights_.begin(), heights_.end());
}

double P2Quantile::parabolic(int i, double d) const {
  const double np = positions_[static_cast<std::size_t>(i + 1)];
  const double nm = positions_[static_cast<std::size_t>(i - 1)];
  const double n0 = positions_[static_cast<std::size_t>(i)];
  const double hp = heights_[static_cast<std::size_t>(i + 1)];
  const double hm = heights_[static_cast<std::size_t>(i - 1)];
  const double h0 = heights_[static_cast<std::size_t>(i)];
  return h0 + d / (np - nm) *
                  ((n0 - nm + d) * (hp - h0) / (np - n0) +
                   (np - n0 - d) * (h0 - hm) / (n0 - nm));
}

double P2Quantile::linear(int i, double d) const {
  const auto j = static_cast<std::size_t>(i + static_cast<int>(d));
  const auto i0 = static_cast<std::size_t>(i);
  return heights_[i0] + d * (heights_[j] - heights_[i0]) /
                            (positions_[j] - positions_[i0]);
}

void P2Quantile::add(double x) {
  if (n_ < 5) {
    insert_initial(x);
    return;
  }

  // Find the cell k containing x, extending the extremes if needed.
  int k = 0;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = std::max(heights_[4], x);
    k = 3;
  } else {
    for (int i = 0; i < 4; ++i) {
      if (x < heights_[static_cast<std::size_t>(i + 1)]) {
        k = i;
        break;
      }
    }
  }

  for (int i = k + 1; i < 5; ++i) positions_[static_cast<std::size_t>(i)] += 1.0;
  for (int i = 0; i < 5; ++i) {
    desired_[static_cast<std::size_t>(i)] += increments_[static_cast<std::size_t>(i)];
  }

  // Adjust the three interior markers if they drifted from their desired
  // positions, preferring the parabolic (P²) formula, falling back to
  // linear when it would break monotonicity.
  for (int i = 1; i <= 3; ++i) {
    const auto iu = static_cast<std::size_t>(i);
    const double d = desired_[iu] - positions_[iu];
    const bool can_right = positions_[iu + 1] - positions_[iu] > 1.0;
    const bool can_left = positions_[iu - 1] - positions_[iu] < -1.0;
    if ((d >= 1.0 && can_right) || (d <= -1.0 && can_left)) {
      const double step = d >= 1.0 ? 1.0 : -1.0;
      double candidate = parabolic(i, step);
      if (heights_[iu - 1] < candidate && candidate < heights_[iu + 1]) {
        heights_[iu] = candidate;
      } else {
        heights_[iu] = linear(i, step);
      }
      positions_[iu] += step;
    }
  }
  ++n_;
}

double P2Quantile::value() const {
  if (n_ == 0) return 0.0;
  if (n_ < 5) {
    // Exact small-sample quantile over the sorted prefix.
    std::array<double, 5> sorted = heights_;
    std::sort(sorted.begin(), sorted.begin() + static_cast<std::ptrdiff_t>(n_));
    const double rank = q_ * static_cast<double>(n_ - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, static_cast<std::size_t>(n_ - 1));
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
  }
  return heights_[2];
}

P2Summary::P2Summary() : q25_(0.25), median_(0.5), q75_(0.75) {}

void P2Summary::add(double x) {
  q25_.add(x);
  median_.add(x);
  q75_.add(x);
}

}  // namespace rooftune::stats
