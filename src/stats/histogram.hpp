#pragma once
// Streaming histogram for inspecting benchmark runtime distributions.
//
// §III-C.3: "When the distribution of runtimes of our benchmarks is graphed,
// we find that the distribution is usually non-normal."  This histogram is
// how the tool graphs that distribution: fixed bin count over an adaptive
// range (grows by rebinning when samples fall outside).

#include <cstdint>
#include <string>
#include <vector>

namespace rooftune::stats {

class Histogram {
 public:
  /// `bins` must be >= 2; the range adapts to the data.
  explicit Histogram(std::size_t bins = 32);

  void add(double x);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::size_t bin_count() const { return counts_.size(); }
  [[nodiscard]] double range_min() const { return lo_; }
  [[nodiscard]] double range_max() const { return hi_; }
  [[nodiscard]] const std::vector<std::uint64_t>& bins() const { return counts_; }

  /// Lower edge of bin `i`.
  [[nodiscard]] double bin_edge(std::size_t i) const;

  /// Fraction of samples in bin `i`.
  [[nodiscard]] double bin_fraction(std::size_t i) const;

  /// ASCII bar chart, one line per bin, bars scaled to `width` characters.
  [[nodiscard]] std::string render(std::size_t width = 50) const;

 private:
  void rebin(double new_lo, double new_hi);
  [[nodiscard]] std::size_t bin_index(double x) const;

  double lo_ = 0.0;
  double hi_ = 0.0;
  bool initialized_ = false;
  std::uint64_t count_ = 0;
  std::vector<std::uint64_t> counts_;
};

}  // namespace rooftune::stats
