#pragma once
// Windowed lag-k autocorrelation estimation.
//
// Kalibera & Jones (cited in §III) repeat iterations "until an independent
// state is reached": consecutive samples stop being correlated.  Warm-up
// ramps, frequency scaling and cache drift all show up as strong positive
// lag-1 autocorrelation, so the tool reports it alongside every result and
// core::IndependenceStop uses it as a §VII-style stop-condition extension.

#include <cstddef>
#include <vector>

namespace rooftune::stats {

class Autocorrelation {
 public:
  /// `window`: number of most recent samples kept (>= 8).
  explicit Autocorrelation(std::size_t window = 64);

  void add(double x);

  [[nodiscard]] std::size_t size() const { return used_; }

  /// Sample autocorrelation at the given lag over the window; 0 when the
  /// window holds fewer than lag + 2 samples or has zero variance.
  [[nodiscard]] double at_lag(std::size_t lag) const;

  /// Lag-1 autocorrelation — the primary warm-up indicator.
  [[nodiscard]] double lag1() const { return at_lag(1); }

  /// True when the window is full and |lag-1 autocorrelation| is below the
  /// threshold — i.e. successive samples look independent (Kalibera's
  /// "independent state").  The default threshold 2/sqrt(window) is the
  /// usual white-noise significance band.
  [[nodiscard]] bool independent(double threshold = 0.0) const;

  void reset();

 private:
  std::vector<double> ring_;
  std::size_t next_ = 0;
  std::size_t used_ = 0;
};

}  // namespace rooftune::stats
