#pragma once
// P-squared (P²) streaming quantile estimator (Jain & Chlamtac, 1985).
//
// §VII of the paper proposes basing stop conditions on the median instead
// of the mean but notes the lack of efficient online machinery.  P² is
// exactly that machinery: it maintains an estimate of an arbitrary quantile
// in O(1) memory and O(1) time per sample using five markers whose heights
// are adjusted by a piecewise-parabolic rule.  core::OnlineMedianStop is
// built on this.

#include <array>
#include <cstdint>

namespace rooftune::stats {

class P2Quantile {
 public:
  /// `quantile` in (0, 1), e.g. 0.5 for the median.
  explicit P2Quantile(double quantile);

  void add(double x);

  [[nodiscard]] std::uint64_t count() const { return n_; }

  /// Current estimate.  Exact while n <= 5 (order statistic), approximate
  /// afterwards.  Returns 0 when no samples have been seen.
  [[nodiscard]] double value() const;

  [[nodiscard]] double quantile() const { return q_; }

 private:
  void insert_initial(double x);
  [[nodiscard]] double parabolic(int i, double d) const;
  [[nodiscard]] double linear(int i, double d) const;

  double q_;
  std::uint64_t n_ = 0;
  std::array<double, 5> heights_{};       // marker heights
  std::array<double, 5> positions_{};     // actual marker positions
  std::array<double, 5> desired_{};       // desired marker positions
  std::array<double, 5> increments_{};    // desired-position increments
};

/// Convenience: the three quartile estimators maintained together, giving a
/// streaming five-number summary (used by reports and the median stop).
class P2Summary {
 public:
  P2Summary();

  void add(double x);

  [[nodiscard]] std::uint64_t count() const { return median_.count(); }
  [[nodiscard]] double q25() const { return q25_.value(); }
  [[nodiscard]] double median() const { return median_.value(); }
  [[nodiscard]] double q75() const { return q75_.value(); }

  /// Interquartile range estimate.
  [[nodiscard]] double iqr() const { return q75() - q25(); }

 private:
  P2Quantile q25_;
  P2Quantile median_;
  P2Quantile q75_;
};

}  // namespace rooftune::stats
