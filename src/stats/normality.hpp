#pragma once
// Jarque–Bera normality check from streaming moments.
//
// The paper observes (§III-C.3) that benchmark runtime distributions are
// usually non-normal yet still uses normal-theory intervals.  The tool
// reports a JB statistic alongside every result so users can see when the
// normality assumption is shaky; the test needs only skewness and kurtosis,
// which OnlineMoments already maintains — no stored samples required.

#include "stats/welford.hpp"

namespace rooftune::stats {

struct NormalityResult {
  double jarque_bera = 0.0;  ///< JB = n/6 (g1^2 + g2^2/4)
  double p_value = 1.0;      ///< asymptotic chi-square(2) tail probability
  bool reject_at_5pct = false;
};

/// Compute the Jarque–Bera statistic; with n < 8 the asymptotics are
/// meaningless, so the result reports p = 1 (never reject).
NormalityResult jarque_bera(const OnlineMoments& moments);

}  // namespace rooftune::stats
