#include "stats/autocorrelation.hpp"

#include <cmath>
#include <stdexcept>

namespace rooftune::stats {

Autocorrelation::Autocorrelation(std::size_t window) : ring_(window) {
  if (window < 8) throw std::invalid_argument("Autocorrelation: window must be >= 8");
}

void Autocorrelation::add(double x) {
  ring_[next_] = x;
  next_ = (next_ + 1) % ring_.size();
  if (used_ < ring_.size()) ++used_;
}

double Autocorrelation::at_lag(std::size_t lag) const {
  if (lag == 0) return 1.0;
  if (used_ < lag + 2) return 0.0;

  const std::size_t start = (next_ + ring_.size() - used_) % ring_.size();
  const auto sample = [&](std::size_t i) {
    return ring_[(start + i) % ring_.size()];
  };

  double mean = 0.0;
  for (std::size_t i = 0; i < used_; ++i) mean += sample(i);
  mean /= static_cast<double>(used_);

  double denom = 0.0;
  for (std::size_t i = 0; i < used_; ++i) {
    const double d = sample(i) - mean;
    denom += d * d;
  }
  if (denom == 0.0) return 0.0;

  double numer = 0.0;
  for (std::size_t i = 0; i + lag < used_; ++i) {
    numer += (sample(i) - mean) * (sample(i + lag) - mean);
  }
  return numer / denom;
}

bool Autocorrelation::independent(double threshold) const {
  if (used_ < ring_.size()) return false;
  const double limit =
      threshold > 0.0 ? threshold : 2.0 / std::sqrt(static_cast<double>(used_));
  return std::fabs(lag1()) < limit;
}

void Autocorrelation::reset() {
  next_ = 0;
  used_ = 0;
}

}  // namespace rooftune::stats
