#include "stats/effect_size.hpp"

#include <cmath>
#include <stdexcept>

#include "stats/student_t.hpp"

namespace rooftune::stats {

namespace {

/// Welch–Satterthwaite effective degrees of freedom.
double welch_dof(const OnlineMoments& a, const OnlineMoments& b) {
  const double va = a.variance() / static_cast<double>(a.count());
  const double vb = b.variance() / static_cast<double>(b.count());
  const double num = (va + vb) * (va + vb);
  const double den =
      va * va / static_cast<double>(a.count() - 1) +
      vb * vb / static_cast<double>(b.count() - 1);
  if (den == 0.0) return static_cast<double>(a.count() + b.count() - 2);
  return num / den;
}

}  // namespace

RatioInterval ratio_of_means_interval(const OnlineMoments& a, const OnlineMoments& b,
                                      double confidence) {
  if (a.count() < 2 || b.count() < 2) {
    throw std::invalid_argument("ratio_of_means_interval: need >= 2 samples per side");
  }
  RatioInterval out;
  out.confidence = confidence;
  const double ma = a.mean();
  const double mb = b.mean();
  out.estimate = mb == 0.0 ? 0.0 : ma / mb;

  const double t = student_t_two_sided_critical(confidence, welch_dof(a, b));
  const double va = a.variance() / static_cast<double>(a.count());  // se_a^2
  const double vb = b.variance() / static_cast<double>(b.count());  // se_b^2
  const double t2 = t * t;

  // Fieller: bounds are roots of (mb^2 - t^2 vb) r^2 - 2 ma mb r + (ma^2 -
  // t^2 va) = 0 (independent samples, zero covariance).
  const double g = t2 * vb / (mb * mb);
  if (g >= 1.0) {
    // Denominator indistinguishable from zero: unbounded interval.
    out.bounded = false;
    out.lower = out.upper = 0.0;
    return out;
  }
  const double aa = mb * mb - t2 * vb;
  const double bb = -2.0 * ma * mb;
  const double cc = ma * ma - t2 * va;
  const double disc = bb * bb - 4.0 * aa * cc;
  if (disc < 0.0) {
    out.bounded = false;
    return out;
  }
  const double sq = std::sqrt(disc);
  const double r1 = (-bb - sq) / (2.0 * aa);
  const double r2 = (-bb + sq) / (2.0 * aa);
  out.lower = std::min(r1, r2);
  out.upper = std::max(r1, r2);
  return out;
}

const char* to_string(Comparison c) {
  switch (c) {
    case Comparison::AGreater: return "A>B";
    case Comparison::BGreater: return "B>A";
    case Comparison::Indistinguishable: return "A~B";
  }
  return "?";
}

Comparison compare_means(const OnlineMoments& a, const OnlineMoments& b,
                         double confidence) {
  const RatioInterval ri = ratio_of_means_interval(a, b, confidence);
  if (!ri.bounded) return Comparison::Indistinguishable;
  if (ri.lower > 1.0) return Comparison::AGreater;
  if (ri.upper < 1.0) return Comparison::BGreater;
  return Comparison::Indistinguishable;
}

}  // namespace rooftune::stats
