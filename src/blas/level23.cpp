#include <algorithm>
#include <stdexcept>

#include "blas/blas.hpp"

namespace rooftune::blas {

void dgemv(Layout layout, Trans trans, std::int64_t m, std::int64_t n,
           double alpha, const double* a, std::int64_t lda, const double* x,
           std::int64_t incx, double beta, double* y, std::int64_t incy) {
  if (layout == Layout::ColMajor) {
    // Column-major A is the row-major transpose: flip the trans flag and
    // swap the logical dimensions.
    dgemv(Layout::RowMajor, trans == Trans::NoTrans ? Trans::Trans : Trans::NoTrans,
          n, m, alpha, a, lda, x, incx, beta, y, incy);
    return;
  }
  if (m < 0 || n < 0) throw std::invalid_argument("dgemv: negative dimension");
  if (lda < std::max<std::int64_t>(1, n)) throw std::invalid_argument("dgemv: lda too small");
  if (incx == 0 || incy == 0) throw std::invalid_argument("dgemv: zero increment");

  const std::int64_t ylen = trans == Trans::NoTrans ? m : n;
  const std::int64_t xlen = trans == Trans::NoTrans ? n : m;
  if (ylen == 0) return;

  const auto xi = [&](std::int64_t i) {
    return x[incx > 0 ? i * incx : (xlen - 1 - i) * -incx];
  };
  const auto yindex = [&](std::int64_t i) {
    return incy > 0 ? i * incy : (ylen - 1 - i) * -incy;
  };

  for (std::int64_t i = 0; i < ylen; ++i) {
    double acc = 0.0;
    if (alpha != 0.0) {
      if (trans == Trans::NoTrans) {
        const double* row = a + i * lda;
        for (std::int64_t j = 0; j < xlen; ++j) acc += row[j] * xi(j);
      } else {
        for (std::int64_t j = 0; j < xlen; ++j) acc += a[j * lda + i] * xi(j);
      }
    }
    double& out = y[yindex(i)];
    out = (beta == 0.0) ? alpha * acc : alpha * acc + beta * out;
  }
}

void dsyrk(Layout layout, Uplo uplo, Trans trans, std::int64_t n, std::int64_t k,
           double alpha, const double* a, std::int64_t lda, double beta, double* c,
           std::int64_t ldc) {
  if (layout == Layout::ColMajor) {
    // Column-major syrk == row-major syrk with the opposite triangle and
    // flipped transposition (C is symmetric in structure).
    dsyrk(Layout::RowMajor, uplo == Uplo::Upper ? Uplo::Lower : Uplo::Upper,
          trans == Trans::NoTrans ? Trans::Trans : Trans::NoTrans, n, k, alpha, a,
          lda, beta, c, ldc);
    return;
  }
  if (n < 0 || k < 0) throw std::invalid_argument("dsyrk: negative dimension");
  const std::int64_t a_cols = trans == Trans::NoTrans ? k : n;
  if (lda < std::max<std::int64_t>(1, a_cols)) {
    throw std::invalid_argument("dsyrk: lda too small");
  }
  if (ldc < std::max<std::int64_t>(1, n)) throw std::invalid_argument("dsyrk: ldc too small");

  const auto a_at = [&](std::int64_t i, std::int64_t p) {
    return trans == Trans::NoTrans ? a[i * lda + p] : a[p * lda + i];
  };

  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t j_begin = uplo == Uplo::Upper ? i : 0;
    const std::int64_t j_end = uplo == Uplo::Upper ? n : i + 1;
    for (std::int64_t j = j_begin; j < j_end; ++j) {
      double acc = 0.0;
      for (std::int64_t p = 0; p < k; ++p) acc += a_at(i, p) * a_at(j, p);
      double& out = c[i * ldc + j];
      out = (beta == 0.0) ? alpha * acc : alpha * acc + beta * out;
    }
  }
}

}  // namespace rooftune::blas
