#include "blas/blas.hpp"

#include <stdexcept>
#include <string>

namespace rooftune::blas {

namespace {

void validate(std::int64_t m, std::int64_t n, std::int64_t k, Trans ta, Trans tb,
              std::int64_t lda, std::int64_t ldb, std::int64_t ldc) {
  if (m < 0 || n < 0 || k < 0) {
    throw std::invalid_argument("dgemm: negative dimension");
  }
  // In row-major terms: A is m x k (or k x m when transposed), etc.
  const std::int64_t a_cols = (ta == Trans::NoTrans) ? k : m;
  const std::int64_t b_cols = (tb == Trans::NoTrans) ? n : k;
  if (lda < std::max<std::int64_t>(1, a_cols)) {
    throw std::invalid_argument("dgemm: lda too small (" + std::to_string(lda) + ")");
  }
  if (ldb < std::max<std::int64_t>(1, b_cols)) {
    throw std::invalid_argument("dgemm: ldb too small (" + std::to_string(ldb) + ")");
  }
  if (ldc < std::max<std::int64_t>(1, n)) {
    throw std::invalid_argument("dgemm: ldc too small (" + std::to_string(ldc) + ")");
  }
}

}  // namespace

void dgemm(Layout layout, Trans trans_a, Trans trans_b, std::int64_t m,
           std::int64_t n, std::int64_t k, double alpha, const double* a,
           std::int64_t lda, const double* b, std::int64_t ldb, double beta,
           double* c, std::int64_t ldc, DgemmVariant variant) {
  if (layout == Layout::ColMajor) {
    // Column-major C = op(A) op(B) is row-major C^T = op(B)^T op(A)^T, which
    // is the same memory with m/n and A/B swapped.
    dgemm(Layout::RowMajor, trans_b, trans_a, n, m, k, alpha, b, ldb, a, lda,
          beta, c, ldc, variant);
    return;
  }

  validate(m, n, k, trans_a, trans_b, lda, ldb, ldc);
  if (m == 0 || n == 0) return;

  if (variant == DgemmVariant::Auto) {
    // Tiny problems don't amortize packing.
    variant = (m * n * k < 32LL * 32 * 32) ? DgemmVariant::Naive : DgemmVariant::Packed;
  }
  switch (variant) {
    case DgemmVariant::Naive:
      detail::dgemm_naive(trans_a, trans_b, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
      break;
    case DgemmVariant::Blocked:
      detail::dgemm_blocked(trans_a, trans_b, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
      break;
    case DgemmVariant::Packed:
      detail::dgemm_packed(trans_a, trans_b, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
      break;
    case DgemmVariant::Auto:
      break;  // unreachable
  }
}

util::Flops dgemm_flops(std::int64_t m, std::int64_t n, std::int64_t k) {
  return util::Flops{2.0 * static_cast<double>(m) * static_cast<double>(n) *
                     static_cast<double>(k)};
}

util::Bytes dgemm_bytes(std::int64_t m, std::int64_t n, std::int64_t k) {
  const auto mm = static_cast<std::uint64_t>(m);
  const auto nn = static_cast<std::uint64_t>(n);
  const auto kk = static_cast<std::uint64_t>(k);
  // A and B read once, C read and written once.
  return util::Bytes{8ull * (mm * kk + kk * nn + 2ull * mm * nn)};
}

}  // namespace rooftune::blas
