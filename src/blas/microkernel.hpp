#pragma once
// Runtime CPU-dispatched DGEMM micro-kernels.
//
// dgemm_packed asks for the "active" KernelPlan on every call; the plan is
// chosen once per process from cpuid (AVX-512 > AVX2+FMA > portable scalar)
// and can be overridden with ROOFTUNE_KERNEL=scalar|avx2|avx512.  A plan
// bundles the register-tile geometry (MR x NR) with the two kernels that
// operate on it, so the packing code adapts to whichever tile the dispatch
// selected.  All kernels consume the same packed-panel format: packed A is
// MR-wide k-major micro-panels, packed B is NR-wide row-major micro-panels,
// both zero-padded to full tile width (the padding invariant the edge
// kernel asserts in debug builds).

#include <cstdint>
#include <string_view>
#include <vector>

namespace rooftune::blas::detail {

/// Full-tile kernel: C[MR x NR] += packed_a[kc x MR] * packed_b[kc x NR].
using MicrokernelFn = void (*)(std::int64_t kc, const double* pa,
                               const double* pb, double* c, std::int64_t ldc);

/// Fringe-tile kernel (mr <= MR, nr <= NR); panel strides stay MR/NR.
using MicrokernelEdgeFn = void (*)(std::int64_t kc, std::int64_t mr,
                                   std::int64_t nr, const double* pa,
                                   const double* pb, double* c,
                                   std::int64_t ldc);

struct KernelPlan {
  const char* name;  ///< "scalar", "avx2", "avx512"
  std::int64_t mr;   ///< micro-tile rows == packed-A panel width
  std::int64_t nr;   ///< micro-tile cols == packed-B panel width
  MicrokernelFn kernel;
  MicrokernelEdgeFn edge;
};

/// Every plan compiled into this binary ("scalar" is always present and
/// first; the SIMD plans exist only on x86 builds).
const std::vector<const KernelPlan*>& compiled_kernel_plans();

/// The compiled plans whose ISA the running CPU supports.
std::vector<const KernelPlan*> supported_kernel_plans();

/// Compiled plan with this name, or nullptr when unknown.
const KernelPlan* kernel_plan_by_name(std::string_view name);

/// The plan dgemm_packed uses.  Resolved lazily on first call: the
/// ROOFTUNE_KERNEL override when set and runnable, otherwise the widest
/// ISA the CPU supports.  The selection is logged once at Info level.
const KernelPlan& active_kernel_plan();

/// Drop the cached selection and detect again against the current
/// environment (test hook for exercising the override path).
const KernelPlan& redetect_kernel_plan();

/// Pin the active plan (test/bench hook); nullptr restores auto-detection.
void force_kernel_plan(const KernelPlan* plan);

}  // namespace rooftune::blas::detail
