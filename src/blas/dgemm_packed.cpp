#include <algorithm>
#include <vector>

#include "blas/blas.hpp"
#include "util/aligned_buffer.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace rooftune::blas::detail {

namespace {

// Goto/BLIS-style blocking: B panels sized for L3, A panels for L2, with a
// register-blocked MR x NR micro-kernel.  NR = 8 doubles = one cache line,
// which GCC auto-vectorizes to AVX2/AVX-512 at -O3.
constexpr std::int64_t MC = 96;
constexpr std::int64_t KC = 256;
constexpr std::int64_t NC = 2048;
constexpr std::int64_t MR = 4;
constexpr std::int64_t NR = 8;

// C[MR x NR] += packed_a[kc x MR] * packed_b[kc x NR]
// packed_a stores A micro-panels column by column (k-major), packed_b stores
// B micro-panels row by row, so both streams are unit-stride.
void microkernel(std::int64_t kc, const double* __restrict pa,
                 const double* __restrict pb, double* __restrict c,
                 std::int64_t ldc) {
  double acc[MR][NR] = {};
  for (std::int64_t p = 0; p < kc; ++p) {
    const double* __restrict brow = pb + p * NR;
    const double* __restrict acol = pa + p * MR;
    for (std::int64_t i = 0; i < MR; ++i) {
      const double a_ip = acol[i];
      for (std::int64_t j = 0; j < NR; ++j) {
        acc[i][j] += a_ip * brow[j];
      }
    }
  }
  for (std::int64_t i = 0; i < MR; ++i) {
    double* __restrict crow = c + i * ldc;
    for (std::int64_t j = 0; j < NR; ++j) {
      crow[j] += acc[i][j];
    }
  }
}

// Edge-case micro-kernel for fringe tiles (mr < MR or nr < NR).
void microkernel_edge(std::int64_t kc, std::int64_t mr, std::int64_t nr,
                      const double* __restrict pa, const double* __restrict pb,
                      double* __restrict c, std::int64_t ldc) {
  double acc[MR][NR] = {};
  for (std::int64_t p = 0; p < kc; ++p) {
    for (std::int64_t i = 0; i < mr; ++i) {
      const double a_ip = pa[p * MR + i];
      for (std::int64_t j = 0; j < nr; ++j) {
        acc[i][j] += a_ip * pb[p * NR + j];
      }
    }
  }
  for (std::int64_t i = 0; i < mr; ++i) {
    for (std::int64_t j = 0; j < nr; ++j) {
      c[i * ldc + j] += acc[i][j];
    }
  }
}

// Pack an (mc x kc) block of op(A), scaled by alpha, into MR-wide k-major
// micro-panels; fringe rows are zero-padded so the micro-kernel never reads
// uninitialized data.
void pack_a(Trans ta, const double* a, std::int64_t lda, std::int64_t row0,
            std::int64_t col0, std::int64_t mc, std::int64_t kc, double alpha,
            double* packed) {
  const auto at = [&](std::int64_t i, std::int64_t p) {
    return ta == Trans::NoTrans ? a[(row0 + i) * lda + (col0 + p)]
                                : a[(col0 + p) * lda + (row0 + i)];
  };
  for (std::int64_t i0 = 0; i0 < mc; i0 += MR) {
    const std::int64_t mr = std::min(MR, mc - i0);
    for (std::int64_t p = 0; p < kc; ++p) {
      for (std::int64_t i = 0; i < MR; ++i) {
        *packed++ = (i < mr) ? alpha * at(i0 + i, p) : 0.0;
      }
    }
  }
}

// Pack a (kc x nc) block of op(B) into NR-wide row-major micro-panels,
// zero-padding fringe columns.
void pack_b(Trans tb, const double* b, std::int64_t ldb, std::int64_t row0,
            std::int64_t col0, std::int64_t kc, std::int64_t nc, double* packed) {
  const auto at = [&](std::int64_t p, std::int64_t j) {
    return tb == Trans::NoTrans ? b[(row0 + p) * ldb + (col0 + j)]
                                : b[(col0 + j) * ldb + (row0 + p)];
  };
  for (std::int64_t j0 = 0; j0 < nc; j0 += NR) {
    const std::int64_t nr = std::min(NR, nc - j0);
    for (std::int64_t p = 0; p < kc; ++p) {
      for (std::int64_t j = 0; j < NR; ++j) {
        *packed++ = (j < nr) ? at(p, j0 + j) : 0.0;
      }
    }
  }
}

}  // namespace

void dgemm_packed(Trans ta, Trans tb, std::int64_t m, std::int64_t n,
                  std::int64_t k, double alpha, const double* a, std::int64_t lda,
                  const double* b, std::int64_t ldb, double beta, double* c,
                  std::int64_t ldc) {
  // beta pass up front (also handles alpha == 0 / k == 0 cleanly).
  for (std::int64_t i = 0; i < m; ++i) {
    double* row = c + i * ldc;
    if (beta == 0.0) {
      std::fill(row, row + n, 0.0);
    } else if (beta != 1.0) {
      for (std::int64_t j = 0; j < n; ++j) row[j] *= beta;
    }
  }
  if (alpha == 0.0 || k == 0) return;

#pragma omp parallel
  {
    // Per-thread packing buffers (padded up to full micro-panel multiples).
    util::AlignedBuffer<double> packed_a(static_cast<std::size_t>(
        ((MC + MR - 1) / MR) * MR * KC));
    util::AlignedBuffer<double> packed_b(static_cast<std::size_t>(
        KC * ((NC + NR - 1) / NR) * NR));

    for (std::int64_t jj = 0; jj < n; jj += NC) {
      const std::int64_t nc = std::min(NC, n - jj);
      for (std::int64_t pp = 0; pp < k; pp += KC) {
        const std::int64_t kc = std::min(KC, k - pp);
        // Every thread packs the same B panel; redundant but contention-free
        // and simple.  The panel is L3-resident either way.
        pack_b(tb, b, ldb, pp, jj, kc, nc, packed_b.data());

        // Parallelize over M panels: disjoint C rows, no synchronization.
#ifdef _OPENMP
#pragma omp for schedule(dynamic) nowait
#endif
        for (std::int64_t ii = 0; ii < m; ii += MC) {
          const std::int64_t mc = std::min(MC, m - ii);
          pack_a(ta, a, lda, ii, pp, mc, kc, alpha, packed_a.data());
          for (std::int64_t j0 = 0; j0 < nc; j0 += NR) {
            const std::int64_t nr = std::min(NR, nc - j0);
            const double* pb = packed_b.data() + (j0 / NR) * kc * NR;
            for (std::int64_t i0 = 0; i0 < mc; i0 += MR) {
              const std::int64_t mr = std::min(MR, mc - i0);
              const double* pa = packed_a.data() + (i0 / MR) * kc * MR;
              double* ctile = c + (ii + i0) * ldc + (jj + j0);
              if (mr == MR && nr == NR) {
                microkernel(kc, pa, pb, ctile, ldc);
              } else {
                microkernel_edge(kc, mr, nr, pa, pb, ctile, ldc);
              }
            }
          }
        }
#ifdef _OPENMP
#pragma omp barrier
#endif
      }
    }
  }
}

}  // namespace rooftune::blas::detail
