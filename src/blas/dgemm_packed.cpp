#include <algorithm>
#include <vector>

#include "blas/blas.hpp"
#include "blas/microkernel.hpp"
#include "util/aligned_buffer.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace rooftune::blas::detail {

namespace {

// Goto/BLIS-style blocking: B panels sized for L3, A panels for L2.  The
// register tile (MR x NR) comes from the dispatched KernelPlan at runtime:
// 4x8 scalar, 6x8 AVX2+FMA, 8x16 AVX-512.  All block sizes divide evenly
// by every plan's tile, so full tiles dominate and fringes only appear at
// true matrix edges.
constexpr std::int64_t MC = 96;
constexpr std::int64_t KC = 256;
constexpr std::int64_t NC = 2048;

// Pack an (mc x kc) block of op(A), scaled by alpha, into mr-wide k-major
// micro-panels; fringe rows are zero-padded so the micro-kernel never reads
// uninitialized data (the edge kernel asserts this in debug builds).
void pack_a(Trans ta, const double* a, std::int64_t lda, std::int64_t row0,
            std::int64_t col0, std::int64_t mc, std::int64_t kc, double alpha,
            std::int64_t mr_tile, double* packed) {
  const auto at = [&](std::int64_t i, std::int64_t p) {
    return ta == Trans::NoTrans ? a[(row0 + i) * lda + (col0 + p)]
                                : a[(col0 + p) * lda + (row0 + i)];
  };
  for (std::int64_t i0 = 0; i0 < mc; i0 += mr_tile) {
    const std::int64_t mr = std::min(mr_tile, mc - i0);
    for (std::int64_t p = 0; p < kc; ++p) {
      for (std::int64_t i = 0; i < mr_tile; ++i) {
        *packed++ = (i < mr) ? alpha * at(i0 + i, p) : 0.0;
      }
    }
  }
}

// Pack one nr_tile-wide slice of a (kc x nc) block of op(B), zero-padding
// fringe columns.  Threads cooperatively pack disjoint slices of the shared
// B panel, so each call touches only its own [dst, dst + kc*nr_tile) range.
void pack_b_slice(Trans tb, const double* b, std::int64_t ldb, std::int64_t row0,
                  std::int64_t col0, std::int64_t kc, std::int64_t nr,
                  std::int64_t nr_tile, double* dst) {
  const auto at = [&](std::int64_t p, std::int64_t j) {
    return tb == Trans::NoTrans ? b[(row0 + p) * ldb + (col0 + j)]
                                : b[(col0 + j) * ldb + (row0 + p)];
  };
  for (std::int64_t p = 0; p < kc; ++p) {
    for (std::int64_t j = 0; j < nr_tile; ++j) {
      *dst++ = (j < nr) ? at(p, j) : 0.0;
    }
  }
}

// Grow-only reuse of a packing buffer.  The caches below are thread_local,
// so repeated tuner iterations stop paying an allocation per DGEMM call.
double* ensure_capacity(util::AlignedBuffer<double>& buffer, std::size_t count) {
  if (buffer.size() < count) buffer = util::AlignedBuffer<double>(count);
  return buffer.data();
}

}  // namespace

void dgemm_packed(Trans ta, Trans tb, std::int64_t m, std::int64_t n,
                  std::int64_t k, double alpha, const double* a, std::int64_t lda,
                  const double* b, std::int64_t ldb, double beta, double* c,
                  std::int64_t ldc) {
  const KernelPlan& plan = active_kernel_plan();
  const std::int64_t MR = plan.mr;
  const std::int64_t NR = plan.nr;

  // beta pass up front (also handles alpha == 0 / k == 0 cleanly).
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (std::int64_t i = 0; i < m; ++i) {
    double* row = c + i * ldc;
    if (beta == 0.0) {
      std::fill(row, row + n, 0.0);
    } else if (beta != 1.0) {
      for (std::int64_t j = 0; j < n; ++j) row[j] *= beta;
    }
  }
  if (alpha == 0.0 || k == 0) return;

  // The B panel is shared by the whole team; its cache lives on the calling
  // thread (distinct top-level callers get distinct caches, so concurrent
  // DGEMMs from different threads never alias).
  static thread_local util::AlignedBuffer<double> packed_b_cache;
  double* const packed_b = ensure_capacity(
      packed_b_cache,
      static_cast<std::size_t>(KC * ((NC + NR - 1) / NR) * NR));

#pragma omp parallel
  {
    // Per-thread A panel, cached across calls.
    static thread_local util::AlignedBuffer<double> packed_a_cache;
    double* const packed_a = ensure_capacity(
        packed_a_cache,
        static_cast<std::size_t>(((MC + MR - 1) / MR) * MR * KC));

    for (std::int64_t jj = 0; jj < n; jj += NC) {
      const std::int64_t nc = std::min(NC, n - jj);
      for (std::int64_t pp = 0; pp < k; pp += KC) {
        const std::int64_t kc = std::min(KC, k - pp);

        // Cooperative packing: threads fill disjoint NR-slices of the
        // shared panel; the implicit barrier publishes it to the team.
#ifdef _OPENMP
#pragma omp for schedule(static)
#endif
        for (std::int64_t j0 = 0; j0 < nc; j0 += NR) {
          pack_b_slice(tb, b, ldb, pp, jj + j0, kc, std::min(NR, nc - j0), NR,
                       packed_b + (j0 / NR) * kc * NR);
        }

        // Parallelize over M panels: disjoint C rows, no synchronization.
#ifdef _OPENMP
#pragma omp for schedule(dynamic) nowait
#endif
        for (std::int64_t ii = 0; ii < m; ii += MC) {
          const std::int64_t mc = std::min(MC, m - ii);
          pack_a(ta, a, lda, ii, pp, mc, kc, alpha, MR, packed_a);
          for (std::int64_t j0 = 0; j0 < nc; j0 += NR) {
            const std::int64_t nr = std::min(NR, nc - j0);
            const double* pb = packed_b + (j0 / NR) * kc * NR;
            for (std::int64_t i0 = 0; i0 < mc; i0 += MR) {
              const std::int64_t mr = std::min(MR, mc - i0);
              const double* pa = packed_a + (i0 / MR) * kc * MR;
              double* ctile = c + (ii + i0) * ldc + (jj + j0);
              if (mr == MR && nr == NR) {
                plan.kernel(kc, pa, pb, ctile, ldc);
              } else {
                plan.edge(kc, mr, nr, pa, pb, ctile, ldc);
              }
            }
          }
        }
        // The nowait above lets fast threads start... but the next K panel
        // overwrites packed_b, so the team must drain before repacking.
#ifdef _OPENMP
#pragma omp barrier
#endif
      }
    }
  }
}

}  // namespace rooftune::blas::detail
