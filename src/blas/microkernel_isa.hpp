#pragma once
// Internal seam between the dispatch table and the per-ISA translation
// units.  Each ISA TU is always part of the build; on targets where the
// ISA cannot be expressed (non-x86, or a compiler without function
// multiversioning attributes) it returns nullptr and the plan is simply
// not registered.

#include "blas/microkernel.hpp"

namespace rooftune::blas::detail {

/// 6x8 AVX2+FMA full-tile kernel, or nullptr when not compiled in.
MicrokernelFn avx2_microkernel();

/// 8x16 AVX-512F full-tile kernel, or nullptr when not compiled in.
MicrokernelFn avx512_microkernel();

}  // namespace rooftune::blas::detail
