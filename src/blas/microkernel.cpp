#include "blas/microkernel.hpp"

#include <atomic>
#include <cassert>
#include <cstdint>

#include "blas/microkernel_isa.hpp"
#include "util/env.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace rooftune::blas::detail {

namespace {

// ---- Portable scalar plan (4x8; NR = one cache line of doubles) ------------

constexpr int kScalarMR = 4;
constexpr int kScalarNR = 8;

// C[MR x NR] += packed_a[kc x MR] * packed_b[kc x NR].  Both panel streams
// are unit-stride; GCC auto-vectorizes the j loop at -O3.
void microkernel_scalar(std::int64_t kc, const double* __restrict pa,
                        const double* __restrict pb, double* __restrict c,
                        std::int64_t ldc) {
  double acc[kScalarMR][kScalarNR] = {};
  for (std::int64_t p = 0; p < kc; ++p) {
    const double* __restrict brow = pb + p * kScalarNR;
    const double* __restrict acol = pa + p * kScalarMR;
    for (int i = 0; i < kScalarMR; ++i) {
      const double a_ip = acol[i];
      for (int j = 0; j < kScalarNR; ++j) {
        acc[i][j] += a_ip * brow[j];
      }
    }
  }
  for (int i = 0; i < kScalarMR; ++i) {
    double* __restrict crow = c + i * ldc;
    for (int j = 0; j < kScalarNR; ++j) {
      crow[j] += acc[i][j];
    }
  }
}

// ---- Generic fringe kernel -------------------------------------------------

// Fringe tiles use the same accumulator pattern as the full-tile kernel:
// the packer zero-pads panels to full PMR/PNR width, so accumulating the
// whole padded tile adds exact zeros and only the live mr x nr corner is
// written back.  Debug builds verify the padding invariant the correctness
// of that shortcut rests on.
template <int PMR, int PNR>
void edge_generic(std::int64_t kc, std::int64_t mr, std::int64_t nr,
                  const double* __restrict pa, const double* __restrict pb,
                  double* __restrict c, std::int64_t ldc) {
  assert(mr >= 1 && mr <= PMR && nr >= 1 && nr <= PNR);
#ifndef NDEBUG
  for (std::int64_t p = 0; p < kc; ++p) {
    for (std::int64_t i = mr; i < PMR; ++i) assert(pa[p * PMR + i] == 0.0);
    for (std::int64_t j = nr; j < PNR; ++j) assert(pb[p * PNR + j] == 0.0);
  }
#endif
  double acc[PMR][PNR] = {};
  for (std::int64_t p = 0; p < kc; ++p) {
    const double* __restrict acol = pa + p * PMR;
    const double* __restrict brow = pb + p * PNR;
    for (int i = 0; i < PMR; ++i) {
      const double a_ip = acol[i];
      for (int j = 0; j < PNR; ++j) {
        acc[i][j] += a_ip * brow[j];
      }
    }
  }
  for (std::int64_t i = 0; i < mr; ++i) {
    double* __restrict crow = c + i * ldc;
    for (std::int64_t j = 0; j < nr; ++j) {
      crow[j] += acc[i][j];
    }
  }
}

// ---- Plan registry ---------------------------------------------------------

const KernelPlan kScalarPlan{"scalar", kScalarMR, kScalarNR, microkernel_scalar,
                             edge_generic<kScalarMR, kScalarNR>};
const KernelPlan kAvx2Plan{"avx2", 6, 8, nullptr, edge_generic<6, 8>};
const KernelPlan kAvx512Plan{"avx512", 8, 16, nullptr, edge_generic<8, 16>};

std::vector<const KernelPlan*> build_compiled_plans() {
  static KernelPlan avx2 = kAvx2Plan;
  static KernelPlan avx512 = kAvx512Plan;
  avx2.kernel = avx2_microkernel();
  avx512.kernel = avx512_microkernel();
  std::vector<const KernelPlan*> plans{&kScalarPlan};
  if (avx2.kernel != nullptr) plans.push_back(&avx2);
  if (avx512.kernel != nullptr) plans.push_back(&avx512);
  return plans;
}

bool cpu_supports(const KernelPlan& plan) {
  if (&plan == &kScalarPlan || plan.kernel == microkernel_scalar) return true;
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
  const std::string_view name = plan.name;
  if (name == "avx2") {
    return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  }
  if (name == "avx512") return __builtin_cpu_supports("avx512f");
#endif
  return false;
}

// The resolved selection.  nullptr = not yet detected; detection is
// idempotent, so the benign first-call race just repeats the same work.
std::atomic<const KernelPlan*> g_active{nullptr};

const KernelPlan* detect_plan() {
  const auto supported = supported_kernel_plans();
  const KernelPlan* pick = supported.back();  // widest ISA registers last

  if (const auto env = util::env_string("ROOFTUNE_KERNEL")) {
    const std::string wanted_name = util::to_lower(util::trim(*env));
    if (wanted_name != "auto") {
      if (const KernelPlan* wanted = kernel_plan_by_name(wanted_name)) {
        if (cpu_supports(*wanted)) {
          pick = wanted;
        } else {
          util::log_warn() << "ROOFTUNE_KERNEL=" << *env
                           << " not supported by this CPU; using " << pick->name;
        }
      } else {
        util::log_warn() << "ROOFTUNE_KERNEL=" << *env
                         << " unknown (scalar|avx2|avx512|auto); using "
                         << pick->name;
      }
    }
  }

  util::log_info() << "dgemm micro-kernel: " << pick->name << " (" << pick->mr
                   << "x" << pick->nr << " tile)";
  return pick;
}

}  // namespace

const std::vector<const KernelPlan*>& compiled_kernel_plans() {
  static const std::vector<const KernelPlan*> plans = build_compiled_plans();
  return plans;
}

std::vector<const KernelPlan*> supported_kernel_plans() {
  std::vector<const KernelPlan*> out;
  for (const KernelPlan* plan : compiled_kernel_plans()) {
    if (cpu_supports(*plan)) out.push_back(plan);
  }
  return out;  // never empty: scalar always qualifies
}

const KernelPlan* kernel_plan_by_name(std::string_view name) {
  for (const KernelPlan* plan : compiled_kernel_plans()) {
    if (name == plan->name) return plan;
  }
  return nullptr;
}

const KernelPlan& active_kernel_plan() {
  const KernelPlan* plan = g_active.load(std::memory_order_acquire);
  if (plan == nullptr) {
    plan = detect_plan();
    g_active.store(plan, std::memory_order_release);
  }
  return *plan;
}

const KernelPlan& redetect_kernel_plan() {
  g_active.store(nullptr, std::memory_order_release);
  return active_kernel_plan();
}

void force_kernel_plan(const KernelPlan* plan) {
  if (plan == nullptr) {
    g_active.store(nullptr, std::memory_order_release);
    return;
  }
  g_active.store(plan, std::memory_order_release);
}

}  // namespace rooftune::blas::detail
