#include "blas/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rooftune::blas {

void fill_random(double* data, std::int64_t rows, std::int64_t cols,
                 std::int64_t ld, std::uint64_t seed) {
  if (rows < 0 || cols < 0 || ld < cols) {
    throw std::invalid_argument("fill_random: bad dimensions");
  }
  // One generator per row, seeded by (seed, row): rows are independent
  // streams, so the parallel fill produces exactly the bytes a serial loop
  // over r = 0..rows-1 would.  schedule(static) matches the kernels'
  // partition, keeping first-touch NUMA placement intact.
#pragma omp parallel for schedule(static)
  for (std::int64_t r = 0; r < rows; ++r) {
    util::Xoshiro256 rng(util::hash_seed(seed, static_cast<std::uint64_t>(r)));
    double* row = data + r * ld;
    for (std::int64_t c = 0; c < cols; ++c) {
      row[c] = rng.uniform(-1.0, 1.0);
    }
  }
}

Matrix::Matrix(std::int64_t rows, std::int64_t cols, std::int64_t ld)
    : rows_(rows), cols_(cols), ld_(ld) {
  if (rows < 0 || cols < 0) throw std::invalid_argument("Matrix: negative dimension");
  if (ld < cols) throw std::invalid_argument("Matrix: ld < cols");
  storage_ = util::AlignedBuffer<double>(static_cast<std::size_t>(rows) *
                                         static_cast<std::size_t>(ld));
}

void Matrix::fill(double value) {
  std::fill(storage_.begin(), storage_.end(), value);
}

void Matrix::fill_random(std::uint64_t seed) {
  blas::fill_random(storage_.data(), rows_, cols_, ld_, seed);
}

double Matrix::max_abs_diff(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    throw std::invalid_argument("max_abs_diff: shape mismatch");
  }
  double worst = 0.0;
  for (std::int64_t r = 0; r < a.rows(); ++r) {
    for (std::int64_t c = 0; c < a.cols(); ++c) {
      worst = std::max(worst, std::fabs(a.at(r, c) - b.at(r, c)));
    }
  }
  return worst;
}

}  // namespace rooftune::blas
