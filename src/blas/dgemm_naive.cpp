#include "blas/blas.hpp"

namespace rooftune::blas::detail {

// Reference implementation: textbook triple loop, row-major.  Every other
// variant is verified against this in the tests.
void dgemm_naive(Trans ta, Trans tb, std::int64_t m, std::int64_t n,
                 std::int64_t k, double alpha, const double* a, std::int64_t lda,
                 const double* b, std::int64_t ldb, double beta, double* c,
                 std::int64_t ldc) {
  const auto a_at = [&](std::int64_t i, std::int64_t p) {
    return ta == Trans::NoTrans ? a[i * lda + p] : a[p * lda + i];
  };
  const auto b_at = [&](std::int64_t p, std::int64_t j) {
    return tb == Trans::NoTrans ? b[p * ldb + j] : b[j * ldb + p];
  };

  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t p = 0; p < k; ++p) {
        acc += a_at(i, p) * b_at(p, j);
      }
      double& out = c[i * ldc + j];
      out = (beta == 0.0) ? alpha * acc : alpha * acc + beta * out;
    }
  }
}

}  // namespace rooftune::blas::detail
