#pragma once
// Owning row-major matrix with 64-byte aligned storage, plus the
// deterministic initialization and comparison helpers the benchmarks and
// tests share.

#include <cstdint>

#include "util/aligned_buffer.hpp"
#include "util/rng.hpp"

namespace rooftune::blas {

/// Deterministic pseudo-random fill of a row-major (rows x cols, leading
/// dimension ld) buffer with values in [-1, 1).  Each row draws from its
/// own counter-based stream — an Xoshiro256 seeded by hash_seed(seed, row)
/// — so rows are independent and the OpenMP-parallel fill is bit-identical
/// to a serial loop over the same rows.  This is what lets the native
/// backends rebuild operands in parallel every invocation without
/// perturbing reproducibility.
void fill_random(double* data, std::int64_t rows, std::int64_t cols,
                 std::int64_t ld, std::uint64_t seed);

class Matrix {
 public:
  Matrix() = default;

  /// rows x cols with leading dimension ld (>= cols).  Contents are
  /// uninitialized; call fill_* before reading.
  Matrix(std::int64_t rows, std::int64_t cols, std::int64_t ld);
  Matrix(std::int64_t rows, std::int64_t cols) : Matrix(rows, cols, cols) {}

  [[nodiscard]] std::int64_t rows() const { return rows_; }
  [[nodiscard]] std::int64_t cols() const { return cols_; }
  [[nodiscard]] std::int64_t ld() const { return ld_; }

  [[nodiscard]] double* data() { return storage_.data(); }
  [[nodiscard]] const double* data() const { return storage_.data(); }

  double& at(std::int64_t r, std::int64_t c) { return storage_[index(r, c)]; }
  [[nodiscard]] double at(std::int64_t r, std::int64_t c) const {
    return storage_[index(r, c)];
  }

  /// Fill every element (including ld padding) with `value`.
  void fill(double value);

  /// Deterministic pseudo-random fill in [-1, 1), seeded so benchmarks are
  /// reproducible run to run.  Delegates to the free fill_random above:
  /// per-row streams, parallel, bit-identical to the serial order.
  void fill_random(std::uint64_t seed);

  /// max |a - b| over the logical (rows x cols) region; matrices must have
  /// identical logical dimensions (ld may differ).
  static double max_abs_diff(const Matrix& a, const Matrix& b);

 private:
  [[nodiscard]] std::size_t index(std::int64_t r, std::int64_t c) const {
    return static_cast<std::size_t>(r * ld_ + c);
  }

  std::int64_t rows_ = 0;
  std::int64_t cols_ = 0;
  std::int64_t ld_ = 0;
  util::AlignedBuffer<double> storage_;
};

}  // namespace rooftune::blas
