#include <cmath>

#include "blas/blas.hpp"

namespace rooftune::blas {

void daxpy(std::int64_t n, double alpha, const double* x, std::int64_t incx,
           double* y, std::int64_t incy) {
  if (n <= 0 || alpha == 0.0) return;
  if (incx == 1 && incy == 1) {
    for (std::int64_t i = 0; i < n; ++i) y[i] += alpha * x[i];
    return;
  }
  std::int64_t ix = incx >= 0 ? 0 : (n - 1) * -incx;
  std::int64_t iy = incy >= 0 ? 0 : (n - 1) * -incy;
  for (std::int64_t i = 0; i < n; ++i, ix += incx, iy += incy) {
    y[iy] += alpha * x[ix];
  }
}

void dscal(std::int64_t n, double alpha, double* x, std::int64_t incx) {
  if (n <= 0 || incx <= 0) return;
  for (std::int64_t i = 0; i < n * incx; i += incx) x[i] *= alpha;
}

void dcopy(std::int64_t n, const double* x, std::int64_t incx, double* y,
           std::int64_t incy) {
  if (n <= 0) return;
  std::int64_t ix = incx >= 0 ? 0 : (n - 1) * -incx;
  std::int64_t iy = incy >= 0 ? 0 : (n - 1) * -incy;
  for (std::int64_t i = 0; i < n; ++i, ix += incx, iy += incy) {
    y[iy] = x[ix];
  }
}

double ddot(std::int64_t n, const double* x, std::int64_t incx, const double* y,
            std::int64_t incy) {
  if (n <= 0) return 0.0;
  double acc = 0.0;
  std::int64_t ix = incx >= 0 ? 0 : (n - 1) * -incx;
  std::int64_t iy = incy >= 0 ? 0 : (n - 1) * -incy;
  for (std::int64_t i = 0; i < n; ++i, ix += incx, iy += incy) {
    acc += x[ix] * y[iy];
  }
  return acc;
}

double dnrm2(std::int64_t n, const double* x, std::int64_t incx) {
  if (n <= 0 || incx <= 0) return 0.0;
  // Scaled accumulation (LAPACK dlassq style) to avoid overflow/underflow.
  double scale = 0.0;
  double ssq = 1.0;
  for (std::int64_t i = 0; i < n * incx; i += incx) {
    const double v = std::fabs(x[i]);
    if (v == 0.0) continue;
    if (scale < v) {
      const double r = scale / v;
      ssq = 1.0 + ssq * r * r;
      scale = v;
    } else {
      const double r = v / scale;
      ssq += r * r;
    }
  }
  return scale * std::sqrt(ssq);
}

std::int64_t idamax(std::int64_t n, const double* x, std::int64_t incx) {
  if (n <= 0 || incx <= 0) return -1;
  std::int64_t best = 0;
  double best_abs = std::fabs(x[0]);
  for (std::int64_t i = 1; i < n; ++i) {
    const double v = std::fabs(x[i * incx]);
    if (v > best_abs) {
      best_abs = v;
      best = i;
    }
  }
  return best;
}

}  // namespace rooftune::blas
