// AVX2+FMA DGEMM micro-kernel: 6x8 register tile.
//
// Per k step the tile needs 12 accumulator ymm (6 rows x 2 vectors of 4
// doubles), 2 ymm for the B row and 1 for the broadcast A element — 15 of
// the 16 architectural ymm registers, the classic Haswell-era occupancy.
// The function carries a `target` attribute so this TU builds without
// global -mavx2 flags and the binary stays runnable on plain SSE2 CPUs
// (dispatch never selects this kernel there).

#include "blas/microkernel_isa.hpp"

#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))

#include <immintrin.h>

namespace rooftune::blas::detail {

namespace {

__attribute__((target("avx2,fma"))) void microkernel_6x8_avx2(
    std::int64_t kc, const double* __restrict pa, const double* __restrict pb,
    double* __restrict c, std::int64_t ldc) {
  __m256d c00 = _mm256_setzero_pd(), c01 = _mm256_setzero_pd();
  __m256d c10 = _mm256_setzero_pd(), c11 = _mm256_setzero_pd();
  __m256d c20 = _mm256_setzero_pd(), c21 = _mm256_setzero_pd();
  __m256d c30 = _mm256_setzero_pd(), c31 = _mm256_setzero_pd();
  __m256d c40 = _mm256_setzero_pd(), c41 = _mm256_setzero_pd();
  __m256d c50 = _mm256_setzero_pd(), c51 = _mm256_setzero_pd();

  for (std::int64_t p = 0; p < kc; ++p) {
    // Packed B rows are NR = 8 doubles = 64 bytes, so every row starts on
    // an aligned boundary of the 64-byte-aligned packing buffer.
    const __m256d b0 = _mm256_load_pd(pb);
    const __m256d b1 = _mm256_load_pd(pb + 4);
    __m256d a;
    a = _mm256_broadcast_sd(pa + 0);
    c00 = _mm256_fmadd_pd(a, b0, c00);
    c01 = _mm256_fmadd_pd(a, b1, c01);
    a = _mm256_broadcast_sd(pa + 1);
    c10 = _mm256_fmadd_pd(a, b0, c10);
    c11 = _mm256_fmadd_pd(a, b1, c11);
    a = _mm256_broadcast_sd(pa + 2);
    c20 = _mm256_fmadd_pd(a, b0, c20);
    c21 = _mm256_fmadd_pd(a, b1, c21);
    a = _mm256_broadcast_sd(pa + 3);
    c30 = _mm256_fmadd_pd(a, b0, c30);
    c31 = _mm256_fmadd_pd(a, b1, c31);
    a = _mm256_broadcast_sd(pa + 4);
    c40 = _mm256_fmadd_pd(a, b0, c40);
    c41 = _mm256_fmadd_pd(a, b1, c41);
    a = _mm256_broadcast_sd(pa + 5);
    c50 = _mm256_fmadd_pd(a, b0, c50);
    c51 = _mm256_fmadd_pd(a, b1, c51);
    pa += 6;
    pb += 8;
  }

  // C rows have arbitrary ldc; use unaligned accesses.
  double* r = c;
  _mm256_storeu_pd(r, _mm256_add_pd(_mm256_loadu_pd(r), c00));
  _mm256_storeu_pd(r + 4, _mm256_add_pd(_mm256_loadu_pd(r + 4), c01));
  r += ldc;
  _mm256_storeu_pd(r, _mm256_add_pd(_mm256_loadu_pd(r), c10));
  _mm256_storeu_pd(r + 4, _mm256_add_pd(_mm256_loadu_pd(r + 4), c11));
  r += ldc;
  _mm256_storeu_pd(r, _mm256_add_pd(_mm256_loadu_pd(r), c20));
  _mm256_storeu_pd(r + 4, _mm256_add_pd(_mm256_loadu_pd(r + 4), c21));
  r += ldc;
  _mm256_storeu_pd(r, _mm256_add_pd(_mm256_loadu_pd(r), c30));
  _mm256_storeu_pd(r + 4, _mm256_add_pd(_mm256_loadu_pd(r + 4), c31));
  r += ldc;
  _mm256_storeu_pd(r, _mm256_add_pd(_mm256_loadu_pd(r), c40));
  _mm256_storeu_pd(r + 4, _mm256_add_pd(_mm256_loadu_pd(r + 4), c41));
  r += ldc;
  _mm256_storeu_pd(r, _mm256_add_pd(_mm256_loadu_pd(r), c50));
  _mm256_storeu_pd(r + 4, _mm256_add_pd(_mm256_loadu_pd(r + 4), c51));
}

}  // namespace

MicrokernelFn avx2_microkernel() { return &microkernel_6x8_avx2; }

}  // namespace rooftune::blas::detail

#else

namespace rooftune::blas::detail {
MicrokernelFn avx2_microkernel() { return nullptr; }
}  // namespace rooftune::blas::detail

#endif
