#include "blas/blas.hpp"

#include <algorithm>

namespace rooftune::blas::detail {

namespace {
// Tile sizes chosen so one (MB x KB) A tile plus a (KB x NB) B tile fit in
// a typical 32 KiB L1 with room for the C tile.
constexpr std::int64_t MB = 64;
constexpr std::int64_t NB = 64;
constexpr std::int64_t KB = 64;
}  // namespace

// Loop-tiled variant without packing: improves locality over naive but keeps
// the strided accesses of the source matrices (so the packed variant can be
// benchmarked against it as an ablation).
void dgemm_blocked(Trans ta, Trans tb, std::int64_t m, std::int64_t n,
                   std::int64_t k, double alpha, const double* a, std::int64_t lda,
                   const double* b, std::int64_t ldb, double beta, double* c,
                   std::int64_t ldc) {
  // Scale C by beta once up front, then accumulate alpha * A * B tiles.
  for (std::int64_t i = 0; i < m; ++i) {
    double* row = c + i * ldc;
    if (beta == 0.0) {
      std::fill(row, row + n, 0.0);
    } else if (beta != 1.0) {
      for (std::int64_t j = 0; j < n; ++j) row[j] *= beta;
    }
  }

  const auto a_at = [&](std::int64_t i, std::int64_t p) {
    return ta == Trans::NoTrans ? a[i * lda + p] : a[p * lda + i];
  };
  const auto b_at = [&](std::int64_t p, std::int64_t j) {
    return tb == Trans::NoTrans ? b[p * ldb + j] : b[j * ldb + p];
  };

  for (std::int64_t ii = 0; ii < m; ii += MB) {
    const std::int64_t i_end = std::min(ii + MB, m);
    for (std::int64_t pp = 0; pp < k; pp += KB) {
      const std::int64_t p_end = std::min(pp + KB, k);
      for (std::int64_t jj = 0; jj < n; jj += NB) {
        const std::int64_t j_end = std::min(jj + NB, n);
        for (std::int64_t i = ii; i < i_end; ++i) {
          for (std::int64_t p = pp; p < p_end; ++p) {
            const double a_ip = alpha * a_at(i, p);
            if (a_ip == 0.0) continue;
            double* crow = c + i * ldc;
            if (tb == Trans::NoTrans) {
              const double* brow = b + p * ldb;
              for (std::int64_t j = jj; j < j_end; ++j) {
                crow[j] += a_ip * brow[j];
              }
            } else {
              for (std::int64_t j = jj; j < j_end; ++j) {
                crow[j] += a_ip * b_at(p, j);
              }
            }
          }
        }
      }
    }
  }
}

}  // namespace rooftune::blas::detail
