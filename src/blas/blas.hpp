#pragma once
// CBLAS-style dense linear algebra, implemented from scratch.
//
// The paper benchmarks the vendor BLAS `cblas_dgemm`; this module is the
// portable substitute the native backend calls.  Three DGEMM variants are
// provided: a naive triple loop (correctness reference), a cache-blocked
// version, and a packed register-blocked micro-kernel parallelized with
// OpenMP (the fast path).  All variants compute
//
//     C <- alpha * op(A) * op(B) + beta * C            (paper Eq. 3)
//
// with op() an optional transpose, for both row- and column-major storage
// and arbitrary leading dimensions.

#include <cstdint>

#include "util/units.hpp"

namespace rooftune::blas {

enum class Layout { RowMajor, ColMajor };
enum class Trans { NoTrans, Trans };

/// Which DGEMM implementation runs.
enum class DgemmVariant {
  Auto,     ///< Packed for non-trivial sizes, naive for tiny ones.
  Naive,    ///< ijk triple loop; O(mnk) with poor locality.
  Blocked,  ///< Loop tiling for L1/L2 without packing.
  Packed,   ///< Goto-style packing + register-blocked micro-kernel + OpenMP.
};

/// General matrix multiply.  Dimensions follow BLAS: op(A) is m x k,
/// op(B) is k x n, C is m x n.  lda/ldb/ldc are leading dimensions of the
/// *stored* matrices in the given layout.  Throws std::invalid_argument on
/// negative dimensions or too-small leading dimensions.
void dgemm(Layout layout, Trans trans_a, Trans trans_b, std::int64_t m,
           std::int64_t n, std::int64_t k, double alpha, const double* a,
           std::int64_t lda, const double* b, std::int64_t ldb, double beta,
           double* c, std::int64_t ldc,
           DgemmVariant variant = DgemmVariant::Auto);

/// FLOP count of one DGEMM call: 2*m*n*k (the figure the paper divides by
/// elapsed time to obtain GFLOP/s).
[[nodiscard]] util::Flops dgemm_flops(std::int64_t m, std::int64_t n, std::int64_t k);

/// Minimum bytes touched by one DGEMM call (A, B read; C read+written).
[[nodiscard]] util::Bytes dgemm_bytes(std::int64_t m, std::int64_t n, std::int64_t k);

// ---- Level-2/3 companions --------------------------------------------------

/// y <- alpha*op(A)*x + beta*y; A is m x n in the given (row-major assumed)
/// layout.  Throws std::invalid_argument on bad dimensions.
void dgemv(Layout layout, Trans trans, std::int64_t m, std::int64_t n,
           double alpha, const double* a, std::int64_t lda, const double* x,
           std::int64_t incx, double beta, double* y, std::int64_t incy);

enum class Uplo { Upper, Lower };

/// C <- alpha*A*A^T + beta*C (trans = NoTrans) or alpha*A^T*A + beta*C
/// (trans = Trans); only the `uplo` triangle of the n x n C is referenced.
void dsyrk(Layout layout, Uplo uplo, Trans trans, std::int64_t n, std::int64_t k,
           double alpha, const double* a, std::int64_t lda, double beta, double* c,
           std::int64_t ldc);

// ---- Level-1 routines (used by tests, examples, and the TRIAD cousin
//      kernels) -------------------------------------------------------------

/// y <- alpha*x + y
void daxpy(std::int64_t n, double alpha, const double* x, std::int64_t incx,
           double* y, std::int64_t incy);

/// x <- alpha*x
void dscal(std::int64_t n, double alpha, double* x, std::int64_t incx);

/// y <- x
void dcopy(std::int64_t n, const double* x, std::int64_t incx, double* y,
           std::int64_t incy);

/// dot(x, y)
double ddot(std::int64_t n, const double* x, std::int64_t incx, const double* y,
            std::int64_t incy);

/// Euclidean norm with overflow-safe scaling.
double dnrm2(std::int64_t n, const double* x, std::int64_t incx);

/// Index of the element with the largest |value|; -1 when n <= 0.
std::int64_t idamax(std::int64_t n, const double* x, std::int64_t incx);

// ---- Internal entry points (one per variant); exposed for tests ----------

namespace detail {
/// Row-major kernels computing C <- alpha*op(A)op(B) + beta*C.
void dgemm_naive(Trans ta, Trans tb, std::int64_t m, std::int64_t n,
                 std::int64_t k, double alpha, const double* a, std::int64_t lda,
                 const double* b, std::int64_t ldb, double beta, double* c,
                 std::int64_t ldc);
void dgemm_blocked(Trans ta, Trans tb, std::int64_t m, std::int64_t n,
                   std::int64_t k, double alpha, const double* a, std::int64_t lda,
                   const double* b, std::int64_t ldb, double beta, double* c,
                   std::int64_t ldc);
void dgemm_packed(Trans ta, Trans tb, std::int64_t m, std::int64_t n,
                  std::int64_t k, double alpha, const double* a, std::int64_t lda,
                  const double* b, std::int64_t ldb, double beta, double* c,
                  std::int64_t ldc);
}  // namespace detail

}  // namespace rooftune::blas
