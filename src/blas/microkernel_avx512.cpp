// AVX-512F DGEMM micro-kernel: 8x16 register tile.
//
// Per k step: 16 accumulator zmm (8 rows x 2 vectors of 8 doubles), 2 zmm
// for the B row and 1 for the broadcast A element — 19 of 32 zmm, leaving
// headroom for the compiler's address arithmetic.  Eight independent FMA
// chains per B vector hide the FMA latency on both 512-bit ports.

#include "blas/microkernel_isa.hpp"

#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))

#include <immintrin.h>

namespace rooftune::blas::detail {

namespace {

__attribute__((target("avx512f"))) void microkernel_8x16_avx512(
    std::int64_t kc, const double* __restrict pa, const double* __restrict pb,
    double* __restrict c, std::int64_t ldc) {
  __m512d acc0[8], acc1[8];
  for (int i = 0; i < 8; ++i) {
    acc0[i] = _mm512_setzero_pd();
    acc1[i] = _mm512_setzero_pd();
  }

  for (std::int64_t p = 0; p < kc; ++p) {
    // Packed B rows are NR = 16 doubles = 128 bytes: aligned.
    const __m512d b0 = _mm512_load_pd(pb);
    const __m512d b1 = _mm512_load_pd(pb + 8);
    // The fixed trip count lets GCC fully unroll this into 16 FMAs.
    for (int i = 0; i < 8; ++i) {
      const __m512d a = _mm512_set1_pd(pa[i]);
      acc0[i] = _mm512_fmadd_pd(a, b0, acc0[i]);
      acc1[i] = _mm512_fmadd_pd(a, b1, acc1[i]);
    }
    pa += 8;
    pb += 16;
  }

  for (int i = 0; i < 8; ++i) {
    double* row = c + i * ldc;
    _mm512_storeu_pd(row, _mm512_add_pd(_mm512_loadu_pd(row), acc0[i]));
    _mm512_storeu_pd(row + 8, _mm512_add_pd(_mm512_loadu_pd(row + 8), acc1[i]));
  }
}

}  // namespace

MicrokernelFn avx512_microkernel() { return &microkernel_8x16_avx512; }

}  // namespace rooftune::blas::detail

#else

namespace rooftune::blas::detail {
MicrokernelFn avx512_microkernel() { return nullptr; }
}  // namespace rooftune::blas::detail

#endif
