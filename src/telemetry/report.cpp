#include "telemetry/report.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "util/json_parse.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace rooftune::telemetry {

namespace {

[[noreturn]] void fail(std::size_t line_no, const std::string& what) {
  throw std::runtime_error(
      util::format("telemetry sidecar line %zu: %s", line_no, what.c_str()));
}

double number_or(const util::JsonValue& doc, const char* key, double fallback) {
  return doc.has(key) ? doc.at(key).as_number() : fallback;
}

SpanRecord parse_span(const util::JsonValue& doc) {
  SpanRecord r;
  r.epoch = static_cast<std::uint64_t>(doc.at("epoch").as_int());
  r.config_ordinal = static_cast<std::uint64_t>(doc.at("ord").as_int());
  r.invocation = static_cast<std::uint64_t>(doc.at("inv").as_int());
  r.span.freq_begin_mhz = number_or(doc, "freq_begin_mhz", 0.0);
  r.span.freq_end_mhz = number_or(doc, "freq_end_mhz", 0.0);
  r.span.freq_mean_mhz = number_or(doc, "freq_mean_mhz", 0.0);
  r.span.temp_c = number_or(doc, "temp_c", 0.0);
  r.span.pkg_joules = number_or(doc, "pkg_j", 0.0);
  r.span.dram_joules = number_or(doc, "dram_j", 0.0);
  r.span.valid = true;
  if (doc.has("flops")) r.flops = doc.at("flops").as_number();
  r.kernel_s = number_or(doc, "kernel_s", 0.0);
  r.wall_s = number_or(doc, "wall_s", 0.0);
  return r;
}

HostSample parse_host(const util::JsonValue& doc) {
  HostSample s;
  s.offset_s = number_or(doc, "off_s", 0.0);
  if (doc.has("freq_mean_mhz")) {
    s.freq_min_mhz = number_or(doc, "freq_min_mhz", 0.0);
    s.freq_max_mhz = number_or(doc, "freq_max_mhz", 0.0);
    s.freq_mean_mhz = doc.at("freq_mean_mhz").as_number();
    s.freq_valid = true;
  }
  if (doc.has("temp_c")) {
    s.temp_c = doc.at("temp_c").as_number();
    s.temp_valid = true;
  }
  if (doc.has("pkg_j")) {
    s.pkg_j = doc.at("pkg_j").as_number();
    s.dram_j = number_or(doc, "dram_j", 0.0);
    s.energy_valid = true;
  }
  return s;
}

}  // namespace

SidecarData read_sidecar(const std::string& text) {
  SidecarData data;
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  bool saw_header = false;
  while (std::getline(in, line)) {
    ++line_no;
    if (util::trim(line).empty()) continue;
    util::JsonValue doc;
    try {
      doc = util::parse_json(line);
    } catch (const std::exception& e) {
      fail(line_no, e.what());
    }
    if (!doc.has("t")) fail(line_no, "missing record tag \"t\"");
    const std::string tag = doc.at("t").as_string();
    if (line_no == 1 || !saw_header) {
      if (tag != "telemetry") {
        fail(line_no, "expected {\"t\":\"telemetry\"} header, got \"" + tag + "\"");
      }
      saw_header = true;
      continue;
    }
    try {
      if (tag == "span") {
        data.spans.push_back(parse_span(doc));
      } else if (tag == "host") {
        data.host.push_back(parse_host(doc));
      } else if (tag == "sampler") {
        SamplerStats stats;
        stats.samples = static_cast<std::uint64_t>(doc.at("samples").as_int());
        stats.dropped = static_cast<std::uint64_t>(doc.at("dropped").as_int());
        stats.period_s = number_or(doc, "period_s", 0.0);
        data.sampler = stats;
      } else {
        fail(line_no, "unknown record tag \"" + tag + "\"");
      }
    } catch (const std::out_of_range& e) {
      fail(line_no, std::string("missing field: ") + e.what());
    }
  }
  if (!saw_header) throw std::runtime_error("telemetry sidecar: empty input");
  return data;
}

SidecarData read_sidecar_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("telemetry sidecar: cannot read " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return read_sidecar(buffer.str());
}

StabilityReport analyze_stability(const SidecarData& data,
                                  double drift_threshold) {
  StabilityReport report;
  report.drift_threshold = drift_threshold;
  if (data.spans.empty()) return report;

  for (const SpanRecord& r : data.spans) {
    report.sustained_max_mhz =
        std::max(report.sustained_max_mhz, r.span.freq_begin_mhz);
  }
  const double throttle_line =
      report.sustained_max_mhz * (1.0 - drift_threshold);

  std::map<std::uint64_t, std::vector<const SpanRecord*>> by_config;
  for (const SpanRecord& r : data.spans) {
    by_config[r.config_ordinal].push_back(&r);
  }

  for (const auto& [ordinal, spans] : by_config) {
    ConfigStability c;
    c.config_ordinal = ordinal;
    c.spans = spans.size();
    double sum = 0.0;
    for (const SpanRecord* r : spans) {
      sum += r->span.freq_mean_mhz;
      c.pkg_joules += r->span.pkg_joules;
      if (r->flops.has_value()) c.gflop += *r->flops / 1e9;
      if (report.sustained_max_mhz > 0.0 &&
          r->span.freq_end_mhz < throttle_line) {
        ++c.throttle_events;
      }
      if (report.sustained_max_mhz > 0.0 && r->span.freq_end_mhz > 0.0) {
        report.worst_drift = std::max(
            report.worst_drift,
            1.0 - r->span.freq_end_mhz / report.sustained_max_mhz);
      }
    }
    c.freq_mean_mhz = sum / static_cast<double>(spans.size());
    if (spans.size() >= 2 && c.freq_mean_mhz > 0.0) {
      double ss = 0.0;
      for (const SpanRecord* r : spans) {
        const double d = r->span.freq_mean_mhz - c.freq_mean_mhz;
        ss += d * d;
      }
      c.freq_cv = std::sqrt(ss / static_cast<double>(spans.size() - 1)) /
                  c.freq_mean_mhz;
    }
    if (c.pkg_joules > 0.0 && c.gflop > 0.0) {
      c.joules_per_gflop = c.pkg_joules / c.gflop;
      c.gflops_per_watt = c.gflop / c.pkg_joules;
    }
    report.throttle_events += c.throttle_events;
    report.configs.push_back(c);
  }
  return report;
}

std::string render_stability_report(const StabilityReport& report) {
  if (report.empty()) return "";
  std::ostringstream out;
  out << "Machine stability (sustained max "
      << util::format("%.0f", report.sustained_max_mhz) << " MHz, throttle line "
      << util::format("%.0f", (1.0 - report.drift_threshold) * 100.0)
      << " % of max)\n";
  util::TextTable table;
  table.columns({"Config", "Spans", "Mean MHz", "Freq CV", "Throttle",
                 "J/GFLOP", "GFLOP/s/W"},
                {util::Align::Right, util::Align::Right, util::Align::Right,
                 util::Align::Right, util::Align::Right, util::Align::Right,
                 util::Align::Right});
  for (const ConfigStability& c : report.configs) {
    table.add_row({std::to_string(c.config_ordinal), std::to_string(c.spans),
                   util::format("%.0f", c.freq_mean_mhz),
                   util::format("%.2f%%", c.freq_cv * 100.0),
                   std::to_string(c.throttle_events),
                   c.joules_per_gflop > 0.0
                       ? util::format("%.3f", c.joules_per_gflop)
                       : "-",
                   c.gflops_per_watt > 0.0
                       ? util::format("%.3f", c.gflops_per_watt)
                       : "-"});
  }
  out << table.render();
  out << "Throttle events: " << report.throttle_events << " (worst drift "
      << util::format("%.1f", report.worst_drift * 100.0) << " % below max)\n";
  return out.str();
}

RunQuality assess_run_quality(const EnvironmentFingerprint& env,
                              const StabilityReport* stability,
                              double drift_threshold) {
  RunQuality quality;
  if (env.governor != "performance" && env.governor != "unknown") {
    quality.warnings.push_back(
        "cpufreq governor is \"" + env.governor +
        "\" — measurements ride the DVFS ramp; set the performance governor");
  }
  if (env.turbo == "on") {
    quality.warnings.push_back(
        "turbo is enabled — clock opportunism inflates short-kernel rates; "
        "disable turbo for comparable runs");
  }
  if (stability != nullptr && !stability->empty()) {
    if (stability->worst_drift > drift_threshold) {
      quality.warnings.push_back(util::format(
          "frequency drifted %.1f %% below the sustained maximum "
          "(threshold %.0f %%) — thermal throttling during the run",
          stability->worst_drift * 100.0, drift_threshold * 100.0));
    }
  }
  return quality;
}

std::string render_run_quality(const RunQuality& quality) {
  if (quality.ok()) return "run quality: ok\n";
  std::string out;
  for (const std::string& warning : quality.warnings) {
    out += "run quality: WARN " + warning + "\n";
  }
  return out;
}

}  // namespace rooftune::telemetry
