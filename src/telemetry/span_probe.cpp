#include "telemetry/span_probe.hpp"

namespace rooftune::telemetry {

void SpanProbe::begin() {
  if (!source_.any_available()) return;
  begin_sample_ = source_.sample();
  begin_time_ = std::chrono::steady_clock::now();
  armed_ = true;
}

core::TelemetrySpan SpanProbe::end() {
  core::TelemetrySpan span;
  if (!armed_) return span;
  armed_ = false;
  const HostSample end_sample = source_.sample();
  if (begin_sample_.freq_valid && end_sample.freq_valid) {
    span.freq_begin_mhz = begin_sample_.freq_mean_mhz;
    span.freq_end_mhz = end_sample.freq_mean_mhz;
    // Two-point estimate; the background sampler's sidecar records carry
    // the full time series when finer resolution is wanted.
    span.freq_mean_mhz = 0.5 * (span.freq_begin_mhz + span.freq_end_mhz);
  }
  if (end_sample.temp_valid) span.temp_c = end_sample.temp_c;
  if (begin_sample_.energy_valid && end_sample.energy_valid) {
    span.pkg_joules = end_sample.pkg_j - begin_sample_.pkg_j;
    span.dram_joules = end_sample.dram_j - begin_sample_.dram_j;
  }
  span.valid = begin_sample_.freq_valid || end_sample.temp_valid ||
               begin_sample_.energy_valid;
  return span;
}

}  // namespace rooftune::telemetry
