#pragma once
// Telemetry sidecar: the `<trace>.telemetry.jsonl` companion of a trace
// journal.
//
// Telemetry lives NEXT TO the journal, never inside it: the journal's
// byte-identity guarantee (same schedule → same bytes, across reruns and
// worker counts) must hold whether or not telemetry is attached, and host
// samples are wall-clock keyed and therefore inherently nondeterministic.
// The sidecar splits the difference:
//
//   - span records (one per invocation, from the simulated backends'
//     deterministic drift model or the native SpanProbe) are sorted by the
//     journal's logical key — on simulated backends the sidecar is itself
//     byte-identical across reruns and 1/2/8 workers;
//   - host records (background sampler time series) append after the
//     spans, keyed by monotonic offset — present only on native runs,
//     excluded from any determinism claim;
//   - a sampler footer records sample/drop counts for overhead accounting.
//
// The header names only the format, never the journal path: two sidecars
// from identical runs under different file names must still compare equal.

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/trace_events.hpp"
#include "telemetry/sampler.hpp"

namespace rooftune::telemetry {

/// One per-invocation telemetry span, joined with the work figures needed
/// for energy analysis (flops from the invocation record, so the stability
/// report never has to re-open the journal).
struct SpanRecord {
  std::uint64_t epoch = 0;
  std::uint64_t config_ordinal = 0;
  std::uint64_t invocation = 0;
  core::TelemetrySpan span;
  std::optional<double> flops;
  double kernel_s = 0.0;
  double wall_s = 0.0;
  std::uint64_t seq = 0;  ///< arrival order; merge tie-break, never serialized
};

class TelemetrySidecar {
 public:
  /// `path`: output for flush(); empty keeps the sidecar in memory (str()).
  explicit TelemetrySidecar(std::string path = {});

  /// Record the telemetry attached to an Invocation trace event.  No-op
  /// for other kinds or events without telemetry.  Thread-safe (called
  /// from journal emit under ParallelEvaluator).
  void record_span(const core::TraceEvent& event);

  void add_host_sample(const HostSample& sample);
  void set_sampler_stats(const SamplerStats& stats);

  /// Deterministic serialization: header, spans in logical order, host
  /// samples in arrival order, sampler footer.
  [[nodiscard]] std::string str() const;

  /// str() written to the path (no-op when empty).
  void flush() const;

  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] std::size_t span_count() const;

 private:
  std::string path_;
  mutable std::mutex mutex_;
  std::vector<SpanRecord> spans_;
  std::vector<HostSample> host_;
  std::optional<SamplerStats> stats_;
  std::uint64_t seq_ = 0;
};

}  // namespace rooftune::telemetry
