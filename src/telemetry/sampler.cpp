#include "telemetry/sampler.hpp"

#include <algorithm>

namespace rooftune::telemetry {

TelemetrySampler::TelemetrySampler(SysfsTelemetrySource source, double period_s)
    : source_(std::move(source)),
      period_s_(std::max(period_s, 1e-3)),
      ring_(1u << 16) {}

TelemetrySampler::~TelemetrySampler() { stop(); }

void TelemetrySampler::start() {
  if (thread_.joinable() || !source_.any_available()) return;
  stop_.store(false, std::memory_order_relaxed);
  start_time_ = std::chrono::steady_clock::now();
  thread_ = std::thread([this] { run(); });
}

void TelemetrySampler::stop() {
  if (!thread_.joinable()) return;
  stop_.store(true, std::memory_order_relaxed);
  thread_.join();
}

void TelemetrySampler::run() {
  const auto period = std::chrono::duration<double>(period_s_);
  auto next = start_time_;
  for (;;) {
    const bool last = stop_.load(std::memory_order_relaxed);
    HostSample s = source_.sample();
    s.offset_s = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - start_time_)
                     .count();
    if (ring_.try_push(s)) pushed_.fetch_add(1, std::memory_order_relaxed);
    if (last) return;  // the final observation at stop() is already taken
    next += std::chrono::duration_cast<std::chrono::steady_clock::duration>(period);
    // Sleep in short slices so stop() joins within ~one slice even with
    // long sampling periods.
    while (!stop_.load(std::memory_order_relaxed) &&
           std::chrono::steady_clock::now() < next) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
}

std::size_t TelemetrySampler::drain(std::vector<HostSample>& out) {
  std::size_t n = 0;
  HostSample s;
  while (ring_.try_pop(s)) {
    out.push_back(s);
    ++n;
  }
  return n;
}

SamplerStats TelemetrySampler::stats() const {
  SamplerStats stats;
  stats.samples = pushed_.load(std::memory_order_relaxed);
  stats.dropped = ring_.dropped();
  stats.period_s = period_s_;
  return stats;
}

}  // namespace rooftune::telemetry
