#pragma once
// sysfs-backed telemetry readers: per-core frequency (cpufreq), package
// temperature (thermal zones), and package/DRAM energy (powercap RAPL).
//
// Discovery happens once at construction; each capability that is absent
// (non-Linux, container without sysfs, powercap permissions) is recorded
// with a human-readable reason and simply skipped at sample time — the
// sampler degrades per capability, never fails.  RAPL counters wrap at
// max_energy_range_uj; the source unwraps them into monotone cumulative
// joules since construction.

#include <cstdint>
#include <string>
#include <vector>

namespace rooftune::telemetry {

/// One host telemetry observation (sampler output, sidecar "host" record).
/// Energy fields are cumulative joules since the source was constructed.
struct HostSample {
  double offset_s = 0.0;       ///< monotonic seconds since sampler start
  double freq_min_mhz = 0.0;   ///< across sampled cores
  double freq_max_mhz = 0.0;
  double freq_mean_mhz = 0.0;
  double temp_c = 0.0;
  double pkg_j = 0.0;
  double dram_j = 0.0;
  bool freq_valid = false;
  bool temp_valid = false;
  bool energy_valid = false;
};

class SysfsTelemetrySource {
 public:
  SysfsTelemetrySource();

  [[nodiscard]] bool freq_available() const { return !freq_paths_.empty(); }
  [[nodiscard]] bool temp_available() const { return !temp_path_.empty(); }
  [[nodiscard]] bool energy_available() const { return !pkg_energy_path_.empty(); }
  [[nodiscard]] bool any_available() const {
    return freq_available() || temp_available() || energy_available();
  }
  /// One reason per missing capability, for the CLI's degradation notice.
  [[nodiscard]] const std::vector<std::string>& unavailable_reasons() const {
    return reasons_;
  }

  /// Read every available capability now.  offset_s is left 0 — the
  /// sampler stamps it.  Not thread-safe (the sampler thread owns it).
  [[nodiscard]] HostSample sample();

 private:
  [[nodiscard]] double read_energy_joules(const std::string& path,
                                          double max_range_j, double& last_raw,
                                          double& accumulated);

  std::vector<std::string> freq_paths_;  ///< scaling_cur_freq per policy
  std::string temp_path_;                ///< thermal zone temp (millidegrees)
  std::string pkg_energy_path_;          ///< intel-rapl package energy_uj
  std::string dram_energy_path_;         ///< intel-rapl dram energy_uj
  double pkg_max_range_j_ = 0.0;
  double dram_max_range_j_ = 0.0;
  double pkg_last_raw_j_ = -1.0;         ///< -1 = no reading yet
  double dram_last_raw_j_ = -1.0;
  double pkg_accum_j_ = 0.0;
  double dram_accum_j_ = 0.0;
  std::vector<std::string> reasons_;
};

}  // namespace rooftune::telemetry
