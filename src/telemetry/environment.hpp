#pragma once
// Machine-environment fingerprint: the provenance record at the head of
// every trace journal.
//
// The paper's methodology (§V) assumes measurements taken on a *stable*
// machine — a governor switch, a turbo toggle, or an SMT change between two
// runs silently invalidates any comparison between them.  The fingerprint
// captures exactly the knobs that change measurement semantics (CPU model,
// topology, cpufreq policy, turbo, THP, ASLR, compiler/build flags), is
// serialized as the first line of every journal, and its stable hash gates
// TuningSession checkpoint resume: a checkpoint recorded under a different
// environment is refused, the same policy as a journal-path mismatch.
//
// Every field degrades to "unknown" (strings) or 0 (numbers) where the
// backing sysfs/procfs file is absent — capture never fails and never
// requires privileges.  No wall-clock timestamps or hostnames: the record
// participates in the journal's bit-identity guarantee on a fixed machine.

#include <cstdint>
#include <string>

namespace rooftune::util {
class JsonWriter;
class JsonValue;
}  // namespace rooftune::util

namespace rooftune::telemetry {

struct EnvironmentFingerprint {
  std::string cpu_model;    ///< /proc/cpuinfo "model name"
  std::string uarch;        ///< vendor + family/model/stepping triple
  int logical_cpus = 0;     ///< online logical CPUs
  int physical_cores = 0;   ///< logical_cpus / smt
  int smt = 0;              ///< threads per core (1 = SMT off)
  int numa_nodes = 0;       ///< /sys/devices/system/node count
  std::string governor;     ///< cpu0 cpufreq scaling_governor
  std::int64_t freq_min_khz = 0;  ///< cpu0 scaling_min_freq
  std::int64_t freq_max_khz = 0;  ///< cpu0 scaling_max_freq
  std::string turbo;        ///< "on" | "off" | "unknown"
  std::string thp;          ///< transparent_hugepage/enabled selection
  std::string aslr;         ///< randomize_va_space value as string
  std::string compiler;     ///< compiler id + __VERSION__
  std::string build;        ///< CMake build type + CXX flags

  /// Read the current environment.  Never throws; unavailable facts come
  /// back as "unknown" / 0.
  [[nodiscard]] static EnvironmentFingerprint capture();

  /// Order-independent stable hash over every field; identical inputs hash
  /// identically across runs and processes (no ASLR-dependent state).  This
  /// is the value recorded in TuningSession checkpoints.
  [[nodiscard]] std::uint64_t stable_hash() const;

  /// Serialize the full provenance journal record:
  ///   {"t":"provenance","v":1,...,"env":"<16-hex stable_hash>"}
  [[nodiscard]] std::string provenance_json() const;
};

/// Parse a provenance record produced by provenance_json().  Throws
/// std::runtime_error when the document is not a provenance record.
[[nodiscard]] EnvironmentFingerprint parse_provenance(
    const util::JsonValue& doc);

}  // namespace rooftune::telemetry
