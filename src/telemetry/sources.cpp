#include "telemetry/sources.hpp"

#include <fstream>

#include "util/strings.hpp"

namespace rooftune::telemetry {

namespace {

bool readable(const std::string& path) {
  std::ifstream in(path);
  return static_cast<bool>(in);
}

/// Read a sysfs integer; returns false on missing/unreadable/garbage.
bool read_value(const std::string& path, double& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::string text;
  std::getline(in, text);
  text = util::trim(text);
  if (text.empty()) return false;
  try {
    out = std::stod(text);
  } catch (const std::exception&) {
    return false;
  }
  return true;
}

std::string read_line(const std::string& path) {
  std::ifstream in(path);
  if (!in) return "";
  std::string line;
  std::getline(in, line);
  return util::trim(line);
}

}  // namespace

SysfsTelemetrySource::SysfsTelemetrySource() {
  // Per-core frequency: one scaling_cur_freq per cpufreq policy.  Probing
  // stops at the first gap — policies are numbered densely from 0.
  for (int cpu = 0; cpu < 4096; ++cpu) {
    const std::string path = "/sys/devices/system/cpu/cpu" +
                             std::to_string(cpu) +
                             "/cpufreq/scaling_cur_freq";
    if (!readable(path)) break;
    freq_paths_.push_back(path);
  }
  if (freq_paths_.empty()) {
    reasons_.push_back("frequency: cpufreq scaling_cur_freq not readable");
  }

  // Package temperature: the x86_pkg_temp thermal zone when present, else
  // the first zone (best effort on non-x86 / VM kernels).
  std::string fallback;
  for (int zone = 0; zone < 64; ++zone) {
    const std::string base =
        "/sys/class/thermal/thermal_zone" + std::to_string(zone) + "/";
    const std::string type = read_line(base + "type");
    if (type.empty()) break;
    if (!readable(base + "temp")) continue;
    if (fallback.empty()) fallback = base + "temp";
    if (type == "x86_pkg_temp") {
      temp_path_ = base + "temp";
      break;
    }
  }
  if (temp_path_.empty()) temp_path_ = fallback;
  if (temp_path_.empty()) {
    reasons_.push_back("temperature: no readable thermal zone");
  }

  // RAPL via powercap: intel-rapl:0 is the package-0 domain; its children
  // intel-rapl:0:N cover subdomains (dram, core, uncore) identified by
  // their `name` file.  energy_uj wraps at max_energy_range_uj.
  const std::string pkg = "/sys/class/powercap/intel-rapl:0/";
  if (readable(pkg + "energy_uj")) {
    pkg_energy_path_ = pkg + "energy_uj";
    double range_uj = 0.0;
    if (read_value(pkg + "max_energy_range_uj", range_uj)) {
      pkg_max_range_j_ = range_uj * 1e-6;
    }
    for (int sub = 0; sub < 8; ++sub) {
      const std::string base = pkg + "intel-rapl:0:" + std::to_string(sub) + "/";
      if (read_line(base + "name") != "dram") continue;
      if (!readable(base + "energy_uj")) continue;
      dram_energy_path_ = base + "energy_uj";
      if (read_value(base + "max_energy_range_uj", range_uj)) {
        dram_max_range_j_ = range_uj * 1e-6;
      }
      break;
    }
  } else {
    reasons_.push_back(
        "energy: powercap RAPL not readable (missing driver or permissions)");
  }
}

double SysfsTelemetrySource::read_energy_joules(const std::string& path,
                                                double max_range_j,
                                                double& last_raw,
                                                double& accumulated) {
  double raw_uj = 0.0;
  if (!read_value(path, raw_uj)) return accumulated;
  const double raw_j = raw_uj * 1e-6;
  if (last_raw >= 0.0) {
    double delta = raw_j - last_raw;
    // Counter wrapped between reads: the true delta continues past the
    // range ceiling.
    if (delta < 0.0 && max_range_j > 0.0) delta += max_range_j;
    if (delta > 0.0) accumulated += delta;
  }
  last_raw = raw_j;
  return accumulated;
}

HostSample SysfsTelemetrySource::sample() {
  HostSample s;
  if (!freq_paths_.empty()) {
    double sum = 0.0;
    int n = 0;
    for (const auto& path : freq_paths_) {
      double khz = 0.0;
      if (!read_value(path, khz)) continue;
      const double mhz = khz * 1e-3;
      if (n == 0 || mhz < s.freq_min_mhz) s.freq_min_mhz = mhz;
      if (n == 0 || mhz > s.freq_max_mhz) s.freq_max_mhz = mhz;
      sum += mhz;
      ++n;
    }
    if (n > 0) {
      s.freq_mean_mhz = sum / n;
      s.freq_valid = true;
    }
  }
  if (!temp_path_.empty()) {
    double millideg = 0.0;
    if (read_value(temp_path_, millideg)) {
      s.temp_c = millideg * 1e-3;
      s.temp_valid = true;
    }
  }
  if (!pkg_energy_path_.empty()) {
    s.pkg_j = read_energy_joules(pkg_energy_path_, pkg_max_range_j_,
                                 pkg_last_raw_j_, pkg_accum_j_);
    if (!dram_energy_path_.empty()) {
      s.dram_j = read_energy_joules(dram_energy_path_, dram_max_range_j_,
                                    dram_last_raw_j_, dram_accum_j_);
    }
    s.energy_valid = true;
  }
  return s;
}

}  // namespace rooftune::telemetry
