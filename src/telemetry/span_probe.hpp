#pragma once
// Span-scoped telemetry probe for native runs: frequency and RAPL energy
// read at kernel-phase boundaries, yielding one core::TelemetrySpan per
// invocation — the native counterpart of the simulated backends'
// last_invocation_telemetry().
//
// Follows the PerfCounterSampler pattern: one probe per journal worker
// buffer, begin() at kernel_phase_begin, end() at kernel_phase_end, and
// the journal attaches the result to the invocation record it forwards to
// the telemetry sidecar.  RAPL is package-scope, so the energy attributed
// to a span includes everything the package ran during it — for the pipe
// backend that is exactly the child benchmark process, which executes
// synchronously inside the span.

#include <chrono>

#include "core/telemetry_span.hpp"
#include "telemetry/sources.hpp"

namespace rooftune::telemetry {

class SpanProbe {
 public:
  SpanProbe() = default;

  [[nodiscard]] bool available() const { return source_.any_available(); }
  [[nodiscard]] const SysfsTelemetrySource& source() const { return source_; }

  /// Snapshot frequency + cumulative energy at span start.
  void begin();

  /// Snapshot again and return the span delta.  Invalid (and all-zero)
  /// when begin() was never called or no capability is available.
  [[nodiscard]] core::TelemetrySpan end();

 private:
  SysfsTelemetrySource source_;
  HostSample begin_sample_;
  std::chrono::steady_clock::time_point begin_time_;
  bool armed_ = false;
};

}  // namespace rooftune::telemetry
