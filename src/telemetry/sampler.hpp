#pragma once
// Background telemetry sampler: a thread reading the sysfs sources on a
// fixed period, pushing through the SPSC ring.
//
// The sampler is deliberately decoupled from the measurement loop — it
// stamps samples with monotonic offsets from its own start, and the trace
// sidecar keys them to invocation spans by those offsets.  The ring
// guarantees the producer never blocks: if the consumer falls behind, the
// sampler drops (and counts) samples rather than perturbing the run.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "telemetry/ring.hpp"
#include "telemetry/sources.hpp"

namespace rooftune::telemetry {

struct SamplerStats {
  std::uint64_t samples = 0;  ///< successfully pushed
  std::uint64_t dropped = 0;  ///< rejected by a full ring
  double period_s = 0.0;
};

class TelemetrySampler {
 public:
  /// The source is owned by the sampler (sampling mutates its RAPL unwrap
  /// state, so the thread must be its only user).  `period_s` is clamped to
  /// a 1 ms floor to keep a misconfigured CLI from busy-spinning a core.
  TelemetrySampler(SysfsTelemetrySource source, double period_s);
  ~TelemetrySampler();

  TelemetrySampler(const TelemetrySampler&) = delete;
  TelemetrySampler& operator=(const TelemetrySampler&) = delete;

  /// Launch the sampler thread.  No-op when the source has no available
  /// capability (the ring would only fill with empty samples) or when
  /// already running.
  void start();

  /// Stop and join the thread; one final sample is taken at stop so short
  /// runs always have at least begin/end observations.  Idempotent.
  void stop();

  [[nodiscard]] bool running() const { return thread_.joinable(); }
  [[nodiscard]] const SysfsTelemetrySource& source() const { return source_; }

  /// Drain everything currently in the ring (consumer side; call from the
  /// coordinating thread).  Returns the number of samples appended.
  std::size_t drain(std::vector<HostSample>& out);

  [[nodiscard]] SamplerStats stats() const;

 private:
  void run();

  SysfsTelemetrySource source_;
  double period_s_;
  SpscRing<HostSample> ring_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> pushed_{0};
  std::chrono::steady_clock::time_point start_time_;
};

}  // namespace rooftune::telemetry
