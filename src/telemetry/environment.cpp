#include "telemetry/environment.hpp"

#include <dirent.h>

#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/json.hpp"
#include "util/json_parse.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace rooftune::telemetry {

namespace {

constexpr const char* kUnknown = "unknown";

/// First line of a sysfs/procfs file, trimmed; nullopt-style "" on failure.
std::string read_line(const std::string& path) {
  std::ifstream in(path);
  if (!in) return "";
  std::string line;
  std::getline(in, line);
  return util::trim(line);
}

std::int64_t read_int(const std::string& path) {
  const std::string text = read_line(path);
  if (text.empty()) return 0;
  try {
    return std::stoll(text);
  } catch (const std::exception&) {
    return 0;
  }
}

/// Count directory entries matching a prefix followed by a digit
/// (cpu0..cpuN, node0..nodeN).
int count_numbered(const std::string& dir, const std::string& prefix) {
  DIR* d = opendir(dir.c_str());
  if (d == nullptr) return 0;
  int n = 0;
  while (const dirent* entry = readdir(d)) {
    const std::string name = entry->d_name;
    if (name.size() > prefix.size() && name.compare(0, prefix.size(), prefix) == 0 &&
        std::isdigit(static_cast<unsigned char>(name[prefix.size()])) != 0) {
      ++n;
    }
  }
  closedir(d);
  return n;
}

/// "member1-member2,member5" sibling lists: count the listed logical CPUs.
int count_cpu_list(const std::string& list) {
  if (list.empty()) return 0;
  int n = 0;
  std::istringstream in(list);
  std::string range;
  while (std::getline(in, range, ',')) {
    const auto dash = range.find('-');
    if (dash == std::string::npos) {
      ++n;
    } else {
      try {
        n += std::stoi(range.substr(dash + 1)) - std::stoi(range.substr(0, dash)) + 1;
      } catch (const std::exception&) {
        ++n;
      }
    }
  }
  return n;
}

/// /proc/cpuinfo key lookup ("model name", "vendor_id", ...), first CPU only.
std::string cpuinfo_field(const std::string& want) {
  std::ifstream in("/proc/cpuinfo");
  std::string line;
  while (std::getline(in, line)) {
    const auto colon = line.find(':');
    if (colon == std::string::npos) continue;
    if (util::trim(line.substr(0, colon)) == want) {
      return util::trim(line.substr(colon + 1));
    }
  }
  return "";
}

/// The selected THP mode is the bracketed token: "always [madvise] never".
std::string thp_selection() {
  const std::string line =
      read_line("/sys/kernel/mm/transparent_hugepage/enabled");
  const auto open = line.find('[');
  const auto close = line.find(']');
  if (open == std::string::npos || close == std::string::npos || close <= open) {
    return kUnknown;
  }
  return line.substr(open + 1, close - open - 1);
}

std::string turbo_state() {
  // intel_pstate inverts the sense: no_turbo=1 means turbo disabled.
  const std::string no_turbo =
      read_line("/sys/devices/system/cpu/intel_pstate/no_turbo");
  if (no_turbo == "0") return "on";
  if (no_turbo == "1") return "off";
  const std::string boost = read_line("/sys/devices/system/cpu/cpufreq/boost");
  if (boost == "1") return "on";
  if (boost == "0") return "off";
  return kUnknown;
}

std::string compiler_id() {
#if defined(__clang__)
  return std::string("clang ") + __VERSION__;
#elif defined(__GNUC__)
  return std::string("gcc ") + __VERSION__;
#else
  return kUnknown;
#endif
}

std::string build_id() {
#if defined(ROOFTUNE_BUILD_TYPE)
  std::string build = ROOFTUNE_BUILD_TYPE;
#else
  std::string build = kUnknown;
#endif
#if defined(ROOFTUNE_CXX_FLAGS)
  const std::string flags = util::trim(ROOFTUNE_CXX_FLAGS);
  if (!flags.empty()) build += " [" + flags + "]";
#endif
  return build;
}

std::uint64_t hash_string(std::uint64_t h, const std::string& s) {
  h = util::hash_seed(h, s.size());
  for (const char c : s) h = util::hash_seed(h, static_cast<unsigned char>(c));
  return h;
}

std::string field_or_unknown(const util::JsonValue& doc, const char* key) {
  return doc.has(key) ? doc.at(key).as_string() : std::string(kUnknown);
}

}  // namespace

EnvironmentFingerprint EnvironmentFingerprint::capture() {
  EnvironmentFingerprint env;

  const std::string model = cpuinfo_field("model name");
  env.cpu_model = model.empty() ? kUnknown : model;
  const std::string vendor = cpuinfo_field("vendor_id");
  const std::string family = cpuinfo_field("cpu family");
  const std::string cpu_model_no = cpuinfo_field("model");
  const std::string stepping = cpuinfo_field("stepping");
  if (!vendor.empty() && !family.empty()) {
    env.uarch = vendor + " " + family + "/" + cpu_model_no + "/" + stepping;
  } else {
    env.uarch = kUnknown;
  }

  env.logical_cpus = count_numbered("/sys/devices/system/cpu", "cpu");
  env.smt = count_cpu_list(read_line(
      "/sys/devices/system/cpu/cpu0/topology/thread_siblings_list"));
  if (env.smt <= 0) env.smt = env.logical_cpus > 0 ? 1 : 0;
  env.physical_cores = env.smt > 0 ? env.logical_cpus / env.smt : 0;
  env.numa_nodes = count_numbered("/sys/devices/system/node", "node");
  if (env.numa_nodes == 0 && env.logical_cpus > 0) env.numa_nodes = 1;

  const std::string cpufreq = "/sys/devices/system/cpu/cpu0/cpufreq/";
  const std::string governor = read_line(cpufreq + "scaling_governor");
  env.governor = governor.empty() ? kUnknown : governor;
  env.freq_min_khz = read_int(cpufreq + "scaling_min_freq");
  env.freq_max_khz = read_int(cpufreq + "scaling_max_freq");
  env.turbo = turbo_state();
  env.thp = thp_selection();
  const std::string aslr = read_line("/proc/sys/kernel/randomize_va_space");
  env.aslr = aslr.empty() ? kUnknown : aslr;
  env.compiler = compiler_id();
  env.build = build_id();
  return env;
}

std::uint64_t EnvironmentFingerprint::stable_hash() const {
  std::uint64_t h = 0xF17E5D0CBEEF2026ull;
  h = hash_string(h, cpu_model);
  h = hash_string(h, uarch);
  h = util::hash_seed(h, static_cast<std::uint64_t>(logical_cpus),
                      static_cast<std::uint64_t>(physical_cores),
                      static_cast<std::uint64_t>(smt),
                      static_cast<std::uint64_t>(numa_nodes));
  h = hash_string(h, governor);
  h = util::hash_seed(h, static_cast<std::uint64_t>(freq_min_khz),
                      static_cast<std::uint64_t>(freq_max_khz));
  h = hash_string(h, turbo);
  h = hash_string(h, thp);
  h = hash_string(h, aslr);
  h = hash_string(h, compiler);
  h = hash_string(h, build);
  return h;
}

std::string EnvironmentFingerprint::provenance_json() const {
  util::JsonWriter w;
  w.begin_object();
  w.key("t").value("provenance");
  w.key("v").value(1);
  w.key("cpu").value(cpu_model);
  w.key("uarch").value(uarch);
  w.key("logical_cpus").value(logical_cpus);
  w.key("cores").value(physical_cores);
  w.key("smt").value(smt);
  w.key("numa").value(numa_nodes);
  w.key("governor").value(governor);
  w.key("freq_min_khz").value(static_cast<long long>(freq_min_khz));
  w.key("freq_max_khz").value(static_cast<long long>(freq_max_khz));
  w.key("turbo").value(turbo);
  w.key("thp").value(thp);
  w.key("aslr").value(aslr);
  w.key("compiler").value(compiler);
  w.key("build").value(build);
  w.key("env").value(util::format(
      "%016llx", static_cast<unsigned long long>(stable_hash())));
  w.end_object();
  return w.str();
}

EnvironmentFingerprint parse_provenance(const util::JsonValue& doc) {
  if (!doc.has("t") || doc.at("t").as_string() != "provenance") {
    throw std::runtime_error("parse_provenance: not a provenance record");
  }
  EnvironmentFingerprint env;
  env.cpu_model = field_or_unknown(doc, "cpu");
  env.uarch = field_or_unknown(doc, "uarch");
  if (doc.has("logical_cpus")) {
    env.logical_cpus = static_cast<int>(doc.at("logical_cpus").as_int());
  }
  if (doc.has("cores")) env.physical_cores = static_cast<int>(doc.at("cores").as_int());
  if (doc.has("smt")) env.smt = static_cast<int>(doc.at("smt").as_int());
  if (doc.has("numa")) env.numa_nodes = static_cast<int>(doc.at("numa").as_int());
  env.governor = field_or_unknown(doc, "governor");
  if (doc.has("freq_min_khz")) env.freq_min_khz = doc.at("freq_min_khz").as_int();
  if (doc.has("freq_max_khz")) env.freq_max_khz = doc.at("freq_max_khz").as_int();
  env.turbo = field_or_unknown(doc, "turbo");
  env.thp = field_or_unknown(doc, "thp");
  env.aslr = field_or_unknown(doc, "aslr");
  env.compiler = field_or_unknown(doc, "compiler");
  env.build = field_or_unknown(doc, "build");
  return env;
}

}  // namespace rooftune::telemetry
