#pragma once
// Lock-free single-producer/single-consumer ring buffer.
//
// The telemetry sampler thread produces on a fixed period while the run is
// in flight; the coordinating thread drains after the run (or lazily).  The
// producer must never block and never allocate — a slow consumer costs
// dropped samples (counted), never a stalled sampler, so attaching
// telemetry cannot perturb the measurement it observes.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace rooftune::telemetry {

template <typename T>
class SpscRing {
 public:
  /// `capacity` is rounded up to a power of two (masked indexing).
  explicit SpscRing(std::size_t capacity) {
    std::size_t size = 1;
    while (size < capacity) size <<= 1;
    slots_.resize(size);
    mask_ = size - 1;
  }

  /// Producer side.  Returns false (and counts a drop) when full.
  bool try_push(const T& item) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    if (head - tail > mask_) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    slots_[head & mask_] = item;
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side.  Returns false when empty.
  bool try_pop(T& out) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t head = head_.load(std::memory_order_acquire);
    if (tail == head) return false;
    out = slots_[tail & mask_];
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  [[nodiscard]] std::size_t capacity() const { return mask_ + 1; }
  [[nodiscard]] std::size_t size() const {
    return head_.load(std::memory_order_acquire) -
           tail_.load(std::memory_order_acquire);
  }
  /// Samples rejected by try_push since construction (producer-counted).
  [[nodiscard]] std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;
  std::atomic<std::size_t> head_{0};  ///< next write (producer-owned)
  std::atomic<std::size_t> tail_{0};  ///< next read (consumer-owned)
  std::atomic<std::uint64_t> dropped_{0};
};

}  // namespace rooftune::telemetry
