#pragma once
// Telemetry sidecar analysis: the stability report behind `rooftune trace`
// and the end-of-run quality verdict behind dgemm/triad/pipe.
//
// §V of the paper attributes run-to-run variance to exactly the effects
// measured here — frequency drift under thermal load, governor policy, and
// turbo opportunism.  The stability report quantifies them per
// configuration (frequency CV, throttle events against the sustained
// maximum, Joules/GFLOP and GFLOP/s/W), so a suspicious tuning result can
// be traced to a machine-state cause instead of being re-run blind.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "telemetry/environment.hpp"
#include "telemetry/sidecar.hpp"

namespace rooftune::telemetry {

/// Parsed sidecar contents (the read-side mirror of TelemetrySidecar).
struct SidecarData {
  std::vector<SpanRecord> spans;
  std::vector<HostSample> host;
  std::optional<SamplerStats> sampler;
};

/// Parse sidecar JSONL text / file.  Throws std::runtime_error on
/// malformed input (with the offending line).
[[nodiscard]] SidecarData read_sidecar(const std::string& text);
[[nodiscard]] SidecarData read_sidecar_file(const std::string& path);

/// Per-configuration stability figures across its invocations.
struct ConfigStability {
  std::uint64_t config_ordinal = 0;
  std::size_t spans = 0;
  double freq_mean_mhz = 0.0;
  double freq_cv = 0.0;          ///< stddev/mean of per-span mean frequency
  int throttle_events = 0;       ///< spans ending below the throttle line
  double pkg_joules = 0.0;       ///< summed over invocations
  double gflop = 0.0;            ///< summed flops / 1e9
  double joules_per_gflop = 0.0; ///< 0 when either side is unknown
  double gflops_per_watt = 0.0;  ///< == GFLOP/J; 0 when unknown
};

struct StabilityReport {
  double sustained_max_mhz = 0.0;  ///< max span-start frequency observed
  double drift_threshold = 0.0;    ///< fraction below sustained max = throttle
  int throttle_events = 0;         ///< total across configurations
  double worst_drift = 0.0;        ///< 1 - min(freq_end)/sustained_max
  std::vector<ConfigStability> configs;  ///< sorted by config ordinal

  [[nodiscard]] bool empty() const { return configs.empty(); }
};

/// Default throttle/drift line: a span ending >5 % below the sustained
/// maximum counts as a throttle event.
inline constexpr double kDefaultDriftThreshold = 0.05;

[[nodiscard]] StabilityReport analyze_stability(
    const SidecarData& data, double drift_threshold = kDefaultDriftThreshold);

/// Render the stability report as an ASCII table block (empty string when
/// the report has no spans).
[[nodiscard]] std::string render_stability_report(const StabilityReport& report);

/// End-of-run machine-state verdict: environment warnings (governor,
/// turbo) plus measured drift when a stability report is available.
struct RunQuality {
  std::vector<std::string> warnings;
  [[nodiscard]] bool ok() const { return warnings.empty(); }
};

[[nodiscard]] RunQuality assess_run_quality(
    const EnvironmentFingerprint& env, const StabilityReport* stability,
    double drift_threshold = kDefaultDriftThreshold);

/// One line per warning, or a single "run quality: ok" line.
[[nodiscard]] std::string render_run_quality(const RunQuality& quality);

}  // namespace rooftune::telemetry
