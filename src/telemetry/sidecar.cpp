#include "telemetry/sidecar.hpp"

#include <algorithm>
#include <fstream>
#include <stdexcept>
#include <tuple>

#include "util/json.hpp"

namespace rooftune::telemetry {

TelemetrySidecar::TelemetrySidecar(std::string path) : path_(std::move(path)) {}

void TelemetrySidecar::record_span(const core::TraceEvent& event) {
  if (event.kind != core::TraceEvent::Kind::Invocation) return;
  if (!event.telemetry.has_value() || !event.telemetry->valid) return;
  const std::scoped_lock lock(mutex_);
  SpanRecord record;
  record.epoch = event.epoch;
  record.config_ordinal = event.config_ordinal;
  record.invocation = event.invocation;
  record.span = *event.telemetry;
  record.flops = event.flops;
  record.kernel_s = event.kernel_s;
  record.wall_s = event.wall_s;
  record.seq = seq_++;
  spans_.push_back(record);
}

void TelemetrySidecar::add_host_sample(const HostSample& sample) {
  const std::scoped_lock lock(mutex_);
  host_.push_back(sample);
}

void TelemetrySidecar::set_sampler_stats(const SamplerStats& stats) {
  const std::scoped_lock lock(mutex_);
  stats_ = stats;
}

std::size_t TelemetrySidecar::span_count() const {
  const std::scoped_lock lock(mutex_);
  return spans_.size();
}

std::string TelemetrySidecar::str() const {
  std::vector<SpanRecord> spans;
  std::vector<HostSample> host;
  std::optional<SamplerStats> stats;
  {
    const std::scoped_lock lock(mutex_);
    spans = spans_;
    host = host_;
    stats = stats_;
  }
  // Same logical order as the journal merge (rank is constant for spans),
  // seq as the tie-break — never serialized.
  std::sort(spans.begin(), spans.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              const auto key = [](const SpanRecord& r) {
                return std::make_tuple(r.epoch, r.config_ordinal, r.invocation,
                                       r.seq);
              };
              return key(a) < key(b);
            });

  std::string out;
  const auto append_line = [&out](const util::JsonWriter& w) {
    out += w.str();
    out += '\n';
  };

  {
    util::JsonWriter w;
    w.begin_object();
    w.key("t").value("telemetry");
    w.key("v").value(1);
    w.end_object();
    append_line(w);
  }

  for (const SpanRecord& r : spans) {
    util::JsonWriter w;
    w.begin_object();
    w.key("t").value("span");
    w.key("epoch").value(r.epoch);
    w.key("ord").value(r.config_ordinal);
    w.key("inv").value(r.invocation);
    w.key("freq_begin_mhz").value(r.span.freq_begin_mhz);
    w.key("freq_end_mhz").value(r.span.freq_end_mhz);
    w.key("freq_mean_mhz").value(r.span.freq_mean_mhz);
    w.key("temp_c").value(r.span.temp_c);
    w.key("pkg_j").value(r.span.pkg_joules);
    w.key("dram_j").value(r.span.dram_joules);
    if (r.flops.has_value()) w.key("flops").value(*r.flops);
    w.key("kernel_s").value(r.kernel_s);
    w.key("wall_s").value(r.wall_s);
    w.end_object();
    append_line(w);
  }

  for (const HostSample& s : host) {
    util::JsonWriter w;
    w.begin_object();
    w.key("t").value("host");
    w.key("off_s").value(s.offset_s);
    if (s.freq_valid) {
      w.key("freq_min_mhz").value(s.freq_min_mhz);
      w.key("freq_max_mhz").value(s.freq_max_mhz);
      w.key("freq_mean_mhz").value(s.freq_mean_mhz);
    }
    if (s.temp_valid) w.key("temp_c").value(s.temp_c);
    if (s.energy_valid) {
      w.key("pkg_j").value(s.pkg_j);
      w.key("dram_j").value(s.dram_j);
    }
    w.end_object();
    append_line(w);
  }

  if (stats.has_value()) {
    util::JsonWriter w;
    w.begin_object();
    w.key("t").value("sampler");
    w.key("samples").value(stats->samples);
    w.key("dropped").value(stats->dropped);
    w.key("period_s").value(stats->period_s);
    w.end_object();
    append_line(w);
  }
  return out;
}

void TelemetrySidecar::flush() const {
  if (path_.empty()) return;
  std::ofstream out(path_, std::ios::trunc);
  if (!out) {
    throw std::runtime_error("TelemetrySidecar: cannot write " + path_);
  }
  out << str();
}

}  // namespace rooftune::telemetry
